"""Dataflow resource estimation (Section V-D: splitting, link analysis, placement).

The estimator walks a compiled program's structured dataflow graph and maps
it onto physical units under the Table II splitting constraints:

* element-wise operations are packed into contexts of at most ``stages`` ops
  and at most four vector inputs (extra inputs force a split),
* every control primitive (forward merge, forward-backward merge, filter,
  counter/reduce pair, fork) occupies a context's pipeline head or tail,
* each SRAM allocation site maps to one or more memory units (capacity) plus
  an allocator context; fused allocation groups share one allocator,
* bulk transfers and demand DRAM accesses map to address generators,
* replicate regions duplicate their body per region and add work-distribution
  and output-merge contexts, retiming buffers, and (if not bufferized) extra
  live links through the merge tree,
* link analysis classifies links as vector or scalar (while-loop entries,
  replicate boundaries, and the outermost program links are scalar).

The result is the per-application CU/MU/AG breakdown used for Table IV and
Figure 12, plus an outer-parallelism scaler that targets ~70% utilization of
the critical resource (the paper's methodology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.graph import DFGraph, DFNode
from repro.core.machine import DEFAULT_MACHINE, ContextLimits, MachineConfig, ResourceUsage
from repro.dataflow.lowering import CompiledProgram
from repro.ir import ops_named

#: Node ops that execute as element-wise pipeline stages.
PIPELINE_OPS = {"compute", "const"}

#: Memory node ops that map to MU access contexts.
MU_ACCESS_OPS = {"sram_read", "sram_write", "sram_alloc", "sram_free"}

#: Node ops that map to DRAM address generators.
AG_OPS = {"bulk_load", "bulk_store", "dram_read", "dram_write"}


@dataclass
class ResourceBreakdown:
    """Table IV style per-application resource report."""

    app: str
    inner: ResourceUsage = field(default_factory=ResourceUsage)
    outer: ResourceUsage = field(default_factory=ResourceUsage)
    replicate: ResourceUsage = field(default_factory=ResourceUsage)
    retime_mu: int = 0
    deadlock_mu: int = 0
    buffer_mu: int = 0
    outer_parallelism: int = 1
    lanes: int = 0
    vector_links: int = 0
    scalar_links: int = 0

    @property
    def total(self) -> ResourceUsage:
        extra = ResourceUsage(mu=self.retime_mu + self.deadlock_mu + self.buffer_mu)
        return self.inner + self.outer + self.replicate + extra

    def as_row(self) -> Dict[str, int]:
        total = self.total
        return {
            "app": self.app,
            "outer": self.outer_parallelism,
            "lanes": self.lanes,
            "inner_cu": self.inner.cu, "inner_mu": self.inner.mu, "inner_ag": self.inner.ag,
            "outer_cu": self.outer.cu, "outer_mu": self.outer.mu, "outer_ag": self.outer.ag,
            "repl_cu": self.replicate.cu, "repl_mu": self.replicate.mu,
            "retime_mu": self.retime_mu, "deadlock_mu": self.deadlock_mu,
            "buffer_mu": self.buffer_mu,
            "total_cu": total.cu, "total_mu": total.mu, "total_ag": total.ag,
        }


class ResourceEstimator:
    """Estimates physical resources for one compiled program."""

    def __init__(self, program: CompiledProgram,
                 machine: MachineConfig = DEFAULT_MACHINE):
        self.program = program
        self.machine = machine
        self.limits = ContextLimits.from_machine(machine)

    # -- single-pipeline estimation -------------------------------------------

    def pipeline_usage(self) -> Dict[str, ResourceUsage]:
        """Resources for ONE copy of the dataflow (one outer-parallel stream)."""
        usage = {"inner": ResourceUsage(), "outer": ResourceUsage(),
                 "replicate": ResourceUsage()}
        counters = {"retime_mu": 0, "deadlock_mu": 0, "buffer_mu": 0,
                    "vector_links": 0, "scalar_links": 0}
        self._walk_graph(self.program.graph, usage, counters, zone="outer",
                         replicate_factor=1)
        self._apply_module_attrs(usage, counters)
        return {**usage, **counters}

    def _walk_graph(self, graph: DFGraph, usage, counters, zone: str,
                    replicate_factor: int) -> None:
        pipeline_ops = 0
        for node in graph.nodes:
            if node.op in PIPELINE_OPS:
                pipeline_ops += 1
                continue
            self._account_node(node, usage, counters, zone, replicate_factor)
        if pipeline_ops:
            contexts = math.ceil(pipeline_ops / self.limits.max_ops)
            usage[zone if zone != "distribution" else "replicate"].cu += (
                contexts * replicate_factor)
        counters["vector_links"] += sum(1 for n in graph.nodes
                                        for _ in n.outputs) * replicate_factor

    def _account_node(self, node: DFNode, usage, counters, zone: str,
                      replicate_factor: int) -> None:
        bucket = usage[zone if zone in usage else "replicate"]
        if node.op in MU_ACCESS_OPS:
            site_words = node.params.get("buffer_words", 64)
            if node.op == "sram_alloc":
                # Allocator context + capacity: one MU per 70% of its words.
                buffers = min(node.params.get("max_buffers", 1024), 1024)
                words = site_words * buffers
                bucket.mu += max(1, math.ceil(words / (self.machine.mu_words * 0.7)))
                bucket.cu += 1  # pointer-queue / allocation context
            else:
                bucket.cu += 1  # address-generation context feeding the MU
            counters["scalar_links"] += replicate_factor
        elif node.op in AG_OPS:
            bucket.ag += 1
            bucket.cu += 1  # address computation context
        elif node.op == "filter":
            bucket.cu += 1
        elif node.op == "fork":
            bucket.cu += 1
            counters["deadlock_mu"] += 1
        elif node.op == "forward_merge":
            bucket.cu += 1
        elif node.op == "if":
            bucket.cu += 2  # filter + forward merge contexts
            counters["scalar_links"] += 2 * replicate_factor
            for region in node.regions:
                self._walk_graph(region, usage, counters, zone, replicate_factor)
        elif node.op == "while":
            bucket.cu += 2  # forward-backward merge + exit filter
            counters["deadlock_mu"] += replicate_factor
            counters["scalar_links"] += replicate_factor  # scalar loop entry
            inner_zone = "inner"
            for region in node.regions:
                self._walk_graph(region, usage, counters, inner_zone,
                                 replicate_factor)
        elif node.op == "foreach":
            bucket.cu += 1  # counter + reduce pair
            for region in node.regions:
                self._walk_graph(region, usage, counters, zone, replicate_factor)
        elif node.op == "replicate":
            factor = node.params.get("factor", 1)
            # Work distribution and merge trees (filters + forward merges).
            usage["replicate"].cu += max(1, factor // 2) + max(1, factor // 2)
            counters["retime_mu"] += factor
            counters["scalar_links"] += 2 * replicate_factor
            for region in node.regions:
                self._walk_graph(region, usage, counters, "inner",
                                 replicate_factor * factor)

    def _apply_module_attrs(self, usage, counters) -> None:
        """Account for optimization decisions recorded on the IR."""
        module = self.program.module
        for rep in ops_named(module, "revet.replicate"):
            live_around = rep.attrs.get("live_around_values", 0)
            bufferized = rep.attrs.get("bufferized_values", 0)
            if bufferized:
                counters["buffer_mu"] += 1
                usage["replicate"].cu += 1  # pointer extraction context
            # Values not bufferized must be permuted through the merge tree.
            unbuffered = live_around - bufferized
            if unbuffered > 0:
                usage["replicate"].cu += math.ceil(
                    unbuffered / self.limits.max_vector_inputs)
                counters["vector_links"] += unbuffered
        for loop in ops_named(module, "scf.while"):
            live = loop.attrs.get("subword_live_values")
            if live is None:
                continue
            savings = loop.attrs.get("packed_savings", 0)
            # Unpacked sub-word values each occupy a merge input buffer; every
            # four extra inputs force another merge context.
            unpacked_cost = live - savings if savings else live
            if unpacked_cost > 0 and savings == 0 and live > 0:
                usage["inner"].cu += math.ceil(live /
                                               self.limits.max_vector_inputs)

    # -- Table IV style scaling -----------------------------------------------

    def scaled_breakdown(self, app_name: str = "", replicate_factor: int = 1,
                         target_utilization: float = 0.7,
                         max_outer: Optional[int] = None) -> ResourceBreakdown:
        """Scale outer parallelism to ~70% utilization of the critical resource."""
        single = self.pipeline_usage()
        one = single["inner"] + single["outer"] + single["replicate"]
        one_extra_mu = single["retime_mu"] + single["deadlock_mu"] + single["buffer_mu"]
        per_stream = ResourceUsage(cu=max(one.cu, 1), mu=one.mu + one_extra_mu,
                                   ag=max(one.ag, 1))
        budget = {
            "CU": self.machine.num_cus * target_utilization,
            "MU": self.machine.num_mus * target_utilization,
            "AG": self.machine.num_ags * target_utilization,
        }
        streams = int(min(
            budget["CU"] / per_stream.cu if per_stream.cu else math.inf,
            budget["MU"] / per_stream.mu if per_stream.mu else math.inf,
            budget["AG"] / per_stream.ag if per_stream.ag else math.inf,
        ))
        streams = max(1, streams)
        if max_outer is not None:
            streams = min(streams, max_outer)
        breakdown = ResourceBreakdown(
            app=app_name or self.program.graph.name,
            inner=single["inner"].scaled(streams),
            outer=single["outer"].scaled(streams),
            replicate=single["replicate"].scaled(streams),
            retime_mu=single["retime_mu"] * streams,
            deadlock_mu=single["deadlock_mu"] * streams,
            buffer_mu=single["buffer_mu"] * streams,
            outer_parallelism=streams,
            lanes=streams * self.machine.lanes * max(1, replicate_factor),
            vector_links=single["vector_links"] * streams,
            scalar_links=single["scalar_links"] * streams,
        )
        return breakdown


def estimate_resources(program: CompiledProgram, app_name: str = "",
                       replicate_factor: int = 1,
                       machine: MachineConfig = DEFAULT_MACHINE,
                       max_outer: Optional[int] = None) -> ResourceBreakdown:
    """Convenience wrapper around :class:`ResourceEstimator`."""
    estimator = ResourceEstimator(program, machine)
    return estimator.scaled_breakdown(app_name=app_name,
                                      replicate_factor=replicate_factor,
                                      max_outer=max_outer)
