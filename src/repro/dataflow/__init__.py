"""Control-flow to dataflow lowering and dataflow-level analyses."""

from repro.dataflow.lowering import CompiledProgram, DataflowLowering, lower_to_dataflow

__all__ = ["CompiledProgram", "DataflowLowering", "lower_to_dataflow"]
