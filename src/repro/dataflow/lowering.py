"""Control-flow to dataflow lowering (paper Section V-C).

This stage converts the optimized structured IR (``scf`` + ``arith`` +
``memref`` + physical ``revet`` ops) into a structured dataflow graph
(:class:`repro.core.graph.DFGraph`):

* straight-line arithmetic becomes element-wise ``compute`` nodes over SLTF
  links,
* ``scf.if`` / ``scf.while`` / ``revet.foreach`` / ``revet.replicate`` become
  the corresponding region nodes (filter + forward merge, forward-backward
  merge, counter expansion + barrier, and work distribution respectively),
* ``revet.fork`` duplicates every live link in place; the
  ``if (cond) { exit(); }`` idiom becomes a thread filter on every live link,
* memory ops become per-thread SRAM allocations and integer-addressed
  accesses (the "MemRefs to Integers" convention: ``addr = ptr * size + i``).

Values defined outside a region but used inside it are passed explicitly as
region inputs (the flattening stage later turns them into scalar-network
broadcasts), so the resulting graph is closed under each region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.columnar import make_executor
from repro.core.graph import DFGraph, DFValue
from repro.core.machine import LinkKind
from repro.core.memory import MemorySystem
from repro.errors import LoweringError
from repro.ir import Module, Operation, Value
from repro.ir.dialects.arith import BINOP_TO_OPCODE, CMP_TO_OPCODE

#: arith cast ops are width annotations only; data lanes are 32-bit.
CAST_OPS = {"arith.extsi", "arith.extui", "arith.trunci"}


@dataclass
class MemRefInfo:
    """Lowered form of one ``memref.alloc``: an allocation-site pointer."""

    site: str
    size: int
    ptr: DFValue


class _Scope:
    """Per-region lowering state: the IR-value to DF-link mapping."""

    def __init__(self, graph: DFGraph, struct_ref: DFValue):
        self.graph = graph
        self.values: Dict[int, DFValue] = {}
        self.memrefs: Dict[int, MemRefInfo] = {}
        #: Any live link at this nesting level, used to align constants.
        self.struct_ref = struct_ref

    def bind(self, ir_value: Value, df_value: DFValue) -> None:
        self.values[id(ir_value)] = df_value

    def bind_memref(self, ir_value: Value, info: MemRefInfo) -> None:
        self.memrefs[id(ir_value)] = info
        self.values[id(ir_value)] = info.ptr

    def lookup(self, ir_value: Value) -> DFValue:
        df = self.values.get(id(ir_value))
        if df is None:
            raise LoweringError(
                f"IR value %{ir_value.name} has no dataflow mapping (missing capture?)"
            )
        return df

    def lookup_memref(self, ir_value: Value) -> MemRefInfo:
        info = self.memrefs.get(id(ir_value))
        if info is None:
            raise LoweringError(
                f"IR value %{ir_value.name} is not a lowered memref in this scope"
            )
        return info


@dataclass
class CompiledProgram:
    """A compiled Revet program: the dataflow graph plus its input contract."""

    graph: DFGraph
    module: Module
    arg_names: List[str]
    dram_names: List[str]
    pragmas: List[str] = field(default_factory=list)

    def run(self, memory: MemorySystem, *, profile: bool = False,
            link_stats: bool = True, executor: Optional[str] = None,
            **args: int):
        """Execute the program on ``memory`` with scalar arguments ``args``.

        DRAM globals must already be allocated in ``memory`` under their
        declared names; their base addresses are wired into the graph inputs
        automatically.  Returns the executor (so callers can inspect the
        profile) when ``profile`` is True, otherwise the output streams.

        ``executor`` selects the execution backend: ``"columnar"`` (the
        vectorized numpy backend), ``"token"`` (the per-token reference
        interpreter), or ``"auto"``/``None`` (columnar when numpy is
        available, token otherwise).  Both backends are bit-identical —
        same outputs, memory contents, traffic counters, and profile.

        ``link_stats=False`` skips the per-link element/barrier histograms
        (node firings and loop trip counts are still collected) — the
        serving fast path, which only consumes trip counts.  The node
        schedule itself is precompiled once per program and shared by every
        run (see :func:`repro.core.executor.schedule_for`).
        """
        inputs: Dict[str, Any] = {}
        for name in self.arg_names:
            if name not in args:
                raise LoweringError(f"missing program argument '{name}'")
            inputs[name] = [args[name]]
        for name in self.dram_names:
            inputs[f"__dram_{name}"] = [memory.segment(name).base]
        runner = make_executor(
            self.graph, executor=executor, memory=memory, link_stats=link_stats
        )
        outputs = runner.run(inputs)
        return runner if profile else outputs


class DataflowLowering:
    """Lowers one function of an IR module to a structured dataflow graph."""

    def __init__(self, module: Module):
        self.module = module
        self._site_counter = 0

    # -- public API ---------------------------------------------------------------

    def lower_function(self, name: str = "main") -> CompiledProgram:
        func_op = self.module.function(name)
        entry = func_op.region(0).entry
        graph = DFGraph(name)

        arg_names = [arg.name for arg in entry.args]
        dram_names = [g.attrs["sym_name"] for g in self.module.globals()]
        pragmas = [op.attrs["name"] for op in self.module.walk()
                   if op.name == "revet.pragma"]

        scope = _Scope(graph, struct_ref=None)
        for arg in entry.args:
            df = graph.add_input(arg.name, kind=LinkKind.SCALAR)
            scope.bind(arg, df)
            if scope.struct_ref is None:
                scope.struct_ref = df
        self._dram_inputs: Dict[str, DFValue] = {}
        for dram in dram_names:
            self._dram_inputs[dram] = graph.add_input(f"__dram_{dram}",
                                                      kind=LinkKind.SCALAR)
        if scope.struct_ref is None:
            scope.struct_ref = graph.add_input("__start", kind=LinkKind.SCALAR)
            arg_names.append("__start")

        self._lower_block(entry, graph, scope)
        graph.set_outputs([])
        graph.verify()
        return CompiledProgram(graph=graph, module=self.module, arg_names=arg_names,
                               dram_names=dram_names, pragmas=pragmas)

    # -- helpers -----------------------------------------------------------------------

    def _fresh_site(self, hint: str) -> str:
        self._site_counter += 1
        return f"{hint}_{self._site_counter}"

    def _const(self, graph: DFGraph, scope: _Scope, value: int, name: str = "c") -> DFValue:
        node = graph.add_node("const", [scope.struct_ref], params={"value": value},
                              name=name)
        return node.outputs[0]

    def _compute(self, graph: DFGraph, opcode: str, inputs: Sequence[DFValue],
                 name: str = "t") -> DFValue:
        node = graph.add_node("compute", list(inputs), params={"fn": opcode}, name=name)
        return node.outputs[0]

    @staticmethod
    def _external_uses(op: Operation) -> List[Value]:
        """IR values used inside ``op``'s regions but defined outside them."""
        inside_defs: Set[int] = set()
        for nested in op.walk():
            if nested is op:
                continue
            for result in nested.results:
                inside_defs.add(id(result))
            for region in nested.regions:
                for block in region.blocks:
                    for arg in block.args:
                        inside_defs.add(id(arg))
        for region in op.regions:
            for block in region.blocks:
                for arg in block.args:
                    inside_defs.add(id(arg))
        external: List[Value] = []
        seen: Set[int] = set()
        for nested in op.walk():
            if nested is op:
                continue
            for operand in nested.operands:
                if id(operand) in inside_defs or id(operand) in seen:
                    continue
                seen.add(id(operand))
                external.append(operand)
        return external

    def _is_exit_guard(self, op: Operation) -> bool:
        """Recognize the ``if (cond) { exit(); }`` thread-termination idiom."""
        if op.name != "scf.if" or op.results:
            return False
        then_ops = op.region(0).entry.operations
        has_exit = any(o.name == "revet.exit" for o in then_ops)
        only_trivial = all(o.name in ("revet.exit", "scf.yield") for o in then_ops)
        else_ops = op.region(1).entry.operations if len(op.regions) > 1 else []
        else_trivial = all(o.name == "scf.yield" for o in else_ops)
        return has_exit and only_trivial and else_trivial

    # -- block lowering ------------------------------------------------------------------

    def _lower_block(self, block, graph: DFGraph, scope: _Scope) -> None:
        for op in list(block.operations):
            self._lower_op(op, graph, scope)

    def _lower_op(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        name = op.name
        if name == "arith.constant":
            scope.bind(op.result(), self._const(graph, scope, op.attrs["value"],
                                                 name=op.result().name))
        elif name in BINOP_TO_OPCODE:
            inputs = [scope.lookup(v) for v in op.operands]
            scope.bind(op.result(), self._compute(graph, BINOP_TO_OPCODE[name], inputs,
                                                  name=op.result().name))
        elif name == "arith.cmpi":
            opcode = CMP_TO_OPCODE[op.attrs["predicate"]]
            inputs = [scope.lookup(v) for v in op.operands]
            scope.bind(op.result(), self._compute(graph, opcode, inputs,
                                                  name=op.result().name))
        elif name == "arith.select":
            inputs = [scope.lookup(v) for v in op.operands]
            scope.bind(op.result(), self._compute(graph, "select", inputs,
                                                  name=op.result().name))
        elif name in CAST_OPS:
            scope.bind(op.result(), scope.lookup(op.operand(0)))
        elif name == "revet.dram_ref":
            scope.bind(op.result(), self._dram_inputs[op.attrs["name"]])
        elif name == "memref.alloc":
            self._lower_alloc(op, graph, scope)
        elif name == "memref.dealloc":
            info = scope.lookup_memref(op.operand(0))
            graph.add_node("sram_free", [info.ptr], params={"site": info.site},
                           name=f"free_{info.site}")
        elif name == "memref.load":
            addr = self._memref_addr(op.operand(0), op.operand(1), graph, scope)
            info = scope.lookup_memref(op.operand(0))
            node = graph.add_node("sram_read", [addr], params={"site": info.site},
                                  name=op.result().name)
            scope.bind(op.result(), node.outputs[0])
        elif name == "memref.store":
            addr = self._memref_addr(op.operand(1), op.operand(2), graph, scope)
            info = scope.lookup_memref(op.operand(1))
            graph.add_node("sram_write", [addr, scope.lookup(op.operand(0))],
                           params={"site": info.site}, name=f"st_{info.site}")
        elif name == "revet.dram_load":
            addr = self._compute(graph, "add", [scope.lookup(op.operand(0)),
                                                scope.lookup(op.operand(1))], name="daddr")
            node = graph.add_node("dram_read", [addr], name=op.result().name)
            scope.bind(op.result(), node.outputs[0])
        elif name == "revet.dram_store":
            addr = self._compute(graph, "add", [scope.lookup(op.operand(0)),
                                                scope.lookup(op.operand(1))], name="daddr")
            graph.add_node("dram_write", [addr, scope.lookup(op.operand(2))], name="dstore")
        elif name == "revet.bulk_load":
            self._lower_bulk(op, graph, scope, store=False)
        elif name == "revet.bulk_store":
            self._lower_bulk(op, graph, scope, store=True)
        elif name == "scf.if":
            if self._is_exit_guard(op):
                self._lower_exit_guard(op, graph, scope)
            else:
                self._lower_if(op, graph, scope)
        elif name == "scf.while":
            self._lower_while(op, graph, scope)
        elif name == "revet.foreach":
            self._lower_foreach(op, graph, scope)
        elif name == "revet.replicate":
            self._lower_replicate(op, graph, scope)
        elif name == "revet.fork":
            self._lower_fork(op, graph, scope)
        elif name == "revet.exit":
            # A bare exit terminates every thread reaching this point.
            false = self._const(graph, scope, 0, name="dead")
            self._filter_scope(graph, scope, false)
        elif name in ("revet.pragma", "func.return", "scf.yield", "revet.yield",
                      "scf.condition"):
            pass  # structural / handled by the enclosing region lowering
        else:
            raise LoweringError(f"cannot lower op '{name}' to dataflow")

    # -- memory ------------------------------------------------------------------------

    def _lower_alloc(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        size = op.result().type.size
        site = op.attrs.get("site") or self._fresh_site(op.attrs.get("name", "buf"))
        node = graph.add_node(
            "sram_alloc",
            [scope.struct_ref],
            params={"site": site, "buffer_words": size,
                    "max_buffers": op.attrs.get("max_buffers", 1 << 20)},
            name=f"ptr_{site}",
        )
        scope.bind_memref(op.result(), MemRefInfo(site=site, size=size,
                                                  ptr=node.outputs[0]))

    def _memref_addr(self, buf: Value, index: Value, graph: DFGraph,
                     scope: _Scope) -> DFValue:
        """addr = ptr * buffer_size + index (the memref-to-integer convention)."""
        info = scope.lookup_memref(buf)
        size_c = self._const(graph, scope, info.size, name="bufsz")
        base = self._compute(graph, "mul", [info.ptr, size_c], name="bufbase")
        return self._compute(graph, "add", [base, scope.lookup(index)], name="addr")

    def _lower_bulk(self, op: Operation, graph: DFGraph, scope: _Scope,
                    store: bool) -> None:
        dram, offset, buf = op.operands[0], op.operands[1], op.operands[2]
        info = scope.lookup_memref(buf)
        dram_addr = self._compute(graph, "add", [scope.lookup(dram),
                                                 scope.lookup(offset)], name="dbase")
        size_c = self._const(graph, scope, info.size, name="bufsz")
        sram_addr = self._compute(graph, "mul", [info.ptr, size_c], name="sbase")
        inputs = [dram_addr, sram_addr]
        if store and len(op.operands) > 3:
            inputs.append(scope.lookup(op.operands[3]))
        graph.add_node("bulk_store" if store else "bulk_load", inputs,
                       params={"site": info.site, "size": op.attrs["size"]},
                       name="bulk")

    # -- thread management ----------------------------------------------------------------

    def _filter_scope(self, graph: DFGraph, scope: _Scope, keep: DFValue) -> None:
        """Filter every live link in the current scope by ``keep``."""
        live_ids = list(scope.values.keys())
        live_vals = []
        seen: Set[int] = set()
        for vid in live_ids:
            df = scope.values[vid]
            if df.uid not in seen:
                seen.add(df.uid)
                live_vals.append((vid, df))
        unique_dfs = [df for _, df in live_vals]
        node = graph.add_node("filter", unique_dfs + [keep],
                              num_outputs=len(unique_dfs), name="alive")
        replacement = {df.uid: out for df, out in zip(unique_dfs, node.outputs)}
        for vid in live_ids:
            scope.values[vid] = replacement[scope.values[vid].uid]
        for info in scope.memrefs.values():
            info.ptr = replacement.get(info.ptr.uid, info.ptr)
        scope.struct_ref = replacement.get(scope.struct_ref.uid, node.outputs[0])

    def _lower_exit_guard(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        cond = scope.lookup(op.operand(0))
        keep = self._compute(graph, "not", [cond], name="keep")
        self._filter_scope(graph, scope, keep)

    def _lower_fork(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        count = scope.lookup(op.operand(0))
        live_ids = list(scope.values.keys())
        unique: List[DFValue] = []
        seen: Set[int] = set()
        for vid in live_ids:
            df = scope.values[vid]
            if df.uid not in seen:
                seen.add(df.uid)
                unique.append(df)
        node = graph.add_node("fork", [count] + unique, num_outputs=1 + len(unique),
                              name="fork")
        index = node.outputs[0]
        replacement = {df.uid: out for df, out in zip(unique, node.outputs[1:])}
        for vid in live_ids:
            scope.values[vid] = replacement[scope.values[vid].uid]
        for info in scope.memrefs.values():
            info.ptr = replacement.get(info.ptr.uid, info.ptr)
        scope.struct_ref = index
        scope.bind(op.result(), index)

    # -- structured control flow -------------------------------------------------------------

    def _region_scope(self, region_graph: DFGraph, ir_args: Sequence[Value],
                      df_inputs: Sequence[DFValue], parent_scope: _Scope,
                      captured: Sequence[Value], captured_inputs: Sequence[DFValue],
                      struct_ref: DFValue) -> _Scope:
        scope = _Scope(region_graph, struct_ref)
        for ir_val, df_val in zip(ir_args, df_inputs):
            scope.bind(ir_val, df_val)
        for ir_val, df_val in zip(captured, captured_inputs):
            scope.bind(ir_val, df_val)
            if id(ir_val) in parent_scope.memrefs:
                info = parent_scope.memrefs[id(ir_val)]
                scope.bind_memref(ir_val, MemRefInfo(site=info.site, size=info.size,
                                                     ptr=df_val))
        return scope

    def _unique_live(self, scope: _Scope) -> List[DFValue]:
        """All distinct live links in a scope, in first-binding order."""
        unique: List[DFValue] = []
        seen: Set[int] = set()
        for df in scope.values.values():
            if df.uid not in seen:
                seen.add(df.uid)
                unique.append(df)
        return unique

    def _rebind_scope(self, scope: _Scope, originals: Sequence[DFValue],
                      replacements: Sequence[DFValue]) -> None:
        """Replace every binding of ``originals[i]`` with ``replacements[i]``."""
        mapping = {o.uid: r for o, r in zip(originals, replacements)}
        for key, df in list(scope.values.items()):
            scope.values[key] = mapping.get(df.uid, df)
        for info in scope.memrefs.values():
            info.ptr = mapping.get(info.ptr.uid, info.ptr)
        scope.struct_ref = mapping.get(scope.struct_ref.uid, scope.struct_ref)

    def _outline_region(self, region_block, name: str, scope: _Scope,
                        node_inputs: Sequence[DFValue], captured: Sequence[Value],
                        arg_bindings: Sequence[Tuple[Value, int]]):
        """Outline an IR block into a region graph taking ``node_inputs``.

        ``arg_bindings`` maps IR block arguments to node-input positions;
        ``captured`` IR values are bound to the input holding their current
        link.  Every input is also tracked under a synthetic key so that
        forks/filters inside the region keep passthrough streams aligned.
        """
        sub = DFGraph(name)
        inputs = [sub.add_input(df.name or f"live{i}")
                  for i, df in enumerate(node_inputs)]
        sub_scope = _Scope(sub, inputs[0])
        pos_by_uid: Dict[int, int] = {}
        for i, df in enumerate(node_inputs):
            pos_by_uid.setdefault(df.uid, i)
        for ir_val, pos in arg_bindings:
            sub_scope.bind(ir_val, inputs[pos])
        for ir_val in captured:
            df = scope.lookup(ir_val)
            input_df = inputs[pos_by_uid[df.uid]]
            sub_scope.bind(ir_val, input_df)
            if id(ir_val) in scope.memrefs:
                info = scope.memrefs[id(ir_val)]
                sub_scope.bind_memref(ir_val, MemRefInfo(site=info.site, size=info.size,
                                                         ptr=input_df))
        for i, df in enumerate(inputs):
            sub_scope.values[-(i + 1)] = df
        self._lower_block(region_block, sub, sub_scope)
        return sub, sub_scope, inputs

    def _passthrough(self, sub_scope: _Scope, start: int, count: int) -> List[DFValue]:
        """Current links for node-input positions ``start .. count-1``."""
        return [sub_scope.values[-(i + 1)] for i in range(start, count)]

    def _lower_if(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        cond = scope.lookup(op.operand(0))
        live = self._unique_live(scope)
        captured = self._external_uses(op)

        regions = []
        for idx, region in enumerate(op.regions):
            name = f"{graph.name}.if{op.uid}.{'then' if idx == 0 else 'else'}"
            sub, sub_scope, _ = self._outline_region(region.entry, name, scope, live,
                                                     captured, [])
            terminator = region.entry.terminator
            yields = (terminator.operands if terminator is not None
                      and terminator.name == "scf.yield" else [])
            sub.set_outputs([sub_scope.lookup(v) for v in yields]
                            + self._passthrough(sub_scope, 0, len(live)))
            regions.append(sub)

        node = graph.add_node("if", [cond] + live,
                              num_outputs=len(op.results) + len(live),
                              regions=regions, name=f"if{op.uid}")
        for result, out in zip(op.results, node.outputs):
            scope.bind(result, out)
        self._rebind_scope(scope, live, node.outputs[len(op.results):])

    def _lower_while(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        inits = [scope.lookup(v) for v in op.operands]
        init_uids = {df.uid for df in inits}
        rest = [df for df in self._unique_live(scope) if df.uid not in init_uids]
        node_inputs = inits + rest
        captured = self._external_uses(op)
        before, after = op.region(0).entry, op.region(1).entry

        cond_term = before.terminator
        if cond_term is None or cond_term.name != "scf.condition":
            raise LoweringError("scf.while before-region must end in scf.condition")

        # Condition region: computes the loop predicate from the live values.
        cond_graph, cond_scope, _ = self._outline_region(
            before, f"{graph.name}.while{op.uid}.cond", scope, node_inputs, captured,
            [(arg, i) for i, arg in enumerate(before.args)])
        cond_graph.set_outputs([cond_scope.lookup(cond_term.operand(0))])

        # Body region: computes the next carried values; the rest pass through.
        body_graph, body_scope, _ = self._outline_region(
            after, f"{graph.name}.while{op.uid}.body", scope, node_inputs, captured,
            [(arg, i) for i, arg in enumerate(after.args)])
        yields = [body_scope.lookup(v) for v in after.terminator.operands]
        body_graph.set_outputs(yields + self._passthrough(body_scope, len(inits),
                                                          len(node_inputs)))

        node = graph.add_node("while", node_inputs, num_outputs=len(node_inputs),
                              regions=[cond_graph, body_graph], name=f"while{op.uid}",
                              params={"label": f"while{op.uid}"})
        for result, out in zip(op.results, node.outputs[: len(op.operands)]):
            scope.bind(result, out)
        self._rebind_scope(scope, node_inputs, node.outputs)

    def _lower_foreach(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        count = scope.lookup(op.operand(0))
        step = scope.lookup(op.operand(1))
        zero = self._const(graph, scope, 0, name="zero")
        captured = self._external_uses(op)
        cap_dfs = [scope.lookup(v) for v in captured]

        body = op.region(0).entry
        body_graph = DFGraph(f"{graph.name}.foreach{op.uid}")
        index_input = body_graph.add_input(body.args[0].name or "i")
        cap_inputs = [body_graph.add_input(v.name or f"cap{i}")
                      for i, v in enumerate(captured)]
        body_scope = self._region_scope(body_graph, [body.args[0]], [index_input],
                                        scope, captured, cap_inputs, index_input)
        self._lower_block(body, body_graph, body_scope)
        terminator = body.terminator
        yields = (terminator.operands if terminator is not None
                  and terminator.name == "revet.yield" else [])
        body_graph.set_outputs([body_scope.lookup(v) for v in yields])

        reduce_op = op.attrs.get("reduce")
        params = {}
        if reduce_op:
            params = {"reduce_op": reduce_op, "reduce_init": 0}
        node = graph.add_node("foreach", [zero, count, step] + cap_dfs,
                              num_outputs=len(op.results), regions=[body_graph],
                              params=params, name=f"foreach{op.uid}")
        for result, out in zip(op.results, node.outputs):
            scope.bind(result, out)

    def _lower_replicate(self, op: Operation, graph: DFGraph, scope: _Scope) -> None:
        live = self._unique_live(scope)
        captured = self._external_uses(op)
        body = op.region(0).entry

        body_graph, body_scope, _ = self._outline_region(
            body, f"{graph.name}.replicate{op.uid}", scope, live, captured, [])
        terminator = body.terminator
        yields = (terminator.operands if terminator is not None
                  and terminator.name == "revet.yield" else [])
        body_graph.set_outputs([body_scope.lookup(v) for v in yields]
                               + self._passthrough(body_scope, 0, len(live)))

        node = graph.add_node("replicate", live,
                              num_outputs=len(op.results) + len(live),
                              regions=[body_graph],
                              params={"factor": op.attrs.get("factor", 1)},
                              name=f"replicate{op.uid}")
        for result, out in zip(op.results, node.outputs):
            scope.bind(result, out)
        self._rebind_scope(scope, live, node.outputs[len(op.results):])


def lower_to_dataflow(module: Module, function: str = "main") -> CompiledProgram:
    """Lower one function of an IR module to a dataflow program."""
    return DataflowLowering(module).lower_function(function)
