"""IR builder: insertion-point-based construction of operations."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.errors import IRError
from repro.ir.core import Block, Operation, Region, Type, Value


class Builder:
    """Creates operations at an insertion point inside a block."""

    def __init__(self, block: Optional[Block] = None):
        self.block = block
        self.insert_index: Optional[int] = None  # None = append at end

    # -- insertion point management -----------------------------------------

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.block = block
        self.insert_index = None

    def set_insertion_point_before(self, op: Operation) -> None:
        if op.parent is None:
            raise IRError("cannot set insertion point before a detached op")
        self.block = op.parent
        self.insert_index = op.parent.operations.index(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        if op.parent is None:
            raise IRError("cannot set insertion point after a detached op")
        self.block = op.parent
        self.insert_index = op.parent.operations.index(op) + 1

    # -- op creation ----------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if self.insert_index is None:
            self.block.append(op)
        else:
            op.parent = self.block
            self.block.operations.insert(self.insert_index, op)
            self.insert_index += 1
        return op

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attrs: Optional[Dict[str, Any]] = None,
        num_regions: int = 0,
    ) -> Operation:
        """Create an op with empty regions and insert it."""
        op = Operation(name, operands=operands, result_types=result_types, attrs=attrs)
        for _ in range(num_regions):
            region = op.add_region()
            region.add_block()
        return self.insert(op)

    def create_detached(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attrs: Optional[Dict[str, Any]] = None,
        num_regions: int = 0,
    ) -> Operation:
        """Create an op without inserting it anywhere."""
        op = Operation(name, operands=operands, result_types=result_types, attrs=attrs)
        for _ in range(num_regions):
            region = op.add_region()
            region.add_block()
        return op

    def at_end_of(self, region: Region) -> "Builder":
        """A new builder appending to the entry block of ``region``."""
        sub = Builder()
        sub.set_insertion_point_to_end(region.entry)
        return sub
