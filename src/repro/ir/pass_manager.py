"""Pass infrastructure: passes, the pass manager, and pipeline assembly."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.errors import PassError
from repro.ir.core import Module
from repro.ir.verifier import verify


class Pass:
    """Base class for module-level rewrite passes."""

    #: Human-readable pass name (used in pipeline descriptions and timing).
    name: str = "pass"

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """A pass that visits each ``func.func`` independently."""

    def run(self, module: Module) -> bool:
        changed = False
        for func_op in module.functions():
            changed |= bool(self.run_on_function(module, func_op))
        return changed

    def run_on_function(self, module: Module, func_op) -> bool:
        raise NotImplementedError


@dataclass
class PassTiming:
    """Wall-clock timing for one pass execution."""

    name: str
    seconds: float
    changed: bool


@dataclass
class PassManager:
    """Runs a sequence of passes, optionally verifying after each one."""

    passes: List[Pass] = field(default_factory=list)
    verify_each: bool = True
    timings: List[PassTiming] = field(default_factory=list)

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Module) -> Module:
        for p in self.passes:
            start = time.perf_counter()
            try:
                changed = bool(p.run(module))
            except PassError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise PassError(f"pass '{p.name}' failed: {exc}") from exc
            self.timings.append(PassTiming(p.name, time.perf_counter() - start, changed))
            if self.verify_each:
                verify(module)
        return module

    def describe(self) -> str:
        """A printable pipeline description."""
        return " -> ".join(p.name for p in self.passes)
