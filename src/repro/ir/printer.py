"""Textual IR printer (MLIR-flavoured, for debugging and golden tests)."""

from __future__ import annotations

from typing import List

from repro.ir.core import Module, Operation, Region


def _fmt_attr(value) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)


class Printer:
    """Pretty-prints modules, operations, and regions."""

    def __init__(self, indent: str = "  "):
        self.indent = indent

    def print_module(self, module: Module) -> str:
        lines = [f"module @{module.name} {{"]
        for op in module.operations:
            lines.extend(self._op_lines(op, 1))
        lines.append("}")
        return "\n".join(lines)

    def print_op(self, op: Operation) -> str:
        return "\n".join(self._op_lines(op, 0))

    # -- internals ---------------------------------------------------------

    def _op_lines(self, op: Operation, depth: int) -> List[str]:
        pad = self.indent * depth
        results = ", ".join(f"%{r.name}" for r in op.results)
        prefix = f"{results} = " if results else ""
        operands = ", ".join(f"%{v.name}" for v in op.operands)
        attrs = ""
        visible_attrs = {k: v for k, v in op.attrs.items() if v is not None}
        if visible_attrs:
            attrs = " {" + ", ".join(
                f"{k} = {_fmt_attr(v)}" for k, v in sorted(visible_attrs.items())
            ) + "}"
        types = ""
        if op.results:
            types = " : " + ", ".join(repr(r.type) for r in op.results)
        line = f"{pad}{prefix}{op.name}({operands}){attrs}{types}"
        lines = [line]
        for region in op.regions:
            lines.extend(self._region_lines(region, depth))
        return lines

    def _region_lines(self, region: Region, depth: int) -> List[str]:
        pad = self.indent * depth
        lines = [f"{pad}{{"]
        for i, block in enumerate(region.blocks):
            if block.args or len(region.blocks) > 1:
                args = ", ".join(f"%{a.name}: {a.type!r}" for a in block.args)
                lines.append(f"{pad}^bb{i}({args}):")
            for op in block.operations:
                lines.extend(self._op_lines(op, depth + 1))
        lines.append(f"{pad}}}")
        return lines


def print_module(module: Module) -> str:
    """Print a module with default settings."""
    return Printer().print_module(module)


def print_op(op: Operation) -> str:
    """Print a single operation (and its regions)."""
    return Printer().print_op(op)
