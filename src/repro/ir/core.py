"""MLIR-style IR core: types, values, operations, blocks, regions, modules.

The Revet compiler (paper Section V) is built on MLIR; this module provides
the subset of MLIR's infrastructure the compiler relies on, from scratch:

* a small type system (integers of several widths, memrefs, DRAM handles,
  iterators/views before lowering, and a void type for ordering tokens),
* SSA values with use lists,
* generic :class:`Operation` objects identified by a dialect-qualified name
  (``"arith.addi"``, ``"scf.while"``, ``"revet.foreach"``, ...), carrying
  operands, results, attributes, and nested regions,
* :class:`Block` / :class:`Region` / :class:`Module` containers, and
* walking and replacement utilities used by the rewrite passes.

Operation *semantics* (verification rules and constructor helpers) live in
the dialect modules under :mod:`repro.ir.dialects`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import IRError

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Type:
    """Base class for IR types.  Types are immutable and compared by value."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and vars(self) == vars(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(vars(self).items()))))

    def __repr__(self) -> str:
        return self.__class__.__name__


class IntType(Type):
    """An integer type of a given bit width (i1 is used for booleans)."""

    def __init__(self, width: int = 32):
        if width not in (1, 8, 16, 32, 64):
            raise IRError(f"unsupported integer width {width}")
        self.width = width

    def __repr__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """A 32-bit floating point type (rarely used by the paper's kernels)."""

    def __repr__(self) -> str:
        return "f32"


class VoidType(Type):
    """A data-free ordering token (the paper's CMMC-style void values)."""

    def __repr__(self) -> str:
        return "void"


class MemRefType(Type):
    """An on-chip SRAM buffer of a compile-time fixed size."""

    def __init__(self, size: int, element: Optional[Type] = None):
        self.size = size
        self.element = element or IntType(32)

    def __repr__(self) -> str:
        return f"memref<{self.size}x{self.element}>"


class DRAMType(Type):
    """A handle to a DRAM segment (the Revet ``DRAM<T>`` type)."""

    def __init__(self, element: Optional[Type] = None):
        self.element = element or IntType(32)

    def __repr__(self) -> str:
        return f"dram<{self.element}>"


class ViewType(Type):
    """A high-level view/iterator type before lowering (Table I adapters)."""

    def __init__(self, kind: str, size: int, element: Optional[Type] = None):
        self.kind = kind  # ReadView, WriteView, ModifyView, ReadIt, ...
        self.size = size
        self.element = element or IntType(32)

    def __repr__(self) -> str:
        return f"{self.kind}<{self.size}x{self.element}>"


class FunctionType(Type):
    """A function signature type."""

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs = tuple(inputs)
        self.results = tuple(results)

    def __repr__(self) -> str:
        ins = ", ".join(map(repr, self.inputs))
        outs = ", ".join(map(repr, self.results))
        return f"({ins}) -> ({outs})"


I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
VOID = VoidType()
F32 = FloatType()


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

_value_ids = itertools.count()


class Value:
    """An SSA value: either an operation result or a block argument."""

    def __init__(self, type: Type, name: str = "", owner: Optional["Operation"] = None,
                 index: int = 0, is_block_arg: bool = False,
                 block: Optional["Block"] = None):
        self.type = type
        self.name = name or f"v{next(_value_ids)}"
        self.owner = owner          # defining op (None for block args)
        self.index = index
        self.is_block_arg = is_block_arg
        self.block = block          # owning block for block args
        self.uses: List["Operation"] = []

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every operand use of this value to ``other``."""
        if other is self:
            return
        for op in list(self.uses):
            op.operands = [other if v is self else v for v in op.operands]
            if op not in other.uses:
                other.uses.append(op)
        self.uses = []

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def __repr__(self) -> str:
        return f"%{self.name}"


# ---------------------------------------------------------------------------
# Operations, blocks, regions
# ---------------------------------------------------------------------------

_op_ids = itertools.count()


class Operation:
    """A generic operation: ``results = name(operands) {attrs} regions``."""

    def __init__(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attrs: Optional[Dict[str, Any]] = None,
        regions: Optional[Sequence["Region"]] = None,
    ):
        if "." not in name:
            raise IRError(f"operation name '{name}' must be dialect-qualified")
        self.name = name
        self.operands: List[Value] = list(operands)
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.regions: List[Region] = list(regions or [])
        self.parent: Optional[Block] = None
        self.uid = next(_op_ids)
        self.results: List[Value] = [
            Value(t, owner=self, index=i) for i, t in enumerate(result_types)
        ]
        for region in self.regions:
            region.parent_op = self
        for operand in self.operands:
            operand.uses.append(self)

    # -- structural helpers -------------------------------------------------

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def opname(self) -> str:
        return self.name.split(".", 1)[1]

    def result(self, index: int = 0) -> Value:
        return self.results[index]

    def operand(self, index: int = 0) -> Value:
        return self.operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        self.operands[index] = value
        if self not in value.uses:
            value.uses.append(self)
        if old is not value and all(v is not old for v in self.operands):
            if self in old.uses:
                old.uses.remove(self)

    def add_region(self) -> "Region":
        region = Region()
        region.parent_op = self
        self.regions.append(region)
        return region

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    def walk(self) -> Iterator["Operation"]:
        """Yield this op and all ops nested in its regions (pre-order)."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def erase(self) -> None:
        """Remove this op from its block and drop operand uses."""
        if self.parent is not None:
            self.parent.operations.remove(self)
            self.parent = None
        for operand in self.operands:
            if self in operand.uses:
                operand.uses.remove(self)
        for result in self.results:
            if result.uses:
                raise IRError(
                    f"cannot erase op '{self.name}': result {result!r} still has uses"
                )

    def replace_with_values(self, values: Sequence[Value]) -> None:
        """Replace this op's results with ``values`` and erase it."""
        if len(values) != len(self.results):
            raise IRError("replacement value count mismatch")
        for result, value in zip(self.results, values):
            result.replace_all_uses_with(value)
        self.erase()

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation, remapping operands through ``value_map``."""
        value_map = value_map if value_map is not None else {}
        operands = [value_map.get(v, v) for v in self.operands]
        new_op = Operation(
            self.name,
            operands=operands,
            result_types=[r.type for r in self.results],
            attrs=dict(self.attrs),
        )
        for old_res, new_res in zip(self.results, new_op.results):
            new_res.name = old_res.name + "_c"
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = new_op.add_region()
            for block in region.blocks:
                new_block = Block(
                    arg_types=[a.type for a in block.args],
                    arg_names=[a.name for a in block.args],
                )
                for old_arg, new_arg in zip(block.args, new_block.args):
                    value_map[old_arg] = new_arg
                new_region.add_block(new_block)
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new_op

    def __repr__(self) -> str:
        return f"<{self.name} #{self.uid}>"


class Block:
    """A sequence of operations with block arguments (like an MLIR block)."""

    def __init__(self, arg_types: Sequence[Type] = (), arg_names: Sequence[str] = ()):
        self.args: List[Value] = []
        for i, t in enumerate(arg_types):
            name = arg_names[i] if i < len(arg_names) else ""
            self.args.append(Value(t, name=name, is_block_arg=True, index=i, block=self))
        self.operations: List[Operation] = []
        self.parent: Optional[Region] = None

    def append(self, op: Operation) -> Operation:
        op.parent = self
        self.operations.append(op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        idx = self.operations.index(anchor)
        op.parent = self
        self.operations.insert(idx, op)
        return op

    def add_arg(self, type: Type, name: str = "") -> Value:
        arg = Value(type, name=name, is_block_arg=True, index=len(self.args), block=self)
        self.args.append(arg)
        return arg

    @property
    def terminator(self) -> Optional[Operation]:
        return self.operations[-1] if self.operations else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __repr__(self) -> str:
        return f"<Block args={len(self.args)} ops={len(self.operations)}>"


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self):
        self.blocks: List[Block] = []
        self.parent_op: Optional[Operation] = None

    def add_block(self, block: Optional[Block] = None) -> Block:
        block = block or Block()
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            for op in list(block.operations):
                yield from op.walk()

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


class Module:
    """The top-level container: a list of functions and global symbols."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.body = Region()
        self.body.add_block()

    @property
    def operations(self) -> List[Operation]:
        return self.body.entry.operations

    def append(self, op: Operation) -> Operation:
        return self.body.entry.append(op)

    def walk(self) -> Iterator[Operation]:
        yield from self.body.walk()

    def functions(self) -> List[Operation]:
        return [op for op in self.operations if op.name == "func.func"]

    def function(self, name: str) -> Operation:
        for op in self.functions():
            if op.attrs.get("sym_name") == name:
                return op
        raise IRError(f"no function named '{name}' in module")

    def globals(self) -> List[Operation]:
        return [op for op in self.operations if op.name == "revet.dram_global"]

    def __repr__(self) -> str:
        return f"<Module {self.name}: {len(self.operations)} top-level ops>"


# ---------------------------------------------------------------------------
# Walking / matching helpers used by passes
# ---------------------------------------------------------------------------


def walk_ops(
    container: Union[Module, Operation, Region, Block],
    predicate: Optional[Callable[[Operation], bool]] = None,
) -> List[Operation]:
    """Collect (a snapshot of) ops in ``container`` matching ``predicate``."""
    if isinstance(container, Module):
        ops: Iterable[Operation] = container.walk()
    elif isinstance(container, Operation):
        ops = container.walk()
    elif isinstance(container, Region):
        ops = container.walk()
    elif isinstance(container, Block):
        ops = (o for op in list(container.operations) for o in op.walk())
    else:  # pragma: no cover - defensive
        raise IRError(f"cannot walk {container!r}")
    result = list(ops)
    if predicate is not None:
        result = [op for op in result if predicate(op)]
    return result


def ops_named(container: Union[Module, Operation, Region, Block], name: str) -> List[Operation]:
    """All ops with a given dialect-qualified name."""
    return walk_ops(container, lambda op: op.name == name)


def parent_of_type(op: Operation, name: str) -> Optional[Operation]:
    """Find the closest enclosing op with the given name."""
    current = op.parent
    while current is not None:
        owner = current.parent.parent_op if current.parent else None
        if owner is None:
            return None
        if owner.name == name:
            return owner
        current = owner.parent
    return None
