"""IR verifier: structural and dominance-style checks.

The verifier checks:

* every op's name is registered, with operand/result/region counts and
  required attributes matching its :class:`OpInfo`,
* SSA visibility: every operand is defined before use in the same block, in
  an enclosing region (region values are visible to nested regions), or is a
  block argument,
* region terminators: ``scf.while`` region shapes, ``scf.if`` regions ending
  in ``scf.yield``, and function bodies ending in ``func.return``.
"""

from __future__ import annotations

from typing import Set

from repro.errors import IRError
from repro.ir.core import Block, Module, Operation
from repro.ir.dialects.registry import op_info
from repro.ir.dialects.scf import verify_while


def verify(module: Module) -> None:
    """Verify a whole module; raises :class:`IRError` on the first problem."""
    for op in module.operations:
        _verify_op(op)
        _verify_visibility(op, set())
    for op in module.walk():
        _verify_op(op)


def verify_op_tree(op: Operation) -> None:
    """Verify one operation and everything nested inside it."""
    for nested in op.walk():
        _verify_op(nested)
    _verify_visibility(op, set())


def _verify_op(op: Operation) -> None:
    info = op_info(op.name)
    if info is None:
        raise IRError(f"unregistered operation '{op.name}'")
    n_operands = len(op.operands)
    if n_operands < info.min_operands:
        raise IRError(
            f"'{op.name}' expects at least {info.min_operands} operands, "
            f"got {n_operands}"
        )
    if info.max_operands is not None and n_operands > info.max_operands:
        raise IRError(
            f"'{op.name}' expects at most {info.max_operands} operands, "
            f"got {n_operands}"
        )
    if info.num_results is not None and len(op.results) != info.num_results:
        raise IRError(
            f"'{op.name}' expects {info.num_results} results, got {len(op.results)}"
        )
    if info.num_regions and len(op.regions) != info.num_regions:
        raise IRError(
            f"'{op.name}' expects {info.num_regions} regions, got {len(op.regions)}"
        )
    for attr in info.required_attrs:
        if attr not in op.attrs:
            raise IRError(f"'{op.name}' is missing required attribute '{attr}'")
    if op.name == "scf.while":
        verify_while(op)
    if op.name == "scf.if":
        for region in op.regions:
            term = region.entry.terminator
            if op.results and (term is None or term.name != "scf.yield"):
                raise IRError("scf.if with results needs scf.yield terminators")
    if op.name == "func.func":
        body = op.region(0).entry
        if body.terminator is None or body.terminator.name != "func.return":
            raise IRError(
                f"function '{op.attrs.get('sym_name')}' must end with func.return"
            )


def _verify_visibility(op: Operation, visible: Set[int]) -> None:
    """Check def-before-use with lexical (nested-region) scoping."""
    for operand in op.operands:
        if id(operand) not in visible and not operand.is_block_arg:
            # Block arguments are checked when entering their block below;
            # operands defined by ops must already be visible.
            raise IRError(
                f"operand {operand!r} of '{op.name}' used before definition"
            )
    for region in op.regions:
        for block in region.blocks:
            inner: Set[int] = set(visible)
            inner.update(id(a) for a in block.args)
            for nested in block.operations:
                _verify_visibility(nested, inner)
                inner.update(id(r) for r in nested.results)
    for result in op.results:
        visible.add(id(result))


def _verify_visibility_entry(container: Block, visible: Set[int]) -> None:
    inner = set(visible)
    inner.update(id(a) for a in container.args)
    for op in container.operations:
        _verify_visibility(op, inner)
        inner.update(id(r) for r in op.results)
