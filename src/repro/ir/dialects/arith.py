"""``arith`` dialect: integer arithmetic, comparisons, selects, and casts."""

from __future__ import annotations

from typing import Optional

from repro.errors import IRError
from repro.ir.builder import Builder
from repro.ir.core import I1, I32, IntType, Type, Value

#: Comparison predicates accepted by ``arith.cmpi``.
CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

#: Map arith binary op names to the dataflow opcode used after lowering.
BINOP_TO_OPCODE = {
    "arith.addi": "add",
    "arith.subi": "sub",
    "arith.muli": "mul",
    "arith.divsi": "div",
    "arith.remsi": "rem",
    "arith.andi": "and",
    "arith.ori": "or",
    "arith.xori": "xor",
    "arith.shli": "shl",
    "arith.shrui": "shr",
    "arith.shrsi": "ashr",
    "arith.minsi": "min",
    "arith.maxsi": "max",
}

CMP_TO_OPCODE = {
    "eq": "eq",
    "ne": "ne",
    "slt": "lt",
    "sle": "le",
    "sgt": "gt",
    "sge": "ge",
    "ult": "lt",
    "ule": "le",
    "ugt": "gt",
    "uge": "ge",
}


def constant(builder: Builder, value: int, type: Optional[Type] = None) -> Value:
    """Create an ``arith.constant``."""
    op = builder.create("arith.constant", [], [type or I32], {"value": value})
    return op.result()


def binary(builder: Builder, name: str, lhs: Value, rhs: Value,
           type: Optional[Type] = None) -> Value:
    """Create a binary arithmetic op (``name`` like ``"addi"``)."""
    full = f"arith.{name}"
    if full not in BINOP_TO_OPCODE:
        raise IRError(f"unknown arith binary op '{name}'")
    op = builder.create(full, [lhs, rhs], [type or lhs.type])
    return op.result()


def addi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "addi", lhs, rhs)


def subi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "subi", lhs, rhs)


def muli(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "muli", lhs, rhs)


def cmpi(builder: Builder, predicate: str, lhs: Value, rhs: Value) -> Value:
    """Create an ``arith.cmpi`` with the given predicate."""
    if predicate not in CMP_PREDICATES:
        raise IRError(f"unknown cmpi predicate '{predicate}'")
    op = builder.create("arith.cmpi", [lhs, rhs], [I1], {"predicate": predicate})
    return op.result()


def select(builder: Builder, cond: Value, a: Value, b: Value) -> Value:
    op = builder.create("arith.select", [cond, a, b], [a.type])
    return op.result()


def cast(builder: Builder, value: Value, to: IntType) -> Value:
    """Integer width conversion (ext/trunc chosen from the widths)."""
    if not isinstance(value.type, IntType):
        raise IRError(f"cannot cast non-integer value {value!r}")
    if value.type.width == to.width:
        return value
    name = "arith.extsi" if to.width > value.type.width else "arith.trunci"
    op = builder.create(name, [value], [to])
    return op.result()
