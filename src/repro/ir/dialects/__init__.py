"""IR dialects: op name constants, constructor helpers, and op metadata."""

from repro.ir.dialects import arith, func, memref, revet, scf
from repro.ir.dialects.registry import OP_INFO, OpInfo, is_terminator, op_info

__all__ = ["arith", "func", "memref", "revet", "scf", "OP_INFO", "OpInfo",
           "is_terminator", "op_info"]
