"""``memref`` dialect: on-chip SRAM buffers with fixed compile-time sizes."""

from __future__ import annotations

from typing import Optional

from repro.ir.builder import Builder
from repro.ir.core import I32, MemRefType, Operation, Type, Value


def alloc(builder: Builder, size: int, element: Optional[Type] = None,
          name: str = "buf") -> Value:
    """Allocate an SRAM buffer of ``size`` elements."""
    op = builder.create("memref.alloc", [], [MemRefType(size, element)],
                        {"name": name})
    op.result().name = name
    return op.result()


def dealloc(builder: Builder, buffer: Value) -> Operation:
    return builder.create("memref.dealloc", [buffer], [])


def load(builder: Builder, buffer: Value, index: Value) -> Value:
    elem = buffer.type.element if isinstance(buffer.type, MemRefType) else I32
    op = builder.create("memref.load", [buffer, index], [elem])
    return op.result()


def store(builder: Builder, value: Value, buffer: Value, index: Value) -> Operation:
    return builder.create("memref.store", [value, buffer, index], [])
