"""``scf`` dialect: structured control flow (if / while / yield / condition).

The shapes follow MLIR's SCF dialect:

* ``scf.if %cond -> (results)``: two regions (then/else), each terminated by
  an ``scf.yield`` carrying the region's results.
* ``scf.while (inits) -> (results)``: a *before* region that computes the
  loop condition and forwards the live values via ``scf.condition``, and an
  *after* region (the loop body) terminated by ``scf.yield`` with the next
  live values.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import IRError
from repro.ir.builder import Builder
from repro.ir.core import Block, Operation, Type, Value


def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("scf.yield", list(values), [])


def condition(builder: Builder, cond: Value, args: Sequence[Value] = ()) -> Operation:
    return builder.create("scf.condition", [cond] + list(args), [])


def if_(builder: Builder, cond: Value, result_types: Sequence[Type] = ()) -> Operation:
    """Create an ``scf.if`` with empty then/else blocks."""
    op = builder.create("scf.if", [cond], list(result_types), num_regions=2)
    return op


def then_block(if_op: Operation) -> Block:
    return if_op.region(0).entry


def else_block(if_op: Operation) -> Block:
    return if_op.region(1).entry


def while_(builder: Builder, inits: Sequence[Value],
           result_types: Optional[Sequence[Type]] = None) -> Operation:
    """Create an ``scf.while`` whose regions carry the init values' types."""
    types = [v.type for v in inits]
    op = builder.create("scf.while", list(inits),
                        list(result_types) if result_types is not None else types,
                        num_regions=2)
    before = op.region(0).entry
    after = op.region(1).entry
    for v in inits:
        before.add_arg(v.type, name=v.name + "_b")
        after.add_arg(v.type, name=v.name + "_a")
    return op


def before_block(while_op: Operation) -> Block:
    return while_op.region(0).entry


def after_block(while_op: Operation) -> Block:
    return while_op.region(1).entry


def verify_while(op: Operation) -> None:
    """Structural checks for scf.while used by the verifier."""
    if len(op.regions) != 2:
        raise IRError("scf.while needs before/after regions")
    before, after = op.region(0).entry, op.region(1).entry
    if before.terminator is None or before.terminator.name != "scf.condition":
        raise IRError("scf.while before-region must end with scf.condition")
    if after.terminator is None or after.terminator.name != "scf.yield":
        raise IRError("scf.while after-region must end with scf.yield")
