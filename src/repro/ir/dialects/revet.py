"""``revet`` dialect: the custom front-end and lowering ops (paper Section V-A).

High-level ops created by the front end:

* ``revet.dram_global`` / ``revet.dram_ref`` — DRAM tensors declared at file
  scope and referenced inside functions.
* ``revet.foreach`` — explicitly parallel loop whose body is one thread per
  iteration; optionally reduces a yielded value.
* ``revet.replicate`` — distributes threads across multiple scalar pipelines.
* ``revet.fork`` / ``revet.exit`` — dynamic thread spawning and termination.
* ``revet.view_new`` / ``view_load`` / ``view_store`` — tile-transfer views.
* ``revet.it_new`` / ``it_deref`` / ``it_peek`` / ``it_advance`` / ``it_put``
  / ``it_flush`` — data-dependent sequential iterators.
* ``revet.pragma`` — pass directives (e.g. ``eliminate_hierarchy``).

Lowered (physical) ops produced by the optimization pipeline:

* ``revet.bulk_load`` / ``revet.bulk_store`` — AG tile transfers.
* ``revet.dram_load`` / ``revet.dram_store`` — demand word accesses.
* ``revet.alloc_ptr`` / ``revet.free_ptr`` / ``revet.sram_read`` /
  ``revet.sram_write`` — integer-pointer SRAM accesses after the
  memref-to-integer lowering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.builder import Builder
from repro.ir.core import (
    I32,
    DRAMType,
    IntType,
    Module,
    Operation,
    Type,
    Value,
    ViewType,
)

VIEW_KINDS = ("ReadView", "WriteView", "ModifyView")
ITERATOR_KINDS = ("ReadIt", "PeekReadIt", "WriteIt", "ManualWriteIt")


# -- globals -----------------------------------------------------------------


def dram_global(module: Module, name: str, element_width: int = 32,
                size: Optional[int] = None) -> Operation:
    """Declare a DRAM tensor at module scope."""
    op = Operation("revet.dram_global",
                   attrs={"sym_name": name, "element_width": element_width,
                          "size": size})
    module.append(op)
    return op


def dram_ref(builder: Builder, name: str, element_width: int = 32) -> Value:
    """Reference a DRAM global inside a function (yields its base handle)."""
    elem = IntType(element_width) if element_width in (8, 16, 32, 64) else I32
    op = builder.create("revet.dram_ref", [], [DRAMType(elem)], {"name": name})
    return op.result()


# -- parallelism -----------------------------------------------------------------


def foreach(builder: Builder, count: Value, step: Value,
            result_types: Sequence[Type] = (), reduce: Optional[str] = None,
            index_name: str = "i") -> Operation:
    """Create a ``revet.foreach`` over ``0 .. count`` by ``step``.

    The body region gets one block argument: the iteration index.  A reduced
    result (if any) is produced by the region's ``revet.yield``.
    """
    op = builder.create("revet.foreach", [count, step], list(result_types),
                        {"reduce": reduce}, num_regions=1)
    op.region(0).entry.add_arg(I32, name=index_name)
    return op


def replicate(builder: Builder, factor: int,
              result_types: Sequence[Type] = ()) -> Operation:
    """Create a ``revet.replicate`` region with the given factor."""
    return builder.create("revet.replicate", [], list(result_types),
                          {"factor": factor}, num_regions=1)


def fork(builder: Builder, count: Value) -> Value:
    """Spawn ``count`` hierarchy-less threads; yields the per-thread index."""
    op = builder.create("revet.fork", [count], [I32])
    return op.result()


def exit_(builder: Builder) -> Operation:
    """Terminate the current thread without returning a value."""
    return builder.create("revet.exit", [], [])


def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("revet.yield", list(values), [])


def pragma(builder: Builder, name: str) -> Operation:
    return builder.create("revet.pragma", [], [], {"name": name})


# -- views and iterators -------------------------------------------------------------


def view_new(builder: Builder, kind: str, size: int, dram: Value, base: Value,
             element_width: int = 32) -> Value:
    op = builder.create("revet.view_new", [dram, base],
                        [ViewType(kind, size, IntType(element_width))],
                        {"kind": kind, "size": size, "element_width": element_width})
    return op.result()


def view_load(builder: Builder, view: Value, index: Value) -> Value:
    elem = view.type.element if isinstance(view.type, ViewType) else I32
    op = builder.create("revet.view_load", [view, index], [elem])
    return op.result()


def view_store(builder: Builder, view: Value, index: Value, value: Value) -> Operation:
    return builder.create("revet.view_store", [view, index, value], [])


def it_new(builder: Builder, kind: str, tile: int, dram: Value, seek: Value,
           element_width: int = 32) -> Value:
    op = builder.create("revet.it_new", [dram, seek],
                        [ViewType(kind, tile, IntType(element_width))],
                        {"kind": kind, "tile": tile, "element_width": element_width})
    return op.result()


def it_deref(builder: Builder, it: Value) -> Value:
    elem = it.type.element if isinstance(it.type, ViewType) else I32
    op = builder.create("revet.it_deref", [it], [elem])
    return op.result()


def it_peek(builder: Builder, it: Value, offset: Value) -> Value:
    elem = it.type.element if isinstance(it.type, ViewType) else I32
    op = builder.create("revet.it_peek", [it, offset], [elem])
    return op.result()


def it_advance(builder: Builder, it: Value, amount: Optional[Value] = None) -> Operation:
    ops = [it] if amount is None else [it, amount]
    return builder.create("revet.it_advance", ops, [])


def it_put(builder: Builder, it: Value, value: Value) -> Operation:
    return builder.create("revet.it_put", [it, value], [])


def it_flush(builder: Builder, it: Value) -> Operation:
    return builder.create("revet.it_flush", [it], [])


# -- lowered memory ops ---------------------------------------------------------------


def bulk_load(builder: Builder, dram: Value, dram_offset: Value, buffer: Value,
              size: int) -> Operation:
    return builder.create("revet.bulk_load", [dram, dram_offset, buffer], [],
                          {"size": size})


def bulk_store(builder: Builder, dram: Value, dram_offset: Value, buffer: Value,
               size: int, count: Optional[Value] = None) -> Operation:
    """Store ``size`` words (or a dynamic ``count`` <= size) from SRAM to DRAM."""
    operands = [dram, dram_offset, buffer] + ([count] if count is not None else [])
    return builder.create("revet.bulk_store", operands, [], {"size": size})


def dram_load(builder: Builder, dram: Value, offset: Value,
              element_width: int = 32) -> Value:
    op = builder.create("revet.dram_load", [dram, offset],
                        [IntType(element_width)], {"element_width": element_width})
    return op.result()


def dram_store(builder: Builder, dram: Value, offset: Value, value: Value,
               element_width: int = 32) -> Operation:
    return builder.create("revet.dram_store", [dram, offset, value], [],
                          {"element_width": element_width})


def alloc_ptr(builder: Builder, site: str, buffer_words: int,
              max_buffers: int = 4096) -> Value:
    op = builder.create("revet.alloc_ptr", [], [I32],
                        {"site": site, "buffer_words": buffer_words,
                         "max_buffers": max_buffers})
    return op.result()


def free_ptr(builder: Builder, site: str, ptr: Value) -> Operation:
    return builder.create("revet.free_ptr", [ptr], [], {"site": site})


def sram_read(builder: Builder, site: str, ptr: Value, offset: Value) -> Value:
    op = builder.create("revet.sram_read", [ptr, offset], [I32], {"site": site})
    return op.result()


def sram_write(builder: Builder, site: str, ptr: Value, offset: Value,
               value: Value) -> Operation:
    return builder.create("revet.sram_write", [ptr, offset, value], [], {"site": site})
