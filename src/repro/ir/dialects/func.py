"""``func`` dialect: functions, returns, and calls."""

from __future__ import annotations

from typing import Sequence

from repro.ir.builder import Builder
from repro.ir.core import Block, FunctionType, Module, Operation, Type, Value


def func(module: Module, name: str, arg_types: Sequence[Type],
         result_types: Sequence[Type] = (), arg_names: Sequence[str] = ()) -> Operation:
    """Create a ``func.func`` with an entry block and add it to the module."""
    op = Operation(
        "func.func",
        attrs={"sym_name": name, "type": FunctionType(arg_types, result_types)},
    )
    region = op.add_region()
    region.add_block(Block(arg_types=arg_types, arg_names=arg_names))
    module.append(op)
    return op


def entry_block(func_op: Operation) -> Block:
    """The entry block of a function."""
    return func_op.region(0).entry


def ret(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    """Create a ``func.return``."""
    return builder.create("func.return", list(values), [])


def call(builder: Builder, callee: str, args: Sequence[Value],
         result_types: Sequence[Type] = ()) -> Operation:
    return builder.create("func.call", list(args), list(result_types),
                          {"callee": callee})
