"""Operation metadata registry shared by the verifier and the printer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class OpInfo:
    """Structural constraints for one operation kind."""

    name: str
    min_operands: int = 0
    max_operands: Optional[int] = None
    num_results: Optional[int] = None
    num_regions: int = 0
    terminator: bool = False
    required_attrs: tuple = ()


OP_INFO: Dict[str, OpInfo] = {}


def register(info: OpInfo) -> OpInfo:
    OP_INFO[info.name] = info
    return info


def op_info(name: str) -> Optional[OpInfo]:
    return OP_INFO.get(name)


def is_terminator(name: str) -> bool:
    info = OP_INFO.get(name)
    return bool(info and info.terminator)


# func dialect --------------------------------------------------------------
register(OpInfo("func.func", num_results=0, num_regions=1,
                required_attrs=("sym_name", "type")))
register(OpInfo("func.return", terminator=True, num_results=0))
register(OpInfo("func.call", required_attrs=("callee",)))

# arith dialect ---------------------------------------------------------------
register(OpInfo("arith.constant", min_operands=0, max_operands=0, num_results=1,
                required_attrs=("value",)))
for _binop in ("addi", "subi", "muli", "divsi", "remsi", "andi", "ori", "xori",
               "shli", "shrui", "shrsi", "minsi", "maxsi"):
    register(OpInfo(f"arith.{_binop}", min_operands=2, max_operands=2, num_results=1))
register(OpInfo("arith.cmpi", min_operands=2, max_operands=2, num_results=1,
                required_attrs=("predicate",)))
register(OpInfo("arith.select", min_operands=3, max_operands=3, num_results=1))
register(OpInfo("arith.extui", min_operands=1, max_operands=1, num_results=1))
register(OpInfo("arith.extsi", min_operands=1, max_operands=1, num_results=1))
register(OpInfo("arith.trunci", min_operands=1, max_operands=1, num_results=1))

# memref dialect ---------------------------------------------------------------
register(OpInfo("memref.alloc", min_operands=0, max_operands=1, num_results=1))
register(OpInfo("memref.dealloc", min_operands=1, max_operands=1, num_results=0))
register(OpInfo("memref.load", min_operands=2, max_operands=2, num_results=1))
register(OpInfo("memref.store", min_operands=3, max_operands=3, num_results=0))

# scf dialect -------------------------------------------------------------------
register(OpInfo("scf.if", min_operands=1, max_operands=1, num_regions=2))
register(OpInfo("scf.while", num_regions=2))
register(OpInfo("scf.for", min_operands=3, num_regions=1))
register(OpInfo("scf.yield", terminator=True, num_results=0))
register(OpInfo("scf.condition", min_operands=1, terminator=True, num_results=0))

# revet dialect -------------------------------------------------------------------
register(OpInfo("revet.dram_global", num_results=0,
                required_attrs=("sym_name", "element_width")))
register(OpInfo("revet.dram_ref", num_results=1, required_attrs=("name",)))
register(OpInfo("revet.foreach", min_operands=2, num_regions=1))
register(OpInfo("revet.replicate", num_regions=1, required_attrs=("factor",)))
register(OpInfo("revet.fork", min_operands=1, max_operands=1, num_results=1))
register(OpInfo("revet.exit", terminator=False, num_results=0))
register(OpInfo("revet.yield", terminator=True, num_results=0))
register(OpInfo("revet.pragma", num_results=0, required_attrs=("name",)))
register(OpInfo("revet.view_new", min_operands=2, max_operands=2, num_results=1,
                required_attrs=("kind", "size")))
register(OpInfo("revet.view_load", min_operands=2, max_operands=2, num_results=1))
register(OpInfo("revet.view_store", min_operands=3, max_operands=3, num_results=0))
register(OpInfo("revet.it_new", min_operands=2, max_operands=2, num_results=1,
                required_attrs=("kind", "tile")))
register(OpInfo("revet.it_deref", min_operands=1, max_operands=1, num_results=1))
register(OpInfo("revet.it_peek", min_operands=2, max_operands=2, num_results=1))
register(OpInfo("revet.it_advance", min_operands=1, max_operands=1, num_results=0))
register(OpInfo("revet.it_put", min_operands=2, max_operands=2, num_results=0))
register(OpInfo("revet.it_flush", min_operands=1, max_operands=1, num_results=0))
register(OpInfo("revet.bulk_load", min_operands=3, num_results=0))
register(OpInfo("revet.bulk_store", min_operands=3, num_results=0))
register(OpInfo("revet.dram_load", min_operands=2, max_operands=2, num_results=1))
register(OpInfo("revet.dram_store", min_operands=3, max_operands=3, num_results=0))
register(OpInfo("revet.alloc_ptr", min_operands=0, num_results=1,
                required_attrs=("site", "buffer_words")))
register(OpInfo("revet.free_ptr", min_operands=1, num_results=0,
                required_attrs=("site",)))
register(OpInfo("revet.sram_read", min_operands=2, max_operands=2, num_results=1,
                required_attrs=("site",)))
register(OpInfo("revet.sram_write", min_operands=3, max_operands=3, num_results=0,
                required_attrs=("site",)))
