"""Replicate-region load-balancing simulation (Figure 14).

With a hoisted allocator, replicate regions receive new threads only when
they free an allocation buffer, which creates a throughput-proportional
feedback loop.  This module simulates that allocator at the granularity of
thread service times: ``regions`` servers with different service rates share
one buffer pool; work is admitted round-robin into free buffers and each
region's share of the total input is reported — the quantity plotted in
Figure 14.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class RegionLoad:
    """Per-region share of the admitted work."""

    region: int
    threads: int
    share_percent: float


class LoadBalanceSimulator:
    """Discrete-event model of a hoisted allocator feeding replicate regions."""

    def __init__(self, regions: int = 8, buffers: int = 64,
                 base_service_time: float = 1.0, slow_region: int = 0,
                 slow_factor: float = 1.3):
        self.regions = regions
        self.buffers = buffers
        self.service_times = [
            base_service_time * (slow_factor if r == slow_region else 1.0)
            for r in range(regions)
        ]

    def run(self, total_threads: int, hoisted: bool = True) -> List[RegionLoad]:
        """Distribute ``total_threads`` and return per-region load shares.

        ``hoisted=False`` models Plasticine-style fixed work partitioning,
        where every region is statically assigned an equal share regardless
        of its throughput.
        """
        counts = [0] * self.regions
        if not hoisted:
            for i in range(total_threads):
                counts[i % self.regions] += 1
        else:
            # Buffered admission: while free buffers exist, threads go to the
            # next region round-robin; afterwards a thread is admitted to
            # whichever region frees a buffer first (completion order).
            free = [self.buffers // self.regions] * self.regions
            events: List[tuple] = []  # (completion_time, region)
            clock = 0.0
            rr = 0
            remaining = total_threads
            while remaining > 0:
                if any(free):
                    while free[rr] == 0:
                        rr = (rr + 1) % self.regions
                    region = rr
                    rr = (rr + 1) % self.regions
                else:
                    clock, region = heapq.heappop(events)
                    free[region] += 1
                    continue
                free[region] -= 1
                counts[region] += 1
                remaining -= 1
                heapq.heappush(events, (clock + self.service_times[region], region))
                if events and not any(free):
                    clock, finished = heapq.heappop(events)
                    free[finished] += 1
        total = max(1, sum(counts))
        return [RegionLoad(region=r, threads=c, share_percent=100.0 * c / total)
                for r, c in enumerate(counts)]

    def completion_time(self, loads: List[RegionLoad]) -> float:
        """Makespan for a given assignment (used for the 21% slowdown claim)."""
        return max(load.threads * self.service_times[load.region]
                   for load in loads)

    def sweep(self, sizes: List[int]) -> Dict[int, List[RegionLoad]]:
        """Figure 14's x-axis sweep over input sizes."""
        return {size: self.run(size) for size in sizes}
