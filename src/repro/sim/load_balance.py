"""Replicate-region load-balancing simulation (Figure 14).

With a hoisted allocator, replicate regions receive new threads only when
they free an allocation buffer, which creates a throughput-proportional
feedback loop.  This module simulates that allocator at the granularity of
thread service times: ``regions`` servers with different service rates share
one buffer pool; work is admitted round-robin into free buffers and each
region's share of the total input is reported — the quantity plotted in
Figure 14.

The admission loop itself lives in :mod:`repro.sim.policies` (shared with
the serving-engine scheduler in :mod:`repro.runtime`); this module wires it
to the Figure 14 experiment: per-region service-time skew, share
percentages, and makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.sim.policies import (
    AdmissionPolicy,
    HoistedBufferPolicy,
    RoundRobinPolicy,
    run_admission,
)


@dataclass
class RegionLoad:
    """Per-region share of the admitted work."""

    region: int
    threads: int
    share_percent: float


class LoadBalanceSimulator:
    """Discrete-event model of a hoisted allocator feeding replicate regions."""

    def __init__(self, regions: int = 8, buffers: int = 64,
                 base_service_time: float = 1.0, slow_region: int = 0,
                 slow_factor: float = 1.3):
        self.regions = regions
        self.buffers = buffers
        self.service_times = [
            base_service_time * (slow_factor if r == slow_region else 1.0)
            for r in range(regions)
        ]

    def run(self, total_threads: int, hoisted: bool = True,
            policy: Optional[Union[str, AdmissionPolicy]] = None
            ) -> List[RegionLoad]:
        """Distribute ``total_threads`` and return per-region load shares.

        ``hoisted=False`` models Plasticine-style fixed work partitioning,
        where every region is statically assigned an equal share regardless
        of its throughput.  Pass ``policy`` to override the admission
        strategy (any :mod:`repro.sim.policies` name or instance).
        """
        if policy is None:
            policy = HoistedBufferPolicy() if hoisted else RoundRobinPolicy()
        result = run_admission(
            task_costs=total_threads,  # unit-cost threads, O(regions) memory
            worker_scales=self.service_times,
            buffers=[self.buffers // self.regions] * self.regions,
            policy=policy,
            collect_assignments=False,
        )
        shares = result.shares_percent()
        return [RegionLoad(region=r, threads=result.counts[r],
                           share_percent=shares[r])
                for r in range(self.regions)]

    def completion_time(self, loads: List[RegionLoad]) -> float:
        """Makespan for a given assignment (used for the 21% slowdown claim)."""
        return max(load.threads * self.service_times[load.region]
                   for load in loads)

    def sweep(self, sizes: List[int]) -> Dict[int, List[RegionLoad]]:
        """Figure 14's x-axis sweep over input sizes."""
        return {size: self.run(size) for size in sizes}
