"""vRDA performance model (Section VI-A methodology).

The paper evaluates with ``runtime = size / throughput + init`` on workloads
of abundant, non-communicating threads, so throughput is set by the binding
bottleneck among:

* **DRAM**: HBM2 streaming bandwidth for bulk transfers plus a per-access
  burst/activation cost for demand word accesses (hash-table is activation
  limited),
* **compute**: how many threads the mapped SIMD lanes retire per cycle given
  the measured dynamic iteration count per thread, and
* **on-chip network/SRAM**: vector-link bandwidth through the merge contexts
  on the critical inner loop.

DRAM traffic and iteration counts are *measured* by running the functional
executor on a scaled-down instance (the executor profile), then applied to
the paper-scale dataset per the runtime model above.  The ``ideal_*`` flags
reproduce Table V's D / SN / SND ideal-model columns by removing the
corresponding bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.machine import DEFAULT_MACHINE, MachineConfig
from repro.core.memory import MemoryStats
from repro.dataflow.resources import ResourceBreakdown


@dataclass
class WorkloadProfile:
    """Dynamic per-thread characteristics measured on a small instance."""

    threads: int
    app_bytes_per_thread: float
    dram_bulk_bytes_per_thread: float
    dram_random_accesses_per_thread: float
    iterations_per_thread: float
    pipeline_ops_per_iteration: float = 8.0

    @classmethod
    def from_run(cls, stats: MemoryStats, threads: int, app_bytes_per_thread: float,
                 iterations: float, pipeline_ops_per_iteration: float = 8.0
                 ) -> "WorkloadProfile":
        random_accesses = stats.dram_random_reads + stats.dram_random_writes
        bulk_bytes = stats.dram_total_bytes - random_accesses * 4
        return cls(
            threads=threads,
            app_bytes_per_thread=app_bytes_per_thread,
            dram_bulk_bytes_per_thread=max(0.0, bulk_bytes / threads),
            dram_random_accesses_per_thread=random_accesses / threads,
            iterations_per_thread=max(iterations, 1.0),
            pipeline_ops_per_iteration=pipeline_ops_per_iteration,
        )


@dataclass
class ThroughputReport:
    """Predicted throughput and the contributing bounds (GB/s of app data)."""

    app: str
    throughput_gbs: float
    dram_bound_gbs: float
    compute_bound_gbs: float
    network_bound_gbs: float
    dram_utilization: float

    def as_row(self) -> Dict[str, float]:
        return {
            "app": self.app,
            "GB/s": round(self.throughput_gbs, 1),
            "dram_bound": round(self.dram_bound_gbs, 1),
            "compute_bound": round(self.compute_bound_gbs, 1),
            "network_bound": round(self.network_bound_gbs, 1),
            "hbm2_util_%": round(self.dram_utilization * 100, 1),
        }


class VRDAPerformanceModel:
    """Bottleneck throughput model for compiled Revet applications."""

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE):
        self.machine = machine

    def throughput(self, app: str, profile: WorkloadProfile,
                   resources: ResourceBreakdown,
                   ideal_dram: bool = False, ideal_sram_network: bool = False
                   ) -> ThroughputReport:
        machine = self.machine

        # -- DRAM bound ----------------------------------------------------
        random_bytes = profile.dram_random_accesses_per_thread * machine.dram_burst_bytes
        traffic_per_thread = profile.dram_bulk_bytes_per_thread + random_bytes
        traffic_per_thread = max(traffic_per_thread, 1e-9)
        dram_bound = (machine.dram_bandwidth_gbs
                      * profile.app_bytes_per_thread / traffic_per_thread)
        # Row-activation limit for demand accesses (hash-table style).
        if profile.dram_random_accesses_per_thread > 0.5:
            activations_per_s = machine.dram_activations_per_us * 1e6 * 16
            act_threads_per_s = activations_per_s / profile.dram_random_accesses_per_thread
            act_bound = act_threads_per_s * profile.app_bytes_per_thread / 1e9
            dram_bound = min(dram_bound, act_bound)

        # -- compute bound ----------------------------------------------------
        lanes = max(resources.lanes, machine.lanes)
        threads_per_cycle = lanes / profile.iterations_per_thread
        compute_bound = (threads_per_cycle * profile.app_bytes_per_thread
                         * machine.clock_ghz)

        # -- network / SRAM bound ----------------------------------------------
        # Each outer stream moves one vector of live values through its loop
        # merge per iteration; scalar-mapped links cap at one element/cycle.
        vector_streams = max(resources.outer_parallelism, 1)
        elements_per_cycle = vector_streams * machine.lanes
        network_threads_per_cycle = elements_per_cycle / profile.iterations_per_thread
        network_bound = (network_threads_per_cycle * profile.app_bytes_per_thread
                         * machine.clock_ghz) * 1.25  # headroom from hybrid links

        bounds = []
        if not ideal_dram:
            bounds.append(dram_bound)
        if not ideal_sram_network:
            bounds.append(network_bound)
        bounds.append(compute_bound)
        throughput = min(bounds)
        utilization = min(1.0, throughput / dram_bound) if dram_bound > 0 else 0.0
        return ThroughputReport(
            app=app,
            throughput_gbs=throughput,
            dram_bound_gbs=dram_bound,
            compute_bound_gbs=compute_bound,
            network_bound_gbs=network_bound,
            dram_utilization=utilization,
        )

    def ideal_speedups(self, app: str, profile: WorkloadProfile,
                       resources: ResourceBreakdown) -> Dict[str, float]:
        """Table V's D / SN / SND ideal-model speedups over the real machine."""
        base = self.throughput(app, profile, resources).throughput_gbs
        d = self.throughput(app, profile, resources, ideal_dram=True).throughput_gbs
        sn = self.throughput(app, profile, resources,
                             ideal_sram_network=True).throughput_gbs
        snd = self.throughput(app, profile, resources, ideal_dram=True,
                              ideal_sram_network=True).throughput_gbs
        return {
            "D": round(d / base, 2),
            "SN": round(sn / base, 2),
            "SND": round(snd / base, 2),
        }
