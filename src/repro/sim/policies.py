"""Reusable work-admission policies for buffered multi-worker systems.

The hoisted-allocator admission loop of Figure 14 (threads enter whichever
replicate region frees an allocation buffer) is one instance of a general
pattern: a stream of tasks is admitted one at a time into ``N`` workers,
each with a bounded buffer pool, under some admission strategy.  This module
extracts that pattern so both the :class:`repro.sim.load_balance`
simulator and the serving-engine scheduler in :mod:`repro.runtime` share
one implementation:

* :class:`RoundRobinPolicy` — static round-robin, ignoring buffer occupancy
  (Plasticine-style fixed partitioning),
* :class:`LeastLoadedPolicy` — admit to the worker with the least
  outstanding work among those with a free buffer,
* :class:`HoistedBufferPolicy` — round-robin over workers with a free
  buffer, stalling until a completion frees one (the paper's hoisted
  allocator, which makes admission throughput-proportional),
* :class:`CacheAffinityPolicy` — admit to a free worker whose (simulated or
  seeded) program cache already holds the task's content key, falling back
  to hoisted-buffer round-robin for unknown keys.  This is the serving-side
  policy that keeps each worker's :class:`repro.runtime.cache.ProgramCache`
  hot instead of scattering every program across the whole pool.

:func:`run_admission` is the shared discrete-event loop: each admitted task
occupies one buffer for ``cost * worker_scale`` time units and buffers are
returned in completion order.  The loop runs once per admitted task over
traces of up to millions of threads (the Figure 14 sweep), so policies see
the raw per-worker state lists rather than per-call snapshot objects.
Key-aware policies (``uses_keys``) additionally receive each task's content
key and observe admissions through :meth:`AdmissionPolicy.record`, which is
how the affinity policy tracks what each worker's cache will hold.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import repeat
from typing import (
    Dict, Hashable, Iterable, List, Optional, Sequence, Type, Union,
)


class AdmissionPolicy:
    """Chooses the worker that receives the next task.

    ``choose`` sees the live per-worker state — ``free`` buffer counts and
    ``pending`` in-flight service time — and returns a worker index, or
    ``None`` to signal that admission must wait for a completion (only
    meaningful for buffered policies).  Policies must treat both lists as
    read-only.  They may be stateful (e.g. a round-robin cursor); call
    :meth:`reset` before reusing one across runs.
    """

    name = "base"
    #: Whether the policy reads the buffer/load state at all.  Feedback-free
    #: policies (static round-robin) skip the event simulation entirely, so
    #: million-task static sweeps stay O(workers) in memory.
    uses_feedback = True
    #: Whether the policy consumes per-task content keys.  Key-aware
    #: policies get ``choose(free, pending, key)`` and a :meth:`record`
    #: callback after every admission.
    uses_keys = False

    def reset(self) -> None:
        pass

    def choose(self, free: Sequence[int],
               pending: Sequence[float]) -> Optional[int]:
        raise NotImplementedError

    def record(self, worker: int, key: Optional[Hashable]) -> None:
        """Observe that ``key``'s task was admitted to ``worker``.

        Only called for ``uses_keys`` policies; the default is a no-op.
        """


class RoundRobinPolicy(AdmissionPolicy):
    """Static round-robin: task ``i`` goes to worker ``i % N`` regardless of
    buffer occupancy or load (models fixed work partitioning)."""

    name = "round-robin"
    uses_feedback = False

    def __init__(self):
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, free: Sequence[int],
               pending: Sequence[float]) -> Optional[int]:
        index = self._next % len(free)
        self._next += 1
        return index


class LeastLoadedPolicy(AdmissionPolicy):
    """Admit to the worker with the least outstanding work among those with
    a free buffer; wait when every buffer is occupied."""

    name = "least-loaded"

    def choose(self, free: Sequence[int],
               pending: Sequence[float]) -> Optional[int]:
        best = None
        best_load = 0.0
        for index, slots in enumerate(free):
            if slots > 0 and (best is None or pending[index] < best_load):
                best = index
                best_load = pending[index]
        return best


class HoistedBufferPolicy(AdmissionPolicy):
    """Round-robin over workers that currently hold a free buffer; wait for
    a completion when none do.  This reproduces the hoisted allocator's
    feedback loop: faster workers free buffers more often and therefore
    receive proportionally more work."""

    name = "hoisted-buffer"

    def __init__(self):
        self._rr = 0

    def reset(self) -> None:
        self._rr = 0

    def choose(self, free: Sequence[int],
               pending: Sequence[float]) -> Optional[int]:
        if not any(free):
            return None
        rr = self._rr
        n = len(free)
        while free[rr] == 0:
            rr = (rr + 1) % n
        self._rr = (rr + 1) % n
        return rr


class CacheAffinityPolicy(AdmissionPolicy):
    """Admit to a free worker whose cache holds the task's content key.

    The serving engine compiles programs into per-worker content-addressed
    caches; routing a program to a worker that has never seen it pays the
    full Figure-8 pipeline again.  This policy keeps a per-worker residency
    model — an LRU set of at most ``cache_capacity`` keys, seedable from
    real :meth:`repro.runtime.cache.ProgramCache.resident_keys` reports —
    and admits each keyed task to the least-pending free worker already
    holding its key.  Tasks with no resident worker (or no key at all) fall
    back to hoisted-buffer round-robin, so cold keys still spread with the
    pool's throughput feedback; admission waits only when every buffer in
    the pool is occupied.

    :meth:`reset` clears the round-robin cursor but keeps residency:
    residency models *worker* state, which survives across dispatch rounds
    of a long-lived pool.  Call :meth:`seed` (authoritative per-round
    reports) or :meth:`clear_residency` to replace or drop it.
    """

    name = "cache-affinity"
    uses_keys = True

    def __init__(self, cache_capacity: int = 64):
        self.cache_capacity = max(1, cache_capacity)
        self._rr = 0
        self._residency: List["OrderedDict[Hashable, None]"] = []

    def reset(self) -> None:
        self._rr = 0

    def clear_residency(self) -> None:
        self._residency = []

    def seed(self, residency: Sequence[Iterable[Hashable]]) -> None:
        """Replace the residency model with per-worker key reports."""
        self._residency = [OrderedDict((key, None) for key in keys)
                           for keys in residency]

    def resident_keys(self) -> List[List[Hashable]]:
        """The modeled per-worker residency (LRU order, oldest first)."""
        return [list(cache) for cache in self._residency]

    def _ensure_workers(self, n: int) -> None:
        while len(self._residency) < n:
            self._residency.append(OrderedDict())

    def choose(self, free: Sequence[int], pending: Sequence[float],
               key: Optional[Hashable] = None) -> Optional[int]:
        n = len(free)
        self._ensure_workers(n)
        if key is not None:
            best = None
            best_load = 0.0
            for index in range(n):
                if free[index] > 0 and key in self._residency[index] and (
                        best is None or pending[index] < best_load):
                    best = index
                    best_load = pending[index]
            if best is not None:
                return best
        if not any(free):
            return None  # wait for a completion, like hoisted-buffer
        rr = self._rr % n
        while free[rr] == 0:
            rr = (rr + 1) % n
        self._rr = (rr + 1) % n
        return rr

    def record(self, worker: int, key: Optional[Hashable]) -> None:
        if key is None:
            return
        self._ensure_workers(worker + 1)
        cache = self._residency[worker]
        if key in cache:
            cache.move_to_end(key)
        cache[key] = None
        while len(cache) > self.cache_capacity:
            cache.popitem(last=False)


@dataclass
class ServiceRateEstimator:
    """EWMA estimate of one worker's measured service rate (tasks/second).

    Real pools never have uniform per-node service rates (the RISC-V HPC
    cluster evaluations make the same observation one level down), so each
    serving worker times its own flushes and folds ``tasks / elapsed``
    samples into an exponentially-weighted moving average.  ``rate == 0``
    means "not measured yet"; :func:`scales_from_rates` maps that to the
    unit scale.
    """

    alpha: float = 0.5
    rate: float = 0.0

    def observe(self, tasks: int, elapsed_s: float) -> float:
        """Fold one flush measurement into the EWMA; returns the new rate."""
        if tasks <= 0 or elapsed_s <= 0.0:
            return self.rate
        sample = tasks / elapsed_s
        if self.rate <= 0.0:
            self.rate = sample
        else:
            self.rate = self.alpha * sample + (1.0 - self.alpha) * self.rate
        return self.rate


def pool_drain_rps(rates: Sequence[float], default: float = 0.0) -> float:
    """Aggregate per-worker service rates into one pool drain estimate.

    The sum of the workers' measured EWMA rates (tasks/second) is the
    pool's best-case drain rate — what the admission layer needs to size
    its in-flight token budget.  Workers that have never been measured
    (rate <= 0) contribute nothing; a pool with no measurements at all
    falls back to ``default`` so a cold front door still has a budget.
    """
    total = sum(r for r in rates if r > 0.0)
    return total if total > 0.0 else default


def scales_from_rates(rates: Sequence[float],
                      default_scale: float = 1.0) -> List[float]:
    """Convert measured service rates into relative worker scales.

    A scale is *relative service time per unit cost* (the convention of
    :func:`run_admission` and the Figure 14 simulator): the fastest measured
    worker gets scale 1.0 and a worker at half its rate gets scale 2.0.
    Unmeasured workers (rate <= 0) get ``default_scale`` so a fresh pool
    degrades to unit-scale dispatch.
    """
    fastest = max((r for r in rates if r > 0.0), default=0.0)
    if fastest <= 0.0:
        return [default_scale] * len(rates)
    return [fastest / r if r > 0.0 else default_scale for r in rates]


#: Registry of policy classes by name (for CLI flags and config strings).
POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    cls.name: cls
    for cls in (RoundRobinPolicy, LeastLoadedPolicy, HoistedBufferPolicy,
                CacheAffinityPolicy)
}


def make_policy(policy: "str | AdmissionPolicy") -> AdmissionPolicy:
    """Coerce a policy name or instance into a fresh-state policy object."""
    if isinstance(policy, AdmissionPolicy):
        policy.reset()
        return policy
    if policy not in POLICIES:
        raise ValueError(
            f"unknown admission policy '{policy}'; choose from {sorted(POLICIES)}")
    return POLICIES[policy]()


@dataclass
class AdmissionResult:
    """Outcome of one :func:`run_admission` run."""

    #: Worker index assigned to each task, in admission order.
    assignments: List[int]
    #: Number of tasks admitted per worker.
    counts: List[int]
    #: Total service time admitted per worker (``cost * scale`` sums).
    busy_time: List[float] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Completion time if each worker drains its assignment serially."""
        return max(self.busy_time) if self.busy_time else 0.0

    def shares_percent(self) -> List[float]:
        """Each worker's share of the admitted tasks, in percent."""
        total = max(1, sum(self.counts))
        return [100.0 * c / total for c in self.counts]


def run_admission(task_costs: Union[int, Sequence[float]],
                  worker_scales: Sequence[float],
                  buffers: Sequence[int],
                  policy: "str | AdmissionPolicy",
                  collect_assignments: bool = True,
                  task_keys: Optional[Sequence[Hashable]] = None
                  ) -> AdmissionResult:
    """Admit ``task_costs`` into workers under ``policy``.

    Task ``t`` on worker ``w`` occupies one of ``buffers[w]`` slots for
    ``task_costs[t] * worker_scales[w]`` time units.  When the policy
    returns ``None`` (no admissible worker), the clock advances to the next
    completion, which frees a buffer.  Buffers are also drained eagerly when
    the pool is exhausted, matching the hoisted-allocator model of
    :class:`repro.sim.load_balance.LoadBalanceSimulator`.

    ``task_costs`` may be an int meaning "that many unit-cost tasks" (the
    Figure 14 sweeps admit millions of identical threads; a count avoids a
    million-element list).  ``collect_assignments=False`` likewise skips
    the O(tasks) per-task assignment list when only aggregate counts/busy
    time are needed.

    ``task_keys`` optionally aligns one content key (or ``None``) with each
    task for key-aware policies such as :class:`CacheAffinityPolicy`; the
    keys are ignored by policies that don't declare ``uses_keys``.
    """
    n = len(worker_scales)
    if len(buffers) != n:
        raise ValueError("buffers and worker_scales must have equal length")
    n_tasks = task_costs if isinstance(task_costs, int) else len(task_costs)
    if task_keys is not None and len(task_keys) != n_tasks:
        raise ValueError("task_keys must align one key with every task")
    if isinstance(task_costs, int):
        task_costs = repeat(1.0, task_costs)
    policy = make_policy(policy)
    keyed = policy.uses_keys
    keys = iter(task_keys) if task_keys is not None else repeat(None)
    free = list(buffers)
    counts = [0] * n
    busy = [0.0] * n
    pending = [0.0] * n
    assignments: List[int] = []

    def choose(key):
        if keyed:
            return policy.choose(free, pending, key)
        return policy.choose(free, pending)

    if not policy.uses_feedback:
        # Static assignment: no completion feedback, so skip the event heap.
        for cost, key in zip(task_costs, keys):
            worker = choose(key)
            counts[worker] += 1
            busy[worker] += cost * worker_scales[worker]
            if keyed:
                policy.record(worker, key)
            if collect_assignments:
                assignments.append(worker)
        return AdmissionResult(assignments=assignments, counts=counts,
                               busy_time=busy)

    events: List[tuple] = []  # (completion_time, worker, service_time)
    clock = 0.0

    for cost, key in zip(task_costs, keys):
        while True:
            worker = choose(key)
            if worker is not None:
                break
            if not events:
                raise RuntimeError("policy stalled with no in-flight work")
            clock, done, service = heapq.heappop(events)
            free[done] += 1
            pending[done] -= service
        service = cost * worker_scales[worker]
        free[worker] -= 1
        counts[worker] += 1
        busy[worker] += service
        pending[worker] += service
        if keyed:
            policy.record(worker, key)
        if collect_assignments:
            assignments.append(worker)
        heapq.heappush(events, (clock + service, worker, service))
        if events and not any(f > 0 for f in free):
            # Positive check, not truthiness: a custom policy that oversubscribes
            # (negative free counts) must still drain, or the heap grows O(tasks).
            clock, done, done_service = heapq.heappop(events)
            free[done] += 1
            pending[done] -= done_service
    return AdmissionResult(assignments=assignments, counts=counts,
                           busy_time=busy)
