"""Cycle-level performance models for the vRDA (Section VI-A)."""

from repro.sim.perf_model import ThroughputReport, VRDAPerformanceModel, WorkloadProfile
from repro.sim.load_balance import LoadBalanceSimulator, RegionLoad
from repro.sim.policies import (
    POLICIES,
    AdmissionPolicy,
    AdmissionResult,
    HoistedBufferPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_policy,
    run_admission,
)

__all__ = [
    "ThroughputReport",
    "VRDAPerformanceModel",
    "WorkloadProfile",
    "LoadBalanceSimulator",
    "RegionLoad",
    "POLICIES",
    "AdmissionPolicy",
    "AdmissionResult",
    "HoistedBufferPolicy",
    "LeastLoadedPolicy",
    "RoundRobinPolicy",
    "make_policy",
    "run_admission",
]
