"""Cycle-level performance models for the vRDA (Section VI-A)."""

from repro.sim.perf_model import ThroughputReport, VRDAPerformanceModel, WorkloadProfile
from repro.sim.load_balance import LoadBalanceSimulator, RegionLoad

__all__ = [
    "ThroughputReport",
    "VRDAPerformanceModel",
    "WorkloadProfile",
    "LoadBalanceSimulator",
    "RegionLoad",
]
