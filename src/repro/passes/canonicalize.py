"""Canonicalization: constant folding and dead-code elimination."""

from __future__ import annotations

from repro.ir import Module, Operation, walk_ops
from repro.ir.dialects.arith import BINOP_TO_OPCODE, CMP_TO_OPCODE
from repro.ir.pass_manager import Pass
from repro.core.graph import OPCODES

#: Ops with no side effects that may be removed when unused.
PURE_OPS = set(BINOP_TO_OPCODE) | {
    "arith.constant", "arith.cmpi", "arith.select", "arith.extsi", "arith.extui",
    "arith.trunci",
}


class CanonicalizePass(Pass):
    """Fold constant arithmetic and drop unused pure ops."""

    name = "canonicalize"

    def run(self, module: Module) -> bool:
        changed = False
        changed |= self._fold_constants(module)
        changed |= self._eliminate_dead_code(module)
        return changed

    def _fold_constants(self, module: Module) -> bool:
        changed = False
        for op in walk_ops(module):
            folded = self._try_fold(op)
            if folded is None:
                continue
            const = Operation("arith.constant", [], [op.results[0].type],
                              {"value": folded})
            op.parent.insert_before(op, const)
            op.replace_with_values([const.result()])
            changed = True
        return changed

    def _try_fold(self, op: Operation):
        if op.name in BINOP_TO_OPCODE or op.name == "arith.cmpi":
            values = []
            for operand in op.operands:
                if operand.owner is None or operand.owner.name != "arith.constant":
                    return None
                values.append(operand.owner.attrs["value"])
            if op.name == "arith.cmpi":
                opcode = CMP_TO_OPCODE[op.attrs["predicate"]]
            else:
                opcode = BINOP_TO_OPCODE[op.name]
            try:
                return OPCODES[opcode](*values)
            except ZeroDivisionError:
                return None
        return None

    def _eliminate_dead_code(self, module: Module) -> bool:
        changed = False
        # Iterate to a fixed point: removing one op can make its operands dead.
        while True:
            removed = False
            for op in walk_ops(module):
                if op.name not in PURE_OPS or op.parent is None:
                    continue
                if all(not r.uses for r in op.results):
                    op.erase()
                    removed = True
                    changed = True
            if not removed:
                return changed
