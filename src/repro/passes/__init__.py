"""Compiler passes: high-level lowering and optimization (Figure 8)."""

from repro.passes.canonicalize import CanonicalizePass
from repro.passes.lower_views import LowerViewsPass
from repro.passes.lower_iterators import LowerIteratorsPass
from repro.passes.hierarchy_elimination import HierarchyEliminationPass
from repro.passes.if_to_select import IfToSelectPass
from repro.passes.allocator_fusion import AllocatorFusionPass
from repro.passes.allocator_hoisting import AllocatorHoistingPass
from repro.passes.bufferize_replicate import BufferizeReplicatePass
from repro.passes.subword_packing import SubwordPackingPass

__all__ = [
    "CanonicalizePass",
    "LowerViewsPass",
    "LowerIteratorsPass",
    "HierarchyEliminationPass",
    "IfToSelectPass",
    "AllocatorFusionPass",
    "AllocatorHoistingPass",
    "BufferizeReplicatePass",
    "SubwordPackingPass",
]
