"""SRAM allocator fusion (paper Section V-B(a)).

All allocations in one basic block are fused into a single allocator: one
pointer (drawn from the intersection of the valid ranges) indexes a buffer in
every fused memory.  Functionally each buffer keeps its own address space
(its own MU); the fusion is recorded as a shared ``alloc_group`` attribute so
that (a) the dataflow resource model maps one allocator context per group
instead of one per allocation, and (b) allocator hoisting can recognize
replicate regions with a single fused allocator.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import Module, Operation, walk_ops
from repro.ir.pass_manager import Pass


class AllocatorFusionPass(Pass):
    """Group ``memref.alloc`` ops per block into fused allocator groups."""

    name = "allocator-fusion"

    def __init__(self):
        self.groups: List[List[Operation]] = []

    def run(self, module: Module) -> bool:
        self.groups = []
        blocks: Dict[int, List[Operation]] = {}
        block_objects: Dict[int, object] = {}
        for op in walk_ops(module, lambda o: o.name == "memref.alloc"):
            if op.parent is None:
                continue
            blocks.setdefault(id(op.parent), []).append(op)
            block_objects[id(op.parent)] = op.parent
        changed = False
        group_id = 0
        for block_id, allocs in blocks.items():
            group_name = f"allocgrp{group_id}"
            group_id += 1
            self.groups.append(allocs)
            # The fused pointer range is limited by the largest buffer in the
            # group (the smallest maximum pointer, paper Section V-B(a)).
            max_words = max(a.result().type.size for a in allocs)
            for alloc in allocs:
                alloc.attrs["alloc_group"] = group_name
                alloc.attrs["group_buffer_words"] = max_words
                alloc.attrs["group_size"] = len(allocs)
            changed = changed or len(allocs) > 1
        return changed
