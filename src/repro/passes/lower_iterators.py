"""Iterator lowering (paper Section V-A(a), second half).

Each ``ReadIt`` / ``PeekReadIt`` / ``WriteIt`` / ``ManualWriteIt`` becomes

* a two-word *state* buffer — ``state[0]`` is the absolute element position
  and ``state[1]`` the absolute position of the tile buffer's first element,
* a *tile* buffer of the iterator's tile size, and
* demand-driven refills (read iterators) or flushes (write iterators) guarded
  by an ``scf.if``: read iterators fill only at dereference (so unused fill
  paths map no hardware), write iterators flush when the tile fills, at
  deallocation (``WriteIt``) or at an explicit ``flush`` (``ManualWriteIt``).
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir import Builder, Module, Operation, ops_named
from repro.ir.dialects import arith as arith_d
from repro.ir.dialects import memref as memref_d
from repro.ir.dialects import revet as revet_d
from repro.ir.dialects import scf as scf_d
from repro.ir.pass_manager import Pass

READ_KINDS = {"ReadIt", "PeekReadIt"}
WRITE_KINDS = {"WriteIt", "ManualWriteIt"}

#: state-buffer slots
POS, BASE = 0, 1


class LowerIteratorsPass(Pass):
    """Rewrite every ``revet.it_new`` and its uses into physical memory ops."""

    name = "lower-iterators"

    def run(self, module: Module) -> bool:
        iterators = ops_named(module, "revet.it_new")
        for it_op in iterators:
            self._lower_iterator(it_op)
        return bool(iterators)

    # -- per-iterator lowering -------------------------------------------------

    def _lower_iterator(self, it_op: Operation) -> None:
        kind = it_op.attrs["kind"]
        tile = it_op.attrs["tile"]
        dram, seek = it_op.operands
        block = it_op.parent
        if block is None:
            raise PassError("it_new is not attached to a block")
        name = it_op.result().name

        builder = Builder()
        builder.set_insertion_point_before(it_op)
        state = memref_d.alloc(builder, 2, name=f"{name}_state")
        buffer = memref_d.alloc(builder, tile, name=f"{name}_tile")
        pos_idx = arith_d.constant(builder, POS)
        base_idx = arith_d.constant(builder, BASE)
        memref_d.store(builder, seek, state, pos_idx)
        if kind in READ_KINDS:
            # Force a refill on the first dereference.
            tile_c = arith_d.constant(builder, tile)
            initial_base = arith_d.binary(builder, "subi", seek, tile_c)
        else:
            initial_base = seek
        memref_d.store(builder, initial_base, state, base_idx)

        handle = it_op.result()
        for use in list(handle.uses):
            rewriter = Builder()
            rewriter.set_insertion_point_before(use)
            if use.name == "revet.it_deref":
                value = self._emit_read(rewriter, dram, state, buffer, tile, offset=None)
                use.replace_with_values([value])
            elif use.name == "revet.it_peek":
                value = self._emit_read(rewriter, dram, state, buffer, tile,
                                        offset=use.operands[1])
                use.replace_with_values([value])
            elif use.name == "revet.it_advance":
                self._emit_advance(rewriter, state,
                                   use.operands[1] if len(use.operands) > 1 else None)
                use.erase()
            elif use.name == "revet.it_put":
                self._emit_put(rewriter, dram, state, buffer, tile, use.operands[1])
                use.erase()
            elif use.name == "revet.it_flush":
                self._emit_flush(rewriter, dram, state, buffer, tile)
                use.erase()
            else:
                raise PassError(f"unexpected use of an iterator handle: {use.name}")

        end_builder = Builder()
        terminator = block.terminator
        if terminator is not None and terminator.name in (
            "func.return", "scf.yield", "revet.yield", "scf.condition",
        ):
            end_builder.set_insertion_point_before(terminator)
        else:
            end_builder.set_insertion_point_to_end(block)
        if kind == "WriteIt":
            # Automatic flush at deallocation; ManualWriteIt elides it.
            self._emit_flush(end_builder, dram, state, buffer, tile)
        memref_d.dealloc(end_builder, buffer)
        memref_d.dealloc(end_builder, state)

        it_op.erase()

    # -- code templates --------------------------------------------------------------

    def _emit_read(self, b: Builder, dram, state, buffer, tile: int, offset):
        """Dereference (or peek) with a demand refill of the tile buffer."""
        pos = memref_d.load(b, state, arith_d.constant(b, POS))
        if offset is not None:
            pos = arith_d.binary(b, "addi", pos, offset)
        base = memref_d.load(b, state, arith_d.constant(b, BASE))
        rel = arith_d.binary(b, "subi", pos, base)
        need = arith_d.cmpi(b, "sge", rel, arith_d.constant(b, tile))
        refill = scf_d.if_(b, need, [])
        then_b = Builder()
        then_b.set_insertion_point_to_end(scf_d.then_block(refill))
        fill_start = memref_d.load(then_b, state, arith_d.constant(then_b, POS))
        revet_d.bulk_load(then_b, dram, fill_start, buffer, tile)
        memref_d.store(then_b, fill_start, state, arith_d.constant(then_b, BASE))
        scf_d.yield_(then_b)
        else_b = Builder()
        else_b.set_insertion_point_to_end(scf_d.else_block(refill))
        scf_d.yield_(else_b)
        # Re-read the base after the (possible) refill.
        base2 = memref_d.load(b, state, arith_d.constant(b, BASE))
        rel2 = arith_d.binary(b, "subi", pos, base2)
        return memref_d.load(b, buffer, rel2)

    def _emit_advance(self, b: Builder, state, amount=None) -> None:
        pos_idx = arith_d.constant(b, POS)
        pos = memref_d.load(b, state, pos_idx)
        step = amount if amount is not None else arith_d.constant(b, 1)
        memref_d.store(b, arith_d.binary(b, "addi", pos, step), state, pos_idx)

    def _emit_put(self, b: Builder, dram, state, buffer, tile: int, value) -> None:
        """Write at the current position, flushing the tile when it fills."""
        pos = memref_d.load(b, state, arith_d.constant(b, POS))
        base = memref_d.load(b, state, arith_d.constant(b, BASE))
        rel = arith_d.binary(b, "subi", pos, base)
        need = arith_d.cmpi(b, "sge", rel, arith_d.constant(b, tile))
        flush = scf_d.if_(b, need, [])
        then_b = Builder()
        then_b.set_insertion_point_to_end(scf_d.then_block(flush))
        old_base = memref_d.load(then_b, state, arith_d.constant(then_b, BASE))
        revet_d.bulk_store(then_b, dram, old_base, buffer, tile)
        new_base = memref_d.load(then_b, state, arith_d.constant(then_b, POS))
        memref_d.store(then_b, new_base, state, arith_d.constant(then_b, BASE))
        scf_d.yield_(then_b)
        else_b = Builder()
        else_b.set_insertion_point_to_end(scf_d.else_block(flush))
        scf_d.yield_(else_b)
        base2 = memref_d.load(b, state, arith_d.constant(b, BASE))
        rel2 = arith_d.binary(b, "subi", pos, base2)
        memref_d.store(b, value, buffer, rel2)

    def _emit_flush(self, b: Builder, dram, state, buffer, tile: int) -> None:
        """Flush the partially-filled tile: only pos - base words are written."""
        base = memref_d.load(b, state, arith_d.constant(b, BASE))
        pos = memref_d.load(b, state, arith_d.constant(b, POS))
        count = arith_d.binary(b, "subi", pos, base)
        revet_d.bulk_store(b, dram, base, buffer, tile, count=count)
