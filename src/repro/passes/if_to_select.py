"""If-to-select conversion (paper Section V-B(c)).

``scf.if`` regions that contain only pure element-wise arithmetic (no loops,
no memory operations, no nested regions) would occupy whole dataflow contexts
just to leave lanes idle.  This pass inlines such ifs: both branches are
hoisted into the parent block and each result becomes an ``arith.select``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import Module, Operation, Value, ops_named
from repro.ir.pass_manager import Pass

#: Ops that may be speculated (executed unconditionally on all lanes).
SPECULATABLE = {
    "arith.constant", "arith.addi", "arith.subi", "arith.muli", "arith.andi",
    "arith.ori", "arith.xori", "arith.shli", "arith.shrui", "arith.shrsi",
    "arith.minsi", "arith.maxsi", "arith.cmpi", "arith.select", "arith.extsi",
    "arith.extui", "arith.trunci",
}


class IfToSelectPass(Pass):
    """Inline loop-free, memory-free ``scf.if`` ops into selects."""

    name = "if-to-select"

    def __init__(self):
        self.converted = 0

    def run(self, module: Module) -> bool:
        changed = False
        for if_op in ops_named(module, "scf.if"):
            if if_op.parent is None:
                continue
            if self._convertible(if_op):
                self._convert(if_op)
                self.converted += 1
                changed = True
        return changed

    def _convertible(self, if_op: Operation) -> bool:
        for region in if_op.regions:
            if len(region.blocks) != 1:
                return False
            for op in region.entry.operations:
                if op.name == "scf.yield":
                    continue
                if op.name not in SPECULATABLE or op.regions:
                    return False
        return True

    def _convert(self, if_op: Operation) -> None:
        block = if_op.parent
        cond = if_op.operand(0)
        yields: List[List[Value]] = []
        for region in if_op.regions:
            mapping: Dict[Value, Value] = {}
            region_yields: List[Value] = []
            for op in list(region.entry.operations):
                if op.name == "scf.yield":
                    region_yields = [mapping.get(v, v) for v in op.operands]
                    for operand in op.operands:
                        if op in operand.uses:
                            operand.uses.remove(op)
                    continue
                clone = op.clone(mapping)
                block.insert_before(if_op, clone)
            yields.append(region_yields)

        then_vals, else_vals = yields[0], yields[1] if len(yields) > 1 else ([], [])
        selects: List[Value] = []
        for then_v, else_v in zip(then_vals, else_vals):
            select = Operation("arith.select", [cond, then_v, else_v], [then_v.type])
            block.insert_before(if_op, select)
            selects.append(select.result())
        if_op.replace_with_values(selects)
