"""Foreach hierarchy elimination (paper Section V-A(b), Figure 9).

``foreach`` loops annotated with ``pragma(eliminate_hierarchy)`` are rewritten
from expansion/reduction (which synchronizes all children with SLTF barriers)
into a hierarchy-less ``fork``:

* a one-word shared counter is initialized with the child count,
* the parent thread forks one child per iteration,
* each child runs the body, then atomically decrements the counter,
* children that do not observe the counter reaching zero ``exit()``; the last
  child continues as the parent's continuation.

This removes the strict barrier between consecutive parents, so the straggling
children of one parent can overlap with the next parent's children.
"""

from __future__ import annotations

from repro.ir import Builder, Module, Operation, ops_named
from repro.ir.dialects import arith as arith_d
from repro.ir.dialects import revet as revet_d
from repro.ir.dialects import scf as scf_d
from repro.ir.pass_manager import Pass

PRAGMA_NAME = "eliminate_hierarchy"


class HierarchyEliminationPass(Pass):
    """Rewrite pragma-annotated ``revet.foreach`` ops into ``revet.fork``."""

    name = "hierarchy-elimination"

    def __init__(self):
        self.eliminated = 0

    def run(self, module: Module) -> bool:
        changed = False
        for foreach in ops_named(module, "revet.foreach"):
            if foreach.parent is None or foreach.results:
                continue
            if not self._is_annotated(foreach):
                continue
            self._rewrite(foreach)
            self.eliminated += 1
            changed = True
        return changed

    @staticmethod
    def _is_annotated(foreach: Operation) -> bool:
        return any(
            op.name == "revet.pragma" and op.attrs.get("name") == PRAGMA_NAME
            for op in foreach.region(0).entry.operations
        )

    def _rewrite(self, foreach: Operation) -> None:
        block = foreach.parent
        count, step = foreach.operands
        body = foreach.region(0).entry
        index_arg = body.args[0]

        builder = Builder()
        builder.set_insertion_point_before(foreach)

        # Fork one hierarchy-less child per iteration and rebuild its index.
        # (Figure 9 uses a shared memory counter that children atomically
        # decrement so the *last to finish* continues; the functional executor
        # has no timing, so the equivalent "last child index continues" check
        # is used instead — see DESIGN.md.)
        children = arith_d.binary(builder, "divsi", count, step)
        child = revet_d.fork(builder, children)
        index = arith_d.binary(builder, "muli", child, step)
        index.name = index_arg.name
        index_arg.replace_all_uses_with(index)

        # Inline the body in place of the foreach.
        for op in list(body.operations):
            if op.name in ("revet.yield", "revet.pragma"):
                for operand in op.operands:
                    if op in operand.uses:
                        operand.uses.remove(op)
                continue
            body.operations.remove(op)
            op.parent = None
            block.insert_before(foreach, op)

        # Every child except the designated last one exits; the survivor acts
        # as the parent's continuation.
        tail = Builder()
        tail.set_insertion_point_before(foreach)
        one = arith_d.constant(tail, 1)
        last_index = arith_d.binary(tail, "subi", children, one)
        not_last = arith_d.cmpi(tail, "ne", child, last_index)
        guard = scf_d.if_(tail, not_last, [])
        then_b = Builder()
        then_b.set_insertion_point_to_end(scf_d.then_block(guard))
        revet_d.exit_(then_b)
        scf_d.yield_(then_b)
        else_b = Builder()
        else_b.set_insertion_point_to_end(scf_d.else_block(guard))
        scf_d.yield_(else_b)

        foreach.erase()
