"""Sub-word packing (paper Section V-B(d)).

Live values crossing ``while``-loop merges consume input buffers and network
links, which are the scarcest resources when mapping.  int8/int16 values that
are live into or out of a loop are packed into shared 32-bit lanes.  The pass
records, per ``scf.while``, how many live sub-word values were packed and how
many 32-bit lanes they now occupy; the dataflow resource model uses these
counts when sizing merge contexts.
"""

from __future__ import annotations

from repro.ir import IntType, Module, ops_named
from repro.ir.pass_manager import Pass


class SubwordPackingPass(Pass):
    """Annotate while loops with packed sub-word live-value counts."""

    name = "subword-packing"

    def __init__(self):
        self.packed_values = 0

    def run(self, module: Module) -> bool:
        changed = False
        for loop in ops_named(module, "scf.while"):
            live = list(loop.operands) + list(loop.results)
            subword_bits = 0
            subword_count = 0
            for value in live:
                if isinstance(value.type, IntType) and value.type.width < 32:
                    subword_bits += value.type.width
                    subword_count += 1
            packed_lanes = (subword_bits + 31) // 32
            loop.attrs["subword_live_values"] = subword_count
            loop.attrs["packed_lanes"] = packed_lanes
            loop.attrs["packed_savings"] = max(0, subword_count - packed_lanes)
            self.packed_values += subword_count
            changed = changed or subword_count > 0
        return changed
