"""View lowering (paper Section V-A(a), first half).

``ReadView`` / ``WriteView`` / ``ModifyView`` adapters become:

* a ``memref.alloc`` of the view's tile size,
* a ``revet.bulk_load`` right after allocation for readable views,
* ``memref.load`` / ``memref.store`` for each ``view_load`` / ``view_store``,
* a ``revet.bulk_store`` plus ``memref.dealloc`` at the end of the declaring
  block for writable views (the implicit flush in Figure 7 line 27).
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir import Builder, Module, Operation, ops_named
from repro.ir.dialects import memref as memref_d
from repro.ir.dialects import revet as revet_d
from repro.ir.pass_manager import Pass

READABLE = {"ReadView", "ModifyView"}
WRITABLE = {"WriteView", "ModifyView"}


class LowerViewsPass(Pass):
    """Rewrite every ``revet.view_new`` and its uses into physical memory ops."""

    name = "lower-views"

    def run(self, module: Module) -> bool:
        views = ops_named(module, "revet.view_new")
        for view_op in views:
            self._lower_view(view_op)
        return bool(views)

    def _lower_view(self, view_op: Operation) -> None:
        kind = view_op.attrs["kind"]
        size = view_op.attrs["size"]
        dram, base = view_op.operands
        block = view_op.parent
        if block is None:
            raise PassError("view_new is not attached to a block")

        builder = Builder()
        builder.set_insertion_point_before(view_op)
        buffer = memref_d.alloc(builder, size, name=f"{view_op.result().name}_tile")
        if kind in READABLE:
            revet_d.bulk_load(builder, dram, base, buffer, size)

        # Rewrite all loads/stores through this view.
        handle = view_op.result()
        for use in list(handle.uses):
            rewriter = Builder()
            rewriter.set_insertion_point_before(use)
            if use.name == "revet.view_load":
                value = memref_d.load(rewriter, buffer, use.operands[1])
                use.replace_with_values([value])
            elif use.name == "revet.view_store":
                memref_d.store(rewriter, use.operands[2], buffer, use.operands[1])
                use.erase()
            else:
                raise PassError(f"unexpected use of a view handle: {use.name}")

        # Flush and deallocate at the end of the declaring block.
        end_builder = Builder()
        terminator = block.terminator
        if terminator is not None and terminator.name in (
            "func.return", "scf.yield", "revet.yield", "scf.condition",
        ):
            end_builder.set_insertion_point_before(terminator)
        else:
            end_builder.set_insertion_point_to_end(block)
        if kind in WRITABLE:
            revet_d.bulk_store(end_builder, dram, base, buffer, size)
        memref_d.dealloc(end_builder, buffer)

        view_op.erase()
