"""Allocator hoisting for replicate regions (paper Section V-B(b), Figure 10).

When a replicate region contains exactly one fused allocator group, the
allocator can be hoisted outside the region: the pointer's low bits steer a
thread to a specific replicated region and the high bits address the buffer
inside it.  This (a) needs only one allocator for the whole replicate instead
of one per region and (b) provides round-robin load balancing, because a
region only receives new threads after it frees a buffer.

The pass records the hoisting decision on the ``revet.replicate`` op and the
hoisted allocs; the dataflow resource model and the Figure 14 load-balancing
model consume these attributes.
"""

from __future__ import annotations

from repro.ir import Module, ops_named
from repro.ir.pass_manager import Pass


class AllocatorHoistingPass(Pass):
    """Mark replicate regions whose single allocator group can be hoisted."""

    name = "allocator-hoisting"

    def __init__(self):
        self.hoisted = 0

    def run(self, module: Module) -> bool:
        changed = False
        for rep in ops_named(module, "revet.replicate"):
            allocs = ops_named(rep, "memref.alloc")
            groups = {a.attrs.get("alloc_group", a.uid) for a in allocs}
            if allocs and len(groups) == 1:
                rep.attrs["hoisted_allocator"] = True
                rep.attrs["hoisted_group"] = next(iter(groups))
                for alloc in allocs:
                    alloc.attrs["hoisted"] = True
                self.hoisted += 1
                changed = True
            else:
                rep.attrs["hoisted_allocator"] = False
        return changed
