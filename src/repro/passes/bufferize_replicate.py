"""Replicate bufferization (paper Section V-B(b), Figure 10b).

Values that are live *around* a replicate region (defined before it, used
after it, but not needed inside) would otherwise have to be sent through the
region's work-distribution network and permuted back.  When the region has a
hoisted allocator pointer, those values are instead parked in an SRAM buffer
keyed by that pointer and reloaded afterwards.

The pass records, per replicate op, how many live-around values were
bufferized (``bufferized_values``); the resource model charges one MU for the
buffer and removes the corresponding vector links from the distribution and
merge logic.
"""

from __future__ import annotations

from repro.ir import Module, Operation, ops_named
from repro.ir.pass_manager import Pass


def _values_live_around(rep: Operation):
    """Values defined before ``rep`` in its block and used after it."""
    block = rep.parent
    if block is None:
        return []
    position = block.operations.index(rep)
    defined_before = []
    for op in block.operations[:position]:
        defined_before.extend(op.results)
    defined_before.extend(block.args)
    inside = {id(o) for o in rep.walk()}
    live_around = []
    for value in defined_before:
        used_after = False
        used_inside = False
        for use in value.uses:
            if id(use) in inside:
                used_inside = True
            elif use.parent is block and block.operations.index(use) > position:
                used_after = True
        if used_after and not used_inside:
            live_around.append(value)
    return live_around


class BufferizeReplicatePass(Pass):
    """Annotate replicate ops with the values bufferized around them."""

    name = "bufferize-replicate"

    def run(self, module: Module) -> bool:
        changed = False
        for rep in ops_named(module, "revet.replicate"):
            live_around = _values_live_around(rep)
            count = len(live_around) if rep.attrs.get("hoisted_allocator") else 0
            rep.attrs["bufferized_values"] = count
            rep.attrs["live_around_values"] = len(live_around)
            changed = changed or count > 0
        return changed
