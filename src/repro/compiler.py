"""The Revet compiler driver: source text to an executable dataflow program.

This assembles the pipeline of Figure 8:

1. parse and semantic-check the Revet source (``repro.lang``),
2. lower the AST to the mixed scf/revet IR (``repro.frontend``),
3. run the high-level lowering and optimization passes (``repro.passes``),
4. lower structured control flow to a dataflow graph (``repro.dataflow``).

The result is a :class:`repro.dataflow.lowering.CompiledProgram`, which can be
executed functionally on a :class:`repro.core.memory.MemorySystem` and fed to
the resource/performance models in :mod:`repro.dataflow` and :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Optional

from repro.dataflow.lowering import CompiledProgram, lower_to_dataflow
from repro.frontend import compile_source_to_ir
from repro.ir import Module, PassManager
from repro.ir.pass_manager import Pass
from repro.passes.lower_views import LowerViewsPass
from repro.passes.lower_iterators import LowerIteratorsPass
from repro.passes.canonicalize import CanonicalizePass
from repro.passes.if_to_select import IfToSelectPass
from repro.passes.hierarchy_elimination import HierarchyEliminationPass
from repro.passes.allocator_fusion import AllocatorFusionPass
from repro.passes.allocator_hoisting import AllocatorHoistingPass
from repro.passes.bufferize_replicate import BufferizeReplicatePass
from repro.passes.subword_packing import SubwordPackingPass


@dataclass(frozen=True)
class CompileOptions:
    """Which optional optimization passes to run (Figure 12's knobs).

    Frozen (and therefore hashable) so a configuration can key memoization
    tables such as :class:`repro.runtime.cache.ProgramCache`; use
    :meth:`disabled` to derive variants and :meth:`cache_key` for a stable
    string form.
    """

    canonicalize: bool = True
    hierarchy_elimination: bool = True
    if_to_select: bool = True
    allocator_fusion: bool = True
    allocator_hoisting: bool = True
    bufferize_replicate: bool = True
    subword_packing: bool = True
    verify_each: bool = True

    @classmethod
    def none(cls) -> "CompileOptions":
        """Disable every optional optimization (lowering passes still run)."""
        return cls(
            canonicalize=False,
            hierarchy_elimination=False,
            if_to_select=False,
            allocator_fusion=False,
            allocator_hoisting=False,
            bufferize_replicate=False,
            subword_packing=False,
        )

    def disabled(self, *names: str) -> "CompileOptions":
        """A copy of these options with the named passes turned off."""
        field_names = {f.name for f in fields(self)}
        for name in names:
            if name not in field_names:
                raise ValueError(f"unknown optimization '{name}'")
        return replace(self, **{name: False for name in names})

    def cache_key(self) -> str:
        """Canonical, order-independent text form for content addressing."""
        return ",".join(f"{f.name}={int(getattr(self, f.name))}"
                        for f in sorted(fields(self), key=lambda f: f.name))


def build_pass_pipeline(options: Optional[CompileOptions] = None) -> PassManager:
    """The high-level lowering + optimization pipeline (Figure 8, middle)."""
    options = options or CompileOptions()
    passes: List[Pass] = []
    if options.canonicalize:
        passes.append(CanonicalizePass())
    passes.append(LowerViewsPass())
    passes.append(LowerIteratorsPass())
    if options.hierarchy_elimination:
        passes.append(HierarchyEliminationPass())
    if options.if_to_select:
        passes.append(IfToSelectPass())
    if options.allocator_fusion:
        passes.append(AllocatorFusionPass())
    if options.allocator_hoisting:
        passes.append(AllocatorHoistingPass())
    if options.bufferize_replicate:
        passes.append(BufferizeReplicatePass())
    if options.subword_packing:
        passes.append(SubwordPackingPass())
    if options.canonicalize:
        passes.append(CanonicalizePass())
    return PassManager(passes, verify_each=options.verify_each)


def compile_ir(module: Module, function: str = "main",
               options: Optional[CompileOptions] = None) -> CompiledProgram:
    """Run the pass pipeline on an IR module and lower it to dataflow."""
    pipeline = build_pass_pipeline(options)
    pipeline.run(module)
    return lower_to_dataflow(module, function)


def compile_source(source: str, function: str = "main",
                   options: Optional[CompileOptions] = None) -> CompiledProgram:
    """Compile Revet source text end to end."""
    module = compile_source_to_ir(source)
    return compile_ir(module, function, options)
