"""Structured ("virtual") dataflow graphs.

This is the representation the compiler lowers control flow into before
splitting and placement: a DAG of primitive nodes operating on SLTF links,
where cyclic control flow (``while``) and hierarchical parallelism
(``foreach``, ``replicate``) appear as *region nodes* containing nested
graphs.  Flattening region nodes into explicit merge/filter contexts is done
by :mod:`repro.dataflow.flatten`; functional execution of structured graphs
is done by :mod:`repro.core.executor`.

Node operations
---------------

Leaf (element-wise / streaming) operations:

``compute``        apply an opcode or callable across aligned inputs
``const``          emit a constant aligned with a structural input
``broadcast``      repeat a parent value across a child dimension
``counter``        expand (min, max, step) into an iteration dimension
``reduce``         reduce the lowest dimension with an associative op
``flatten``        drop one level of hierarchy
``filter``         keep elements whose predicate is true
``forward_merge``  interleave two thread bundles (join after an ``if``)
``fork``           duplicate threads in place (no added hierarchy)

Memory operations (element-wise, see :mod:`repro.core.memory`):

``sram_alloc`` ``sram_free`` ``sram_read`` ``sram_write``
``dram_read`` ``dram_write`` ``bulk_load`` ``bulk_store``

Region operations:

``while``      regions = [cond, body]; per-thread iteration
``foreach``    regions = [body]; counter expansion + reduction/flattening
``replicate``  regions = [body]; outer (non-vector) parallelism
``if``         regions = [then, else]; filter into branches, forward-merge out
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.machine import LinkKind
from repro.errors import GraphError

#: Element-wise opcodes understood by compute nodes, the executor, and the
#: resource model.  ``select`` is (cond, a, b) -> a if cond else b.
OPCODES = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "rem": lambda a, b: a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    # Logical right shift: negative values are treated as 32-bit patterns;
    # non-negative values (which may exceed 32 bits mid-expression, e.g. a
    # bit-packing accumulator) shift exactly.
    "shr": lambda a, b: (a if a >= 0 else a & 0xFFFFFFFF) >> b,
    "ashr": lambda a, b: a >> b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
    "not": lambda a: int(not a),
    "neg": lambda a: -a,
    "copy": lambda a: a,
    "select": lambda c, a, b: a if c else b,
    "land": lambda a, b: int(bool(a) and bool(b)),
    "lor": lambda a, b: int(bool(a) or bool(b)),
}

LEAF_OPS = {
    "compute",
    "const",
    "broadcast",
    "counter",
    "reduce",
    "flatten",
    "filter",
    "forward_merge",
    "fork",
    "sram_alloc",
    "sram_free",
    "sram_read",
    "sram_write",
    "dram_read",
    "dram_write",
    "bulk_load",
    "bulk_store",
}

REGION_OPS = {"while", "foreach", "replicate", "if"}

ALL_OPS = LEAF_OPS | REGION_OPS

_value_counter = itertools.count()
_node_counter = itertools.count()


@dataclass(eq=False)
class DFValue:
    """One SLTF link (a stream of data and barriers) in a dataflow graph."""

    name: str
    kind: LinkKind = LinkKind.VECTOR
    producer: Optional["DFNode"] = None
    index: int = 0  # output index on the producer
    uid: int = field(default_factory=lambda: next(_value_counter))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"%{self.name}"


@dataclass(eq=False)
class DFNode:
    """A primitive or region node."""

    op: str
    inputs: List[DFValue] = field(default_factory=list)
    outputs: List[DFValue] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    regions: List["DFGraph"] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_node_counter))

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise GraphError(f"unknown dataflow op '{self.op}'")

    @property
    def is_region(self) -> bool:
        return self.op in REGION_OPS

    @property
    def is_memory(self) -> bool:
        return self.op in {
            "sram_alloc",
            "sram_free",
            "sram_read",
            "sram_write",
            "dram_read",
            "dram_write",
            "bulk_load",
            "bulk_store",
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ", ".join(v.name for v in self.inputs)
        outs = ", ".join(v.name for v in self.outputs)
        return f"<{self.op} #{self.uid} ({ins}) -> ({outs})>"


class DFGraph:
    """A structured dataflow graph: a DAG of nodes over SLTF links."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[DFNode] = []
        self.inputs: List[DFValue] = []
        self.outputs: List[DFValue] = []
        self._names: Set[str] = set()
        #: Bumped on every structural mutation; memoized derived state (the
        #: topo order here, node schedules in the executor) is keyed on it.
        self._version = 0
        self._topo_cache: Optional[List[DFNode]] = None
        self._topo_version = -1

    @property
    def version(self) -> int:
        """Monotonic structural version (graphs unpickled from old caches
        may predate the counter, hence the ``getattr`` default)."""
        return getattr(self, "_version", 0)

    def _mutated(self) -> None:
        self._version = self.version + 1
        self._topo_cache = None

    # -- construction -----------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        if base not in self._names:
            self._names.add(base)
            return base
        i = 1
        while f"{base}_{i}" in self._names:
            i += 1
        name = f"{base}_{i}"
        self._names.add(name)
        return name

    def add_input(self, name: str, kind: LinkKind = LinkKind.VECTOR) -> DFValue:
        """Declare a graph input stream."""
        value = DFValue(self._fresh_name(name), kind=kind)
        self.inputs.append(value)
        self._mutated()
        return value

    def add_node(
        self,
        op: str,
        inputs: Sequence[DFValue] = (),
        num_outputs: int = 1,
        params: Optional[Dict[str, Any]] = None,
        regions: Optional[Sequence["DFGraph"]] = None,
        name: Optional[str] = None,
        output_kinds: Optional[Sequence[LinkKind]] = None,
    ) -> DFNode:
        """Create a node, its output values, and append it to the graph."""
        node = DFNode(op=op, inputs=list(inputs), params=dict(params or {}),
                      regions=list(regions or []))
        base = name or op
        kinds = list(output_kinds or [])
        for i in range(num_outputs):
            kind = kinds[i] if i < len(kinds) else LinkKind.VECTOR
            value = DFValue(self._fresh_name(f"{base}.{i}" if num_outputs > 1 else base),
                            kind=kind, producer=node, index=i)
            node.outputs.append(value)
        self.nodes.append(node)
        self._mutated()
        return node

    def set_outputs(self, values: Sequence[DFValue]) -> None:
        """Declare the graph's output streams."""
        self.outputs = list(values)
        self._mutated()

    # -- queries ----------------------------------------------------------

    def value_uses(self) -> Dict[int, List[DFNode]]:
        """Map value uid -> consuming nodes (within this graph level only)."""
        uses: Dict[int, List[DFNode]] = {}
        for node in self.nodes:
            for val in node.inputs:
                uses.setdefault(val.uid, []).append(node)
        return uses

    def all_values(self) -> List[DFValue]:
        """Every value defined at this graph level (inputs + node outputs)."""
        values = list(self.inputs)
        for node in self.nodes:
            values.extend(node.outputs)
        return values

    def topo_order(self) -> List[DFNode]:
        """Topologically order nodes; raises GraphError on cycles.

        Structured graphs are DAGs at each level — cyclic control flow lives
        inside ``while`` region nodes, not in back-edges at this level.

        The order is memoized per structural :attr:`version`: region bodies
        are re-executed once per loop iteration, so the serving hot path
        would otherwise re-derive the same order thousands of times.
        """
        cached = getattr(self, "_topo_cache", None)
        if cached is not None and self._topo_version == self.version:
            return cached
        order = self._topo_order_uncached()
        self._topo_cache = order
        self._topo_version = self.version
        return order

    def _topo_order_uncached(self) -> List[DFNode]:
        defined: Set[int] = {v.uid for v in self.inputs}
        remaining = list(self.nodes)
        order: List[DFNode] = []
        while remaining:
            progressed = False
            still: List[DFNode] = []
            for node in remaining:
                if all(v.uid in defined for v in node.inputs):
                    order.append(node)
                    defined.update(v.uid for v in node.outputs)
                    progressed = True
                else:
                    still.append(node)
            remaining = still
            if not progressed and remaining:
                bad = ", ".join(repr(n) for n in remaining[:3])
                raise GraphError(
                    f"dataflow graph '{self.name}' has a cycle or undefined "
                    f"inputs involving: {bad}"
                )
        return order

    def verify(self) -> None:
        """Check structural well-formedness (arity, regions, acyclicity)."""
        self.topo_order()
        for node in self.nodes:
            _verify_node(node)
        defined = {v.uid for v in self.all_values()}
        for out in self.outputs:
            if out.uid not in defined:
                raise GraphError(
                    f"graph '{self.name}' output {out!r} is not defined by any node"
                )

    def walk(self) -> Iterable[Tuple["DFGraph", DFNode]]:
        """Yield (graph, node) pairs for this graph and all nested regions."""
        for node in self.nodes:
            yield self, node
            for region in node.regions:
                yield from region.walk()

    def count_ops(self) -> Dict[str, int]:
        """Histogram of node ops across the whole hierarchy."""
        counts: Dict[str, int] = {}
        for _, node in self.walk():
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DFGraph {self.name}: {len(self.nodes)} nodes>"


def _verify_node(node: DFNode) -> None:
    """Per-op structural checks."""
    op = node.op
    n_in, n_out = len(node.inputs), len(node.outputs)
    if op == "compute":
        fn = node.params.get("fn")
        if isinstance(fn, str) and fn not in OPCODES:
            raise GraphError(f"unknown opcode '{fn}' in compute node")
        if n_out != 1:
            raise GraphError("compute nodes produce exactly one output")
    elif op == "const":
        if n_in != 1 or n_out != 1:
            raise GraphError("const nodes take one structural input, one output")
        if "value" not in node.params:
            raise GraphError("const nodes require a 'value' parameter")
    elif op == "broadcast":
        if n_in != 2 or n_out != 1:
            raise GraphError("broadcast takes (outer, inner) inputs, one output")
    elif op == "counter":
        if n_in != 3 or n_out != 1:
            raise GraphError("counter takes (min, max, step), one output")
    elif op == "reduce":
        if n_in != 1 or n_out != 1 or "op" not in node.params:
            raise GraphError("reduce takes one input, one output, and an 'op'")
    elif op == "flatten":
        if n_in != 1 or n_out != 1:
            raise GraphError("flatten takes one input and one output")
    elif op == "filter":
        if n_in < 2 or n_out != n_in - 1:
            raise GraphError("filter takes (*data, pred) and outputs len(data)")
    elif op == "forward_merge":
        width = node.params.get("width", 1)
        if n_in != 2 * width or n_out != width:
            raise GraphError("forward_merge takes 2*width inputs, width outputs")
    elif op == "fork":
        if n_in < 1 or n_out != n_in:
            raise GraphError("fork takes (count, *data), outputs (index, *data)")
    elif op == "while":
        if len(node.regions) != 2:
            raise GraphError("while nodes need [cond, body] regions")
        cond, body = node.regions
        if len(cond.inputs) != n_in or len(body.inputs) != n_in:
            raise GraphError("while regions must take the node's live-in values")
        if len(cond.outputs) != 1:
            raise GraphError("while cond region must produce exactly one value")
        if len(body.outputs) != n_in:
            raise GraphError("while body must produce the next live values")
        if n_out != n_in:
            raise GraphError("while nodes output the final live values")
    elif op == "if":
        if len(node.regions) != 2:
            raise GraphError("if nodes need [then, else] regions")
        then, orelse = node.regions
        if len(then.inputs) != n_in - 1 or len(orelse.inputs) != n_in - 1:
            raise GraphError("if regions take the node's live-in values (minus cond)")
        if len(then.outputs) != n_out or len(orelse.outputs) != n_out:
            raise GraphError("if regions must both yield the node's outputs")
    elif op == "foreach":
        if len(node.regions) != 1:
            raise GraphError("foreach nodes need a [body] region")
        body = node.regions[0]
        # inputs: lo, hi, step, *parent live values
        if n_in < 3:
            raise GraphError("foreach takes (lo, hi, step, *live)")
        if len(body.inputs) != n_in - 2:
            raise GraphError("foreach body takes (index, *live) inputs")
    elif op == "replicate":
        if len(node.regions) != 1:
            raise GraphError("replicate nodes need a [body] region")
        if len(node.regions[0].inputs) != n_in:
            raise GraphError("replicate body takes the node's inputs")
        if len(node.regions[0].outputs) != n_out:
            raise GraphError("replicate body outputs must match node outputs")
    elif op in {"sram_read", "dram_read"}:
        if n_in < 1 or n_out != 1:
            raise GraphError(f"{op} takes an address (+ordering tokens), one output")
    elif op in {"sram_write", "dram_write"}:
        if n_in < 2 or n_out != 1:
            raise GraphError(f"{op} takes (addr, value, ...), one void output")
    elif op == "sram_alloc":
        if n_out != 1:
            raise GraphError("sram_alloc produces one pointer stream")
    elif op == "sram_free":
        if n_in < 1 or n_out != 1:
            raise GraphError("sram_free takes a pointer, produces a void token")
    elif op in {"bulk_load", "bulk_store"}:
        if n_in < 2 or n_out != 1:
            raise GraphError(f"{op} takes (dram_base, sram_ptr, ...), one void output")
