"""Core dataflow-threads machine model: SLTF, primitives, graphs, executor."""

from repro.core.sltf import Barrier, Data, Stream, Token, encode, decode, decode_all
from repro.core.graph import DFGraph, DFNode, DFValue, OPCODES
from repro.core.executor import Executor, ExecutionProfile, run_graph
from repro.core.columnar import (
    EXECUTOR_CHOICES,
    HAVE_NUMPY,
    ColumnarExecutor,
    make_executor,
    resolve_executor,
)
from repro.core.memory import MemorySystem, MemoryStats
from repro.core.machine import (
    DEFAULT_MACHINE,
    ContextLimits,
    LinkKind,
    MachineConfig,
    ResourceKind,
    ResourceUsage,
)

__all__ = [
    "Barrier",
    "Data",
    "Stream",
    "Token",
    "encode",
    "decode",
    "decode_all",
    "DFGraph",
    "DFNode",
    "DFValue",
    "OPCODES",
    "Executor",
    "ExecutionProfile",
    "run_graph",
    "EXECUTOR_CHOICES",
    "HAVE_NUMPY",
    "ColumnarExecutor",
    "make_executor",
    "resolve_executor",
    "MemorySystem",
    "MemoryStats",
    "DEFAULT_MACHINE",
    "ContextLimits",
    "LinkKind",
    "MachineConfig",
    "ResourceKind",
    "ResourceUsage",
]
