"""Functional streaming executor for structured dataflow graphs.

The executor gives the *untimed* semantics of a compiled Revet program: it
runs a :class:`repro.core.graph.DFGraph` to completion, node by node in
topological order, using the streaming primitives of
:mod:`repro.core.primitives`.  Region nodes (``while``, ``foreach``,
``replicate``) are executed recursively; memory operations act on a shared
:class:`repro.core.memory.MemorySystem`.

The executor also gathers per-link statistics (element counts, barrier
counts, trip counts) in an :class:`ExecutionProfile`.  The cycle-level
performance model consumes this profile to derive throughput, which is how
the paper's ``runtime = size / throughput + init`` evaluation model is
reproduced without re-running token-level timing for full-size datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import primitives as prim
from repro.core.graph import DFGraph, DFNode, OPCODES
from repro.core.memory import MemorySystem
from repro.core.sltf import Barrier, Data, Stream, Token, count_elements, encode
from repro.errors import GraphError, PrimitiveError

#: Associative reduction operators by name.
REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "min": min,
    "max": max,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "void": lambda a, b: 0,
}


@dataclass
class LinkProfile:
    """Dynamic statistics for one SLTF link."""

    elements: int = 0
    barriers: int = 0

    def record(self, stream: Sequence[Token]) -> None:
        self.elements += count_elements(stream)
        self.barriers += sum(1 for t in stream if isinstance(t, Barrier))


@dataclass
class ExecutionProfile:
    """Per-link and per-node statistics gathered by the executor."""

    link_stats: Dict[str, LinkProfile] = field(default_factory=dict)
    node_firings: Dict[str, int] = field(default_factory=dict)
    loop_iterations: Dict[str, int] = field(default_factory=dict)

    def record_link(self, name: str, stream: Sequence[Token]) -> None:
        self.link_stats.setdefault(name, LinkProfile()).record(stream)

    def record_firing(self, label: str, count: int = 1) -> None:
        self.node_firings[label] = self.node_firings.get(label, 0) + count

    def record_loop(self, label: str, iterations: int) -> None:
        self.loop_iterations[label] = self.loop_iterations.get(label, 0) + iterations

    def total_elements(self) -> int:
        return sum(p.elements for p in self.link_stats.values())


def _resolve_fn(fn: Any) -> Callable[..., Any]:
    if callable(fn):
        return fn
    if isinstance(fn, str):
        if fn not in OPCODES:
            raise GraphError(f"unknown opcode '{fn}'")
        return OPCODES[fn]
    raise GraphError(f"compute node 'fn' must be a callable or opcode, got {fn!r}")


def _resolve_reduce(op: Any) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    if isinstance(op, str) and op in REDUCE_OPS:
        return REDUCE_OPS[op]
    raise GraphError(f"unknown reduction op {op!r}")


def zip_streams(*streams: Sequence[Token]) -> Stream:
    """Combine parallel live-value streams into a stream of tuples."""
    if len(streams) == 1:
        return [Data((t.value,)) if isinstance(t, Data) else t for t in streams[0]]
    return prim.elementwise(lambda *vals: tuple(vals), *streams)


def unzip_stream(stream: Sequence[Token], width: int) -> List[Stream]:
    """Split a stream of tuples back into ``width`` parallel streams."""
    outs: List[Stream] = [[] for _ in range(width)]
    for tok in stream:
        if isinstance(tok, Barrier):
            for out in outs:
                out.append(tok)
        else:
            values = tok.value
            if len(values) != width:
                raise PrimitiveError(
                    f"expected {width}-tuples in zipped stream, got {values!r}"
                )
            for i, out in enumerate(outs):
                out.append(Data(values[i]))
    return outs


class Executor:
    """Runs structured dataflow graphs with functional SLTF semantics."""

    def __init__(
        self,
        graph: DFGraph,
        memory: Optional[MemorySystem] = None,
        max_loop_iterations: int = 1_000_000,
    ):
        self.graph = graph
        self.memory = memory if memory is not None else MemorySystem()
        self.max_loop_iterations = max_loop_iterations
        self.profile = ExecutionProfile()

    # -- public API ---------------------------------------------------------

    def run(self, inputs: Optional[Dict[str, Any]] = None) -> Dict[str, Stream]:
        """Execute the graph and return its output streams keyed by name.

        ``inputs`` maps graph-input names to either token streams or nested
        Python lists (which are encoded with :func:`repro.core.sltf.encode`
        using rank 1 for flat lists).
        """
        inputs = inputs or {}
        env: Dict[int, Stream] = {}
        for value in self.graph.inputs:
            if value.name not in inputs:
                raise GraphError(f"missing input stream '{value.name}'")
            env[value.uid] = _as_stream(inputs[value.name])
        outputs = self._run_graph(self.graph, env)
        return {v.name: outputs[v.uid] for v in self.graph.outputs}

    # -- graph / node evaluation ---------------------------------------------

    def _run_graph(self, graph: DFGraph, env: Dict[int, Stream]) -> Dict[int, Stream]:
        for node in graph.topo_order():
            in_streams = [env[v.uid] for v in node.inputs]
            out_streams = self._run_node(node, in_streams)
            if len(out_streams) != len(node.outputs):
                raise GraphError(
                    f"node {node!r} produced {len(out_streams)} streams, "
                    f"expected {len(node.outputs)}"
                )
            for value, stream in zip(node.outputs, out_streams):
                env[value.uid] = stream
                self.profile.record_link(value.name, stream)
        return env

    def _run_subgraph(self, graph: DFGraph, inputs: Sequence[Stream]) -> List[Stream]:
        if len(inputs) != len(graph.inputs):
            raise GraphError(
                f"region '{graph.name}' expects {len(graph.inputs)} inputs, "
                f"got {len(inputs)}"
            )
        env: Dict[int, Stream] = {
            v.uid: list(s) for v, s in zip(graph.inputs, inputs)
        }
        env = self._run_graph(graph, env)
        return [env[v.uid] for v in graph.outputs]

    def _run_node(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise GraphError(f"no executor handler for op '{node.op}'")
        self.profile.record_firing(node.op)
        return handler(node, ins)

    # -- element-wise and structural ops --------------------------------------

    def _op_compute(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        fn = _resolve_fn(node.params["fn"])
        return [prim.elementwise(fn, *ins)]

    def _op_const(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.constant_like(ins[0], node.params["value"])]

    def _op_broadcast(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        levels = node.params.get("levels", 1)
        return [prim.broadcast(ins[0], ins[1], levels=levels)]

    def _op_counter(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.counter(ins[0], ins[1], ins[2])]

    def _op_reduce(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        op = _resolve_reduce(node.params["op"])
        init = node.params.get("init", 0)
        level = node.params.get("level", 1)
        return [prim.reduce_stream(op, init, ins[0], level=level)]

    def _op_flatten(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.flatten_stream(ins[0], levels=node.params.get("levels", 1))]

    def _op_filter(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        pred = ins[-1]
        return [prim.filter_stream(data, pred) for data in ins[:-1]]

    def _op_forward_merge(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        width = node.params.get("width", 1)
        a, b = ins[:width], ins[width:]
        # Merge the bundles jointly so per-thread live values stay together.
        merged = prim.forward_merge(zip_streams(*a), zip_streams(*b))
        return unzip_stream(merged, width)

    def _op_fork(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        counts = ins[0]
        # First output: the per-child index (0 .. count-1 for each parent).
        indices: Stream = []
        for tok in counts:
            if isinstance(tok, Barrier):
                indices.append(tok)
            else:
                indices.extend(Data(i) for i in range(tok.value))
        return [indices] + [prim.fork_stream(counts, data) for data in ins[1:]]

    # -- memory ops -----------------------------------------------------------

    def _op_sram_alloc(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        words = node.params.get("buffer_words", 64)
        max_buffers = node.params.get("max_buffers", 4096)
        trigger = ins[0] if ins else [Data(0), Barrier(1)]
        out = prim.map_stream(
            lambda _v: self.memory.sram_alloc(site, words, max_buffers), trigger
        )
        return [out]

    def _op_sram_free(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")

        def do_free(ptr: Any) -> int:
            self.memory.sram_free(site, ptr)
            return 0

        return [prim.map_stream(do_free, ins[0])]

    def _op_sram_read(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        return [prim.map_stream(lambda addr: self.memory.sram_read(site, addr), ins[0])]

    def _op_sram_write(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")

        def do_write(addr: Any, value: Any) -> int:
            self.memory.sram_write(site, addr, value)
            return 0

        return [prim.elementwise(do_write, ins[0], ins[1])]

    def _op_dram_read(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.map_stream(self.memory.dram_read, ins[0])]

    def _op_dram_write(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        def do_write(addr: Any, value: Any) -> int:
            self.memory.dram_write(addr, value)
            return 0

        return [prim.elementwise(do_write, ins[0], ins[1])]

    def _op_bulk_load(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        size = node.params["size"]

        def do_load(dram_base: Any, sram_base: Any) -> int:
            self.memory.bulk_load(site, dram_base, sram_base, size)
            return 0

        return [prim.elementwise(do_load, ins[0], ins[1])]

    def _op_bulk_store(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        size = node.params["size"]

        if len(ins) > 2:
            # Dynamic count (bounded by the static tile size): used for the
            # final partial flush of write iterators.
            def do_store_counted(dram_base: Any, sram_base: Any, count: Any) -> int:
                self.memory.bulk_store(site, dram_base, sram_base,
                                       max(0, min(size, count)))
                return 0

            return [prim.elementwise(do_store_counted, ins[0], ins[1], ins[2])]

        def do_store(dram_base: Any, sram_base: Any) -> int:
            self.memory.bulk_store(site, dram_base, sram_base, size)
            return 0

        return [prim.elementwise(do_store, ins[0], ins[1])]

    # -- region ops -------------------------------------------------------------

    def _op_while(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        cond_region, body_region = node.regions
        width = len(ins)
        label = node.params.get("label", f"while#{node.uid}")
        zipped = zip_streams(*ins)

        def loop_body(live: Stream) -> Tuple[Stream, Stream]:
            self.profile.record_loop(label, 1)
            live_streams = unzip_stream(live, width)
            cond = self._run_subgraph(cond_region, live_streams)[0]
            not_cond = prim.map_stream(lambda p: not p, cond)
            continuing = [prim.filter_stream(s, cond) for s in live_streams]
            exiting = [prim.filter_stream(s, not_cond) for s in live_streams]
            next_live = self._run_subgraph(body_region, continuing)
            return zip_streams(*next_live), zip_streams(*exiting)

        result = prim.forward_backward_loop(
            zipped, loop_body, max_iterations=self.max_loop_iterations
        )
        return unzip_stream(result, width)

    def _op_if(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        cond, live = ins[0], ins[1:]
        then_region, else_region = node.regions
        not_cond = prim.map_stream(lambda p: not p, cond)
        taken = [prim.filter_stream(s, cond) for s in live]
        fallthrough = [prim.filter_stream(s, not_cond) for s in live]
        then_out = self._run_subgraph(then_region, taken)
        else_out = self._run_subgraph(else_region, fallthrough)
        width = len(node.outputs)
        if width == 0:
            return []
        merged = prim.forward_merge(zip_streams(*then_out), zip_streams(*else_out))
        return unzip_stream(merged, width)

    def _op_foreach(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        lo, hi, step = ins[0], ins[1], ins[2]
        live = ins[3:]
        body = node.regions[0]
        indices = prim.counter(lo, hi, step)
        body_inputs = [indices] + [prim.broadcast(s, indices, levels=1) for s in live]
        results = self._run_subgraph(body, body_inputs)
        reduce_op = node.params.get("reduce_op")
        if reduce_op is not None:
            op = _resolve_reduce(reduce_op)
            init = node.params.get("reduce_init", 0)
            return [prim.reduce_stream(op, init, r, level=1) for r in results]
        return [prim.flatten_stream(r, levels=1) for r in results]

    def _op_replicate(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        # Functionally, a replicate region is a single copy of its body: the
        # factor only affects spatial resource allocation and load balancing,
        # which the performance model handles.  Thread order inside a barrier
        # group is unordered, so running one copy is semantically equivalent.
        body = node.regions[0]
        return self._run_subgraph(body, ins)


def _as_stream(value: Any) -> Stream:
    """Coerce user-provided input (stream or nested list) into a stream."""
    if isinstance(value, list) and value and isinstance(value[0], (Data, Barrier)):
        return list(value)
    if isinstance(value, list) and not value:
        return []
    if isinstance(value, list):
        rank = 1
        probe = value
        while probe and isinstance(probe[0], list):
            rank += 1
            probe = probe[0]
        return encode(value, ndim=rank)
    raise GraphError(
        "graph inputs must be token streams or (nested) lists of values"
    )


def run_graph(
    graph: DFGraph,
    inputs: Optional[Dict[str, Any]] = None,
    memory: Optional[MemorySystem] = None,
) -> Dict[str, Stream]:
    """Convenience wrapper: build an :class:`Executor` and run it once."""
    return Executor(graph, memory=memory).run(inputs)
