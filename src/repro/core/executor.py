"""Functional streaming executor for structured dataflow graphs.

The executor gives the *untimed* semantics of a compiled Revet program: it
runs a :class:`repro.core.graph.DFGraph` to completion, node by node in
topological order, using the streaming primitives of
:mod:`repro.core.primitives`.  Region nodes (``while``, ``foreach``,
``replicate``) are executed recursively; memory operations act on a shared
:class:`repro.core.memory.MemorySystem`.

The executor also gathers per-link statistics (element counts, barrier
counts, trip counts) in an :class:`ExecutionProfile`.  The cycle-level
performance model consumes this profile to derive throughput, which is how
the paper's ``runtime = size / throughput + init`` evaluation model is
reproduced without re-running token-level timing for full-size datasets.

Serving fast path
-----------------

A cold serving request executes one graph exactly once, but region bodies
re-run once per loop iteration, so naive per-visit work (re-deriving the
topological order, ``getattr``-resolving the handler for every node firing,
re-resolving ``compute`` opcodes) dominates the cold path.  A
:class:`NodeSchedule` precompiles all of that once per program — the topo
order of every graph in the hierarchy plus per-node handler/opcode
resolution — and is cached per graph (keyed on the graph's structural
version), so every executor over the same compiled program shares one
schedule.  Link statistics are optional per run (``link_stats=False``):
the serving tier only consumes loop trip counts, not per-link histograms.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core import primitives as prim
from repro.core.graph import DFGraph, DFNode, OPCODES
from repro.core.memory import MemorySystem
from repro.core.sltf import Barrier, Data, Stream, Token, encode
from repro.errors import GraphError, PrimitiveError

#: Associative reduction operators by name.
REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "min": min,
    "max": max,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "void": lambda a, b: 0,
}


@dataclass
class LinkProfile:
    """Dynamic statistics for one SLTF link."""

    elements: int = 0
    barriers: int = 0

    def record(self, stream: Sequence[Token]) -> None:
        # One pass computes both counts; tokens are only Data or Barrier.
        elements = 0
        barriers = 0
        for tok in stream:
            if isinstance(tok, Barrier):
                barriers += 1
            else:
                elements += 1
        self.elements += elements
        self.barriers += barriers


@dataclass
class ExecutionProfile:
    """Per-link and per-node statistics gathered by the executor."""

    link_stats: Dict[str, LinkProfile] = field(default_factory=dict)
    node_firings: Dict[str, int] = field(default_factory=dict)
    loop_iterations: Dict[str, int] = field(default_factory=dict)

    def record_link(self, name: str, stream: Sequence[Token]) -> None:
        self.link_stats.setdefault(name, LinkProfile()).record(stream)

    def record_firing(self, label: str, count: int = 1) -> None:
        self.node_firings[label] = self.node_firings.get(label, 0) + count

    def record_loop(self, label: str, iterations: int) -> None:
        self.loop_iterations[label] = self.loop_iterations.get(label, 0) + iterations

    def total_elements(self) -> int:
        return sum(p.elements for p in self.link_stats.values())


def _resolve_fn(fn: Any) -> Callable[..., Any]:
    if callable(fn):
        return fn
    if isinstance(fn, str):
        if fn not in OPCODES:
            raise GraphError(f"unknown opcode '{fn}'")
        return OPCODES[fn]
    raise GraphError(f"compute node 'fn' must be a callable or opcode, got {fn!r}")


def _resolve_reduce(op: Any) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    if isinstance(op, str) and op in REDUCE_OPS:
        return REDUCE_OPS[op]
    raise GraphError(f"unknown reduction op {op!r}")


class NodeSchedule:
    """A precompiled execution plan for one structured-graph hierarchy.

    Built once per compiled program and shared by every executor over it:

    * the memoized topological order of the root graph and every nested
      region graph (``steps``),
    * per-node opcode/reduction resolution for ``compute``, ``reduce`` and
      reducing ``foreach`` nodes (``fn``), and
    * the set of ops that appear anywhere in the hierarchy, so an executor
      can resolve its handler table once instead of per node firing.

    Schedules are immutable snapshots: they record the structural
    :attr:`~repro.core.graph.DFGraph.version` of every graph in the
    hierarchy at build time, and :func:`schedule_for` rebuilds
    automatically when any of them has changed.  In-place *node* mutations
    (e.g. rewriting ``params['fn']`` on an existing node) are not tracked —
    graphs are append-only after construction everywhere in this codebase.
    """

    __slots__ = ("version", "ops", "_steps", "_fns", "_graphs")

    def __init__(self, graph: DFGraph):
        self.version = graph.version
        self.ops: set = set()
        self._steps: Dict[int, List[tuple]] = {}
        self._fns: Dict[int, Callable[..., Any]] = {}
        #: Strong references keyed by id(): versions for staleness checks,
        #: and liveness so a dead graph's id can never alias a new graph.
        self._graphs: Dict[int, tuple] = {}
        self._add_graph(graph)

    def stale(self) -> bool:
        """True when any graph in the hierarchy mutated after scheduling."""
        return any(graph.version != version
                   for graph, version in self._graphs.values())

    def _add_graph(self, graph: DFGraph) -> None:
        self._graphs[id(graph)] = (graph, graph.version)
        self._steps[id(graph)] = self._prepare(graph)
        for node in graph.topo_order():
            self.ops.add(node.op)
            if node.op == "compute":
                self._fns[node.uid] = _resolve_fn(node.params["fn"])
            elif node.op == "reduce":
                self._fns[node.uid] = _resolve_reduce(node.params["op"])
            elif node.op == "foreach" and node.params.get("reduce_op") is not None:
                self._fns[node.uid] = _resolve_reduce(node.params["reduce_op"])
            for region in node.regions:
                self._add_graph(region)

    @staticmethod
    def _prepare(graph: DFGraph) -> List[tuple]:
        """One ``(node, op, input_uids, outputs)`` step per node in topo
        order, so the run loop chases no attributes per firing."""
        return [
            (node, node.op, [v.uid for v in node.inputs], node.outputs)
            for node in graph.topo_order()
        ]

    def steps(self, graph: DFGraph) -> List[tuple]:
        """Prepared steps for ``graph`` (any graph in the hierarchy)."""
        steps = self._steps.get(id(graph))
        if steps is None:
            # A graph outside the scheduled hierarchy (defensive fallback);
            # retaining the graph keeps the id() key unambiguous.
            steps = self._prepare(graph)
            self._graphs[id(graph)] = (graph, graph.version)
            self._steps[id(graph)] = steps
        return steps

    def fn(self, node: DFNode) -> Optional[Callable[..., Any]]:
        """Pre-resolved opcode / reduction callable for ``node`` (or None)."""
        return self._fns.get(node.uid)


#: One schedule per live graph; entries die with their graph, and stale
#: schedules (the graph mutated after scheduling) are rebuilt on demand.
_SCHEDULES: "weakref.WeakKeyDictionary[DFGraph, NodeSchedule]" = (
    weakref.WeakKeyDictionary()
)


def schedule_for(graph: DFGraph) -> NodeSchedule:
    """Return the cached :class:`NodeSchedule` for ``graph``, building it
    (or rebuilding it after a structural mutation anywhere in the graph's
    region hierarchy) if needed."""
    schedule = _SCHEDULES.get(graph)
    if schedule is None or schedule.stale():
        schedule = NodeSchedule(graph)
        _SCHEDULES[graph] = schedule
    return schedule


def zip_streams(*streams: Sequence[Token]) -> Stream:
    """Combine parallel live-value streams into a stream of tuples."""
    if len(streams) == 1:
        return [Data((t.value,)) if isinstance(t, Data) else t for t in streams[0]]
    return prim.elementwise(lambda *vals: tuple(vals), *streams)


def unzip_stream(stream: Sequence[Token], width: int) -> List[Stream]:
    """Split a stream of tuples back into ``width`` parallel streams."""
    outs: List[Stream] = [[] for _ in range(width)]
    for tok in stream:
        if isinstance(tok, Barrier):
            for out in outs:
                out.append(tok)
        else:
            values = tok.value
            if len(values) != width:
                raise PrimitiveError(
                    f"expected {width}-tuples in zipped stream, got {values!r}"
                )
            for i, out in enumerate(outs):
                out.append(Data(values[i]))
    return outs


class Executor:
    """Runs structured dataflow graphs with functional SLTF semantics."""

    def __init__(
        self,
        graph: DFGraph,
        memory: Optional[MemorySystem] = None,
        max_loop_iterations: int = 1_000_000,
        link_stats: bool = True,
        schedule: Optional[NodeSchedule] = None,
    ):
        self.graph = graph
        self.memory = memory if memory is not None else MemorySystem()
        self.max_loop_iterations = max_loop_iterations
        self.profile = ExecutionProfile()
        self.collect_link_stats = link_stats
        self._schedule = schedule if schedule is not None else schedule_for(graph)
        # Handler table resolved once per executor (bound methods), not once
        # per node firing; ops outside the schedule resolve lazily.
        self._handlers: Dict[str, Callable[[DFNode, List[Stream]], List[Stream]]] = {}
        for op in self._schedule.ops:
            handler = getattr(self, f"_op_{op}", None)
            if handler is not None:
                self._handlers[op] = handler

    # -- public API ---------------------------------------------------------

    def run(self, inputs: Optional[Dict[str, Any]] = None) -> Dict[str, Stream]:
        """Execute the graph and return its output streams keyed by name.

        ``inputs`` maps graph-input names to either token streams or nested
        Python lists (which are encoded with :func:`repro.core.sltf.encode`
        using rank 1 for flat lists).
        """
        inputs = inputs or {}
        env: Dict[int, Stream] = {}
        for value in self.graph.inputs:
            if value.name not in inputs:
                raise GraphError(f"missing input stream '{value.name}'")
            env[value.uid] = _as_stream(inputs[value.name])
        outputs = self._run_graph(self.graph, env)
        return {v.name: outputs[v.uid] for v in self.graph.outputs}

    # -- graph / node evaluation ---------------------------------------------

    def _handler(self, op: str) -> Callable[[DFNode, List[Stream]], List[Stream]]:
        handler = self._handlers.get(op)
        if handler is None:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise GraphError(f"no executor handler for op '{op}'")
            self._handlers[op] = handler
        return handler

    def _run_graph(self, graph: DFGraph, env: Dict[int, Stream]) -> Dict[int, Stream]:
        profile = self.profile
        firings = profile.node_firings
        handlers = self._handlers
        collect_links = self.collect_link_stats
        for node, op, in_uids, outputs in self._schedule.steps(graph):
            handler = handlers.get(op)
            if handler is None:
                handler = self._handler(op)
            in_streams = [env[uid] for uid in in_uids]
            firings[op] = firings.get(op, 0) + 1
            out_streams = handler(node, in_streams)
            if len(out_streams) != len(outputs):
                raise GraphError(
                    f"node {node!r} produced {len(out_streams)} streams, "
                    f"expected {len(outputs)}"
                )
            for value, stream in zip(outputs, out_streams):
                env[value.uid] = stream
                if collect_links:
                    profile.record_link(value.name, stream)
        return env

    def _run_subgraph(self, graph: DFGraph, inputs: Sequence[Stream]) -> List[Stream]:
        if len(inputs) != len(graph.inputs):
            raise GraphError(
                f"region '{graph.name}' expects {len(graph.inputs)} inputs, "
                f"got {len(inputs)}"
            )
        # Streams are immutable by convention (every primitive builds fresh
        # lists), so region inputs are bound without a defensive copy.
        env: Dict[int, Stream] = {
            v.uid: s for v, s in zip(graph.inputs, inputs)
        }
        env = self._run_graph(graph, env)
        return [env[v.uid] for v in graph.outputs]

    def _run_node(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        handler = self._handler(node.op)
        self.profile.record_firing(node.op)
        return handler(node, ins)

    # -- element-wise and structural ops --------------------------------------

    def _op_compute(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        fn = self._schedule.fn(node)
        if fn is None:
            fn = _resolve_fn(node.params["fn"])
        return [prim.elementwise(fn, *ins)]

    def _op_const(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.constant_like(ins[0], node.params["value"])]

    def _op_broadcast(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        levels = node.params.get("levels", 1)
        return [prim.broadcast(ins[0], ins[1], levels=levels)]

    def _op_counter(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.counter(ins[0], ins[1], ins[2])]

    def _op_reduce(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        op = self._schedule.fn(node)
        if op is None:
            op = _resolve_reduce(node.params["op"])
        init = node.params.get("init", 0)
        level = node.params.get("level", 1)
        return [prim.reduce_stream(op, init, ins[0], level=level)]

    def _op_flatten(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.flatten_stream(ins[0], levels=node.params.get("levels", 1))]

    def _op_filter(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        pred = ins[-1]
        if len(ins) == 2:
            return [prim.filter_stream(ins[0], pred)]
        # Thread-exit filters touch every live link with the same predicate;
        # one shared predicate scan instead of one per link.
        return prim.filter_streams(ins[:-1], pred)

    def _op_forward_merge(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        width = node.params.get("width", 1)
        a, b = ins[:width], ins[width:]
        if width == 1:
            return [prim.forward_merge(a[0], b[0])]
        # Merge the bundles jointly so per-thread live values stay together.
        merged = prim.forward_merge(zip_streams(*a), zip_streams(*b))
        return unzip_stream(merged, width)

    def _op_fork(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        counts = ins[0]
        # First output: the per-child index (0 .. count-1 for each parent).
        indices: Stream = []
        for tok in counts:
            if isinstance(tok, Barrier):
                indices.append(tok)
            else:
                indices.extend(Data(i) for i in range(tok.value))
        return [indices] + [prim.fork_stream(counts, data) for data in ins[1:]]

    # -- memory ops -----------------------------------------------------------

    def _op_sram_alloc(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        words = node.params.get("buffer_words", 64)
        max_buffers = node.params.get("max_buffers", 4096)
        trigger = ins[0] if ins else [Data(0), Barrier(1)]
        out = prim.map_stream(
            lambda _v: self.memory.sram_alloc(site, words, max_buffers), trigger
        )
        return [out]

    def _op_sram_free(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")

        def do_free(ptr: Any) -> int:
            self.memory.sram_free(site, ptr)
            return 0

        return [prim.map_stream(do_free, ins[0])]

    def _op_sram_read(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        return [prim.map_stream(lambda addr: self.memory.sram_read(site, addr), ins[0])]

    def _op_sram_write(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")

        def do_write(addr: Any, value: Any) -> int:
            self.memory.sram_write(site, addr, value)
            return 0

        return [prim.elementwise(do_write, ins[0], ins[1])]

    def _op_dram_read(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        return [prim.map_stream(self.memory.dram_read, ins[0])]

    def _op_dram_write(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        def do_write(addr: Any, value: Any) -> int:
            self.memory.dram_write(addr, value)
            return 0

        return [prim.elementwise(do_write, ins[0], ins[1])]

    def _op_bulk_load(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        size = node.params["size"]

        def do_load(dram_base: Any, sram_base: Any) -> int:
            self.memory.bulk_load(site, dram_base, sram_base, size)
            return 0

        return [prim.elementwise(do_load, ins[0], ins[1])]

    def _op_bulk_store(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        site = node.params.get("site", "default")
        size = node.params["size"]

        if len(ins) > 2:
            # Dynamic count (bounded by the static tile size): used for the
            # final partial flush of write iterators.
            def do_store_counted(dram_base: Any, sram_base: Any, count: Any) -> int:
                self.memory.bulk_store(site, dram_base, sram_base,
                                       max(0, min(size, count)))
                return 0

            return [prim.elementwise(do_store_counted, ins[0], ins[1], ins[2])]

        def do_store(dram_base: Any, sram_base: Any) -> int:
            self.memory.bulk_store(site, dram_base, sram_base, size)
            return 0

        return [prim.elementwise(do_store, ins[0], ins[1])]

    # -- region ops -------------------------------------------------------------

    def _op_while(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        """Forward-backward loop over parallel live-value streams.

        Semantically this is :func:`repro.core.primitives.forward_backward_loop`
        over the zipped live bundle (paper Figure 4), but executed directly
        on the parallel streams: no per-token tuple zip/unzip per iteration,
        and one shared predicate scan partitions every live link at once.
        Iteration counts recorded in the profile are identical to the
        zipped formulation (one ``record_loop`` per loop turn, including
        the turn that discovers an empty group).
        """
        cond_region, body_region = node.regions
        width = len(ins)
        label = node.params.get("label", f"while#{node.uid}")
        record_loop = self.profile.record_loop
        max_iterations = self.max_loop_iterations

        first = ins[0]
        length = len(first)
        for other in ins[1:]:
            if len(other) != length:
                raise PrimitiveError(
                    "while live streams have different lengths")

        outs: List[Stream] = [[] for _ in range(width)]
        groups: List[List[Token]] = [[] for _ in range(width)]
        for j in range(length):
            tok = first[j]
            if isinstance(tok, Data):
                for i in range(width):
                    t = ins[i][j]
                    if not isinstance(t, Data):
                        raise PrimitiveError(
                            f"while live streams misaligned at {t!r}")
                    groups[i].append(t)
                continue
            for i in range(1, width):
                t = ins[i][j]
                if not isinstance(t, Barrier) or t.level != tok.level:
                    raise PrimitiveError(
                        f"while live streams have mismatched barriers at {t!r}")
            # A barrier terminates the group: iterate its threads until the
            # recirculating set is empty, then emit the exited threads.
            live = [g + [Barrier(1)] for g in groups]
            groups = [[] for _ in range(width)]
            iterations = 0
            while True:
                record_loop(label, 1)
                cond = self._run_subgraph(cond_region, live)[0]
                continuing, exiting = prim.partition_streams(live, cond)
                for i in range(width):
                    outs[i].extend(
                        t for t in exiting[i] if isinstance(t, Data))
                next_live = self._run_subgraph(body_region, continuing)
                recirc = [t for t in next_live[0] if isinstance(t, Data)]
                if not recirc:
                    break
                live = [recirc] + [
                    [t for t in s if isinstance(t, Data)]
                    for s in next_live[1:]
                ]
                for s in live:
                    s.append(Barrier(1))
                iterations += 1
                if iterations > max_iterations:
                    raise PrimitiveError(
                        "forward-backward loop exceeded max_iterations; "
                        "possible livelock in loop body"
                    )
            for i in range(width):
                outs[i].append(Barrier(tok.level))
        if any(groups):
            raise PrimitiveError(
                "forward-backward loop input missing final barrier")
        return outs

    def _op_if(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        cond, live = ins[0], ins[1:]
        then_region, else_region = node.regions
        taken, fallthrough = prim.partition_streams(live, cond)
        then_out = self._run_subgraph(then_region, taken)
        else_out = self._run_subgraph(else_region, fallthrough)
        width = len(node.outputs)
        if width == 0:
            return []
        if width == 1:
            return [prim.forward_merge(then_out[0], else_out[0])]
        merged = prim.forward_merge(zip_streams(*then_out), zip_streams(*else_out))
        return unzip_stream(merged, width)

    def _op_foreach(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        lo, hi, step = ins[0], ins[1], ins[2]
        live = ins[3:]
        body = node.regions[0]
        indices = prim.counter(lo, hi, step)
        body_inputs = [indices] + [prim.broadcast(s, indices, levels=1) for s in live]
        results = self._run_subgraph(body, body_inputs)
        reduce_op = node.params.get("reduce_op")
        if reduce_op is not None:
            op = self._schedule.fn(node)
            if op is None:
                op = _resolve_reduce(reduce_op)
            init = node.params.get("reduce_init", 0)
            return [prim.reduce_stream(op, init, r, level=1) for r in results]
        return [prim.flatten_stream(r, levels=1) for r in results]

    def _op_replicate(self, node: DFNode, ins: List[Stream]) -> List[Stream]:
        # Functionally, a replicate region is a single copy of its body: the
        # factor only affects spatial resource allocation and load balancing,
        # which the performance model handles.  Thread order inside a barrier
        # group is unordered, so running one copy is semantically equivalent.
        body = node.regions[0]
        return self._run_subgraph(body, ins)


def _as_stream(value: Any) -> Stream:
    """Coerce user-provided input (stream or nested list) into a stream."""
    if isinstance(value, list) and value and isinstance(value[0], (Data, Barrier)):
        return list(value)
    if isinstance(value, list) and not value:
        return []
    if isinstance(value, list):
        rank = 1
        probe = value
        while probe and isinstance(probe[0], list):
            rank += 1
            probe = probe[0]
        return encode(value, ndim=rank)
    raise GraphError(
        "graph inputs must be token streams or (nested) lists of values"
    )


def run_graph(
    graph: DFGraph,
    inputs: Optional[Dict[str, Any]] = None,
    memory: Optional[MemorySystem] = None,
) -> Dict[str, Stream]:
    """Convenience wrapper: build an :class:`Executor` and run it once."""
    return Executor(graph, memory=memory).run(inputs)
