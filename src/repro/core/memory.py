"""Functional memory system: DRAM segments and per-site SRAM pools.

The executor and the cycle-level performance model share this component.
DRAM is a flat word-addressed space carved into named segments (the Revet
language's ``DRAM<T>`` symbols); SRAM is organized as *allocation sites*,
each corresponding to one fused allocator in the compiled program
(Section V-B(a)): a site hands out fixed-size buffers identified by small
integer pointers, and reads/writes address ``ptr * buffer_size + offset``
within the site's address space.

All traffic is counted so the performance model can derive DRAM bandwidth
utilization (Table IV's HBM2 columns) and the DRAM-bound throughput limits
used for Table V.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from repro.errors import MachineError


@dataclass
class MemoryStats:
    """Traffic counters accumulated during execution."""

    dram_reads: int = 0
    dram_writes: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    #: Demand (non-bulk) word accesses; these pay per-access DRAM burst and
    #: activation costs in the performance model.
    dram_random_reads: int = 0
    dram_random_writes: int = 0
    bulk_loads: int = 0
    bulk_stores: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class DRAMSegment:
    """A named region of the flat DRAM address space (word-addressed)."""

    name: str
    base: int
    size: int
    element_bytes: int = 4


class AllocationSite:
    """A fused on-chip allocator: a pool of fixed-size SRAM buffers."""

    def __init__(self, name: str, buffer_words: int, max_buffers: int):
        if buffer_words <= 0 or max_buffers <= 0:
            raise MachineError("allocation site needs positive buffer size/count")
        self.name = name
        self.buffer_words = buffer_words
        self.max_buffers = max_buffers
        # FIFO free list, equivalent to popping from list(range(max_buffers))
        # with freed pointers appended at the tail — but without materializing
        # max_buffers entries up front: never-allocated pointers are a counter,
        # freed pointers a deque.  Allocation order is identical.
        self._next_fresh = 0
        self._returned: Deque[int] = deque()
        self.live: set = set()
        self.high_water = 0
        self.storage: Dict[int, int] = {}

    def alloc(self) -> int:
        if self._next_fresh < self.max_buffers:
            ptr = self._next_fresh
            self._next_fresh += 1
        elif self._returned:
            ptr = self._returned.popleft()
        else:
            raise MachineError(
                f"allocation site '{self.name}' exhausted "
                f"({self.max_buffers} buffers of {self.buffer_words} words)"
            )
        self.live.add(ptr)
        self.high_water = max(self.high_water, len(self.live))
        return ptr

    def free(self, ptr: int) -> None:
        if ptr not in self.live:
            raise MachineError(f"double free of pointer {ptr} at site '{self.name}'")
        self.live.discard(ptr)
        self._returned.append(ptr)

    def read(self, addr: int) -> int:
        return self.storage.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.storage[addr] = value

    @property
    def words_in_use(self) -> int:
        return self.high_water * self.buffer_words


class MemorySystem:
    """Shared DRAM + SRAM state for functional execution."""

    def __init__(self, dram_element_bytes: int = 4):
        self._dram: Dict[int, int] = {}
        self._segments: Dict[str, DRAMSegment] = {}
        self._next_base = 0
        self._sites: Dict[str, AllocationSite] = {}
        self._default_element_bytes = dram_element_bytes
        self.stats = MemoryStats()

    # -- DRAM segments -----------------------------------------------------

    def dram_alloc(
        self,
        name: str,
        size: Optional[int] = None,
        data: Optional[Sequence[int]] = None,
        element_bytes: Optional[int] = None,
    ) -> DRAMSegment:
        """Create a named DRAM segment, optionally initialized with data."""
        if name in self._segments:
            raise MachineError(f"DRAM segment '{name}' already exists")
        if data is not None:
            size = len(data) if size is None else size
        if size is None or size < 0:
            raise MachineError("DRAM segment needs a non-negative size")
        seg = DRAMSegment(
            name=name,
            base=self._next_base,
            size=size,
            element_bytes=element_bytes or self._default_element_bytes,
        )
        self._segments[name] = seg
        self._next_base += max(size, 1)
        if data is not None:
            for i, v in enumerate(data):
                self._dram[seg.base + i] = int(v)
        return seg

    def segment(self, name: str) -> DRAMSegment:
        if name not in self._segments:
            raise MachineError(f"unknown DRAM segment '{name}'")
        return self._segments[name]

    def segment_data(self, name: str) -> List[int]:
        """Read back a whole segment (for test assertions)."""
        seg = self.segment(name)
        return [self._dram.get(seg.base + i, 0) for i in range(seg.size)]

    def _element_bytes_at(self, addr: int) -> int:
        for seg in self._segments.values():
            if seg.base <= addr < seg.base + max(seg.size, 1):
                return seg.element_bytes
        return self._default_element_bytes

    def dram_read(self, addr: int) -> int:
        self.stats.dram_reads += 1
        self.stats.dram_random_reads += 1
        self.stats.dram_read_bytes += self._element_bytes_at(int(addr))
        return self._dram.get(int(addr), 0)

    def dram_write(self, addr: int, value: int) -> None:
        self.stats.dram_writes += 1
        self.stats.dram_random_writes += 1
        self.stats.dram_write_bytes += self._element_bytes_at(int(addr))
        self._dram[int(addr)] = int(value)

    def dram_peek(self, addr: int) -> int:
        """Read without counting traffic (for assertions and debugging)."""
        return self._dram.get(int(addr), 0)

    # -- SRAM allocation sites ----------------------------------------------

    def site(self, name: str, buffer_words: int = 64, max_buffers: int = 1024) -> AllocationSite:
        """Get or create an allocation site."""
        if name not in self._sites:
            self._sites[name] = AllocationSite(name, buffer_words, max_buffers)
        return self._sites[name]

    def sites(self) -> Dict[str, AllocationSite]:
        return dict(self._sites)

    def sram_alloc(self, site_name: str, buffer_words: int = 64, max_buffers: int = 1024) -> int:
        self.stats.allocations += 1
        return self.site(site_name, buffer_words, max_buffers).alloc()

    def sram_free(self, site_name: str, ptr: int) -> None:
        self.stats.frees += 1
        self.site(site_name).free(int(ptr))

    def sram_read(self, site_name: str, addr: int) -> int:
        self.stats.sram_reads += 1
        return self.site(site_name).read(int(addr))

    def sram_write(self, site_name: str, addr: int, value: int) -> None:
        self.stats.sram_writes += 1
        self.site(site_name).write(int(addr), int(value))

    # -- batched accessors (columnar executor) -------------------------------
    #
    # Each *_many helper is observably identical to calling its scalar
    # counterpart once per element, including the order of stats updates
    # relative to any mid-batch error: counters incremented per access stay
    # incremented when a later access raises, exactly as in a scalar loop.

    def dram_read_many(self, addrs: Sequence[int]) -> List[int]:
        """Batched :meth:`dram_read`: same per-access traffic accounting."""
        dram = self._dram
        bytes_at = self._element_bytes_at
        total_bytes = 0
        out: List[int] = []
        append = out.append
        for addr in addrs:
            addr = int(addr)
            total_bytes += bytes_at(addr)
            append(dram.get(addr, 0))
        self.stats.dram_reads += len(out)
        self.stats.dram_random_reads += len(out)
        self.stats.dram_read_bytes += total_bytes
        return out

    def dram_write_many(self, addrs: Sequence[int], values: Sequence[int]) -> None:
        """Batched :meth:`dram_write`: same per-access traffic accounting."""
        dram = self._dram
        bytes_at = self._element_bytes_at
        total_bytes = 0
        for addr, value in zip(addrs, values):
            addr = int(addr)
            total_bytes += bytes_at(addr)
            dram[addr] = int(value)
        n = min(len(addrs), len(values))
        self.stats.dram_writes += n
        self.stats.dram_random_writes += n
        self.stats.dram_write_bytes += total_bytes

    def sram_alloc_many(
        self, site_name: str, buffer_words: int, max_buffers: int, count: int
    ) -> List[int]:
        """Allocate ``count`` buffers (batched :meth:`sram_alloc`)."""
        site = self.site(site_name, buffer_words, max_buffers)
        stats = self.stats
        out: List[int] = []
        for _ in range(count):
            stats.allocations += 1
            out.append(site.alloc())
        return out

    def sram_free_many(self, site_name: str, ptrs: Sequence[int]) -> None:
        """Free many buffers (batched :meth:`sram_free`)."""
        site = self.site(site_name)
        stats = self.stats
        for ptr in ptrs:
            stats.frees += 1
            site.free(int(ptr))

    def sram_read_many(self, site_name: str, addrs: Sequence[int]) -> List[int]:
        """Batched :meth:`sram_read`."""
        storage = self.site(site_name).storage
        out = [storage.get(int(addr), 0) for addr in addrs]
        self.stats.sram_reads += len(out)
        return out

    def sram_write_many(
        self, site_name: str, addrs: Sequence[int], values: Sequence[int]
    ) -> None:
        """Batched :meth:`sram_write`."""
        storage = self.site(site_name).storage
        n = 0
        for addr, value in zip(addrs, values):
            storage[int(addr)] = int(value)
            n += 1
        self.stats.sram_writes += n

    def bulk_load_many(
        self,
        site_name: str,
        dram_bases: Sequence[int],
        sram_bases: Sequence[int],
        size: int,
    ) -> None:
        """Batched :meth:`bulk_load` (one tile transfer per base pair)."""
        for d, s in zip(dram_bases, sram_bases):
            self.bulk_load(site_name, d, s, size)

    def bulk_store_many(
        self,
        site_name: str,
        dram_bases: Sequence[int],
        sram_bases: Sequence[int],
        size: int,
    ) -> None:
        """Batched :meth:`bulk_store` (one tile transfer per base pair)."""
        for d, s in zip(dram_bases, sram_bases):
            self.bulk_store(site_name, d, s, size)

    def bulk_store_counted_many(
        self,
        site_name: str,
        dram_bases: Sequence[int],
        sram_bases: Sequence[int],
        sizes: Sequence[int],
    ) -> None:
        """Batched :meth:`bulk_store` with a per-transfer element count."""
        for d, s, n in zip(dram_bases, sram_bases, sizes):
            self.bulk_store(site_name, d, s, n)

    # -- bulk transfers ------------------------------------------------------

    def bulk_load(self, site_name: str, dram_base: int, sram_base: int, size: int) -> None:
        """DRAM -> SRAM tile transfer (an AG-driven burst)."""
        self.stats.bulk_loads += 1
        site = self.site(site_name)
        elem = self._element_bytes_at(int(dram_base))
        self.stats.dram_reads += size
        self.stats.dram_read_bytes += size * elem
        for i in range(size):
            site.write(int(sram_base) + i, self._dram.get(int(dram_base) + i, 0))

    def bulk_store(self, site_name: str, dram_base: int, sram_base: int, size: int) -> None:
        """SRAM -> DRAM tile transfer."""
        self.stats.bulk_stores += 1
        site = self.site(site_name)
        elem = self._element_bytes_at(int(dram_base))
        self.stats.dram_writes += size
        self.stats.dram_write_bytes += size * elem
        for i in range(size):
            self._dram[int(dram_base) + i] = site.read(int(sram_base) + i)

    # -- convenience ---------------------------------------------------------

    def load_bytes(self, name: str, payload: bytes) -> DRAMSegment:
        """Store a byte string as a char segment (one byte per word)."""
        return self.dram_alloc(name, data=list(payload), element_bytes=1)

    def read_bytes(self, name: str, start: int = 0, length: Optional[int] = None) -> bytes:
        seg = self.segment(name)
        length = seg.size - start if length is None else length
        return bytes(
            self._dram.get(seg.base + start + i, 0) & 0xFF for i in range(length)
        )
