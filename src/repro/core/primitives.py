"""Streaming tensor primitives (paper Section III-B).

These are the functional (untimed) semantics of the primitives a Revet
machine provides on SLTF links:

* element-wise operations,
* expansion (broadcast and counters), reduction, and flattening,
* filtering and forward merging (acyclic subgraphs, i.e. ``if``),
* forward-backward merging (cyclic subgraphs, i.e. ``while``).

Each primitive obeys the SLTF composability constraints:

1. every barrier that enters a primitive exits it exactly once, in order;
2. thread data is not reordered with respect to barriers (reordering is only
   allowed between barriers).

The functions here operate on complete token streams (Python lists); the
cycle-level simulator in :mod:`repro.sim` re-implements the same behaviour
with per-cycle bandwidth and buffering.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PrimitiveError
from repro.core.sltf import (
    Barrier,
    Data,
    Stream,
    Token,
    lower_barriers,
)

# ---------------------------------------------------------------------------
# Element-wise operations
# ---------------------------------------------------------------------------


def elementwise(fn: Callable[..., Any], *streams: Sequence[Token]) -> Stream:
    """Apply ``fn`` across the aligned data elements of parallel streams.

    All input streams must carry the same thread structure (same data count
    and identical barrier placement); this is what "parallel tensors carrying
    the live variables of the same threads" means in the paper.

    This is the hottest primitive on the serving path (every ``compute``
    node firing lands here), so the common unary and binary arities take
    single-pass specializations instead of the general token-tuple loop.
    """
    if not streams:
        raise PrimitiveError("elementwise requires at least one input stream")
    if len(streams) == 1:
        # Unary: no alignment to check; barriers pass through unchanged.
        return [Data(fn(t.value)) if isinstance(t, Data) else t
                for t in streams[0]]
    first = streams[0]
    length = len(first)
    for other in streams[1:]:
        if len(other) != length:
            raise PrimitiveError("element-wise inputs have different lengths")
    out: Stream = []
    append = out.append
    if len(streams) == 2:
        for ta, tb in zip(first, streams[1]):
            if isinstance(ta, Data):
                if not isinstance(tb, Data):
                    raise PrimitiveError(
                        f"element-wise inputs misaligned at {[ta, tb]}")
                append(Data(fn(ta.value, tb.value)))
            else:
                if not isinstance(tb, Barrier):
                    raise PrimitiveError(
                        f"element-wise inputs misaligned at {[ta, tb]}")
                if ta.level != tb.level:
                    raise PrimitiveError(
                        "element-wise inputs have mismatched barrier levels: "
                        f"{[ta, tb]}")
                append(ta)
        return out
    for toks in zip(*streams):
        if isinstance(toks[0], Data):
            values = []
            for t in toks:
                if not isinstance(t, Data):
                    raise PrimitiveError(
                        f"element-wise inputs misaligned at {list(toks)}")
                values.append(t.value)
            append(Data(fn(*values)))
        else:
            level = toks[0].level
            for t in toks[1:]:
                if not isinstance(t, Barrier):
                    raise PrimitiveError(
                        f"element-wise inputs misaligned at {list(toks)}")
                if t.level != level:
                    raise PrimitiveError(
                        "element-wise inputs have mismatched barrier levels: "
                        f"{list(toks)}")
            append(toks[0])
    return out


def map_stream(fn: Callable[[Any], Any], stream: Sequence[Token]) -> Stream:
    """Apply a unary function to every data element of a stream."""
    return [Data(fn(t.value)) if isinstance(t, Data) else t for t in stream]


def constant_like(stream: Sequence[Token], value: Any) -> Stream:
    """Produce a stream with the same structure as ``stream`` but constant data."""
    return [Data(value) if isinstance(t, Data) else t for t in stream]


# ---------------------------------------------------------------------------
# Expansion, reduction, and flattening
# ---------------------------------------------------------------------------


def broadcast(outer: Sequence[Token], inner: Sequence[Token], levels: int = 1) -> Stream:
    """Repeat each element of ``outer`` across the lowest dim(s) of ``inner``.

    ``outer`` is a k-D stream and ``inner`` a (k+levels)-D stream; the result
    has the structure of ``inner`` with data drawn from ``outer``.  This is
    the scalar-to-vector broadcast used when a parent thread's live value is
    shared by all its children (paper Sections III-B(b) and III-C).
    """
    if levels < 1:
        raise PrimitiveError("broadcast requires levels >= 1")
    out: Stream = []
    outer_iter = iter(outer)
    current: Optional[Data] = None
    have_current = False

    def advance() -> None:
        nonlocal current, have_current
        current = None
        have_current = False
        for tok in outer_iter:
            if isinstance(tok, Data):
                current = tok
                have_current = True
                return
            # Barriers on the outer link are consumed when the matching
            # higher-level barrier arrives on the inner link; we simply skip
            # them here because the inner stream carries the full structure.
        have_current = False

    advance()
    for tok in inner:
        if isinstance(tok, Data):
            if not have_current:
                raise PrimitiveError("broadcast ran out of outer elements")
            out.append(Data(current.value))
        else:
            out.append(Barrier(tok.level))
            if tok.level >= levels:
                # The group corresponding to the current outer element ended.
                advance()
    return out


def counter(
    min_stream: Sequence[Token],
    max_stream: Sequence[Token],
    step_stream: Sequence[Token],
) -> Stream:
    """Expand k-D (min, max, step) streams into a (k+1)-D iteration stream.

    Every (min, max, step) triple becomes the sequence
    ``min, min+step, ... < max`` terminated by a level-1 barrier; existing
    barriers are raised by one level.
    """
    out: Stream = []
    zipped = elementwise(lambda a, b, c: (a, b, c), min_stream, max_stream, step_stream)
    for tok in zipped:
        if isinstance(tok, Data):
            lo, hi, step = tok.value
            if step == 0:
                raise PrimitiveError("counter step must be non-zero")
            value = lo
            while (step > 0 and value < hi) or (step < 0 and value > hi):
                out.append(Data(value))
                value += step
            # The level-1 barrier is kept explicit (one group per parent
            # thread); canonical compression is a link-level concern.
            out.append(Barrier(1))
        else:
            out.append(Barrier(tok.level + 1))
    return out


def reduce_stream(
    op: Callable[[Any, Any], Any], init: Any, stream: Sequence[Token], level: int = 1
) -> Stream:
    """Reduce the lowest ``level`` dimension(s) of a stream with ``op``.

    Every group terminated by a barrier of exactly ``level`` produces one
    output element (the ``init`` value for empty groups — this is the
    empty-tensor composability requirement from Section III-A).  Barriers of
    higher levels are lowered by ``level``.
    """
    if level < 1:
        raise PrimitiveError("reduce level must be >= 1")
    out: Stream = []
    acc = init
    pending = False
    for tok in stream:
        if isinstance(tok, Data):
            acc = op(acc, tok.value)
            pending = True
        elif tok.level <= level:
            # An explicit barrier at (or below) the reduce level always
            # terminates a group, even an empty one: empty groups must still
            # yield the initial value (Section III-A composability).
            out.append(Data(acc))
            acc = init
            pending = False
        else:
            # A higher barrier implicitly closes a pending non-empty group.
            if pending:
                out.append(Data(acc))
                acc = init
                pending = False
            out.append(Barrier(tok.level - level))
    return out


def flatten_stream(stream: Sequence[Token], levels: int = 1) -> Stream:
    """Remove ``levels`` levels of hierarchy, keeping data untouched."""
    return lower_barriers(stream, by=levels)


def fork_stream(counts: Sequence[Token], payload: Sequence[Token]) -> Stream:
    """Duplicate each thread ``count`` times *without* adding hierarchy.

    ``counts`` and ``payload`` are parallel streams; each payload element is
    repeated ``count`` times in place.  Barriers pass through unmodified.
    This implements the expansion half of a ``fork`` (expansion + flattening).
    """
    out: Stream = []
    for tok in elementwise(lambda n, v: (n, v), counts, payload):
        if isinstance(tok, Data):
            n, value = tok.value
            if n < 0:
                raise PrimitiveError(f"fork count must be >= 0, got {n}")
            out.extend(Data(value) for _ in range(n))
        else:
            out.append(tok)
    return out


# ---------------------------------------------------------------------------
# Acyclic subgraphs: filtering & forward merging
# ---------------------------------------------------------------------------


def filter_stream(data: Sequence[Token], predicate: Sequence[Token]) -> Stream:
    """Keep only the elements whose predicate is truthy; pass barriers through."""
    if len(data) != len(predicate):
        raise PrimitiveError("filter data and predicate have different lengths")
    out: Stream = []
    append = out.append
    for tok, keep in zip(data, predicate):
        if isinstance(tok, Barrier):
            if not isinstance(keep, Barrier) or keep.level != tok.level:
                raise PrimitiveError("filter predicate misaligned with data")
            append(tok)
        else:
            if isinstance(keep, Barrier):
                raise PrimitiveError("filter predicate misaligned with data")
            if keep.value:
                append(tok)
    return out


def partition_stream(
    data: Sequence[Token], predicate: Sequence[Token]
) -> Tuple[Stream, Stream]:
    """Split a stream into (true-branch, false-branch) streams.

    Both outputs keep all barriers, so each branch of an ``if`` sees the same
    control structure (paper Figure 3).
    """
    negated = map_stream(lambda p: not p, predicate)
    return filter_stream(data, predicate), filter_stream(data, negated)


def filter_streams(
    streams: Sequence[Sequence[Token]], predicate: Sequence[Token]
) -> List[Stream]:
    """Filter parallel streams by one predicate with a single predicate scan.

    Equivalent to ``[filter_stream(s, predicate) for s in streams]`` for
    *aligned* inputs (same length, barriers in the same positions): the
    predicate is scanned once for surviving positions, then each stream is
    gathered by index.  Alignment of data positions is a precondition, not
    re-validated per stream — this is the executor's bundle fast path, where
    streams are aligned by construction.
    """
    length = len(predicate)
    positions: List[int] = []
    barrier_positions: List[int] = []
    for j, tok in enumerate(predicate):
        if isinstance(tok, Barrier):
            positions.append(j)
            barrier_positions.append(j)
        elif tok.value:
            positions.append(j)
    outs: List[Stream] = []
    for s in streams:
        if len(s) != length:
            raise PrimitiveError("filter data and predicate have different lengths")
        for j in barrier_positions:
            tok = s[j]
            if not isinstance(tok, Barrier) or tok.level != predicate[j].level:
                raise PrimitiveError("filter predicate misaligned with data")
        outs.append([s[j] for j in positions])
    return outs


def partition_streams(
    streams: Sequence[Sequence[Token]], predicate: Sequence[Token]
) -> Tuple[List[Stream], List[Stream]]:
    """Split parallel aligned streams into (kept, dropped) bundles.

    One predicate scan decides every stream's kept/dropped positions;
    barriers appear in both outputs (each branch of an ``if`` sees the same
    control structure).  Same alignment precondition as
    :func:`filter_streams`.
    """
    length = len(predicate)
    kept_positions: List[int] = []
    dropped_positions: List[int] = []
    barrier_positions: List[int] = []
    for j, tok in enumerate(predicate):
        if isinstance(tok, Barrier):
            kept_positions.append(j)
            dropped_positions.append(j)
            barrier_positions.append(j)
        elif tok.value:
            kept_positions.append(j)
        else:
            dropped_positions.append(j)
    for s in streams:
        if len(s) != length:
            raise PrimitiveError(
                "partition data and predicate have different lengths")
        for j in barrier_positions:
            tok = s[j]
            if not isinstance(tok, Barrier) or tok.level != predicate[j].level:
                raise PrimitiveError("filter predicate misaligned with data")
    kept = [[s[j] for j in kept_positions] for s in streams]
    dropped = [[s[j] for j in dropped_positions] for s in streams]
    return kept, dropped


def forward_merge(a: Sequence[Token], b: Sequence[Token]) -> Stream:
    """Merge two streams at the lowest dimension (the join after an ``if``).

    Data elements from both inputs within one barrier group are interleaved
    (here: ``a``'s elements then ``b``'s); when a barrier is reached on one
    input, that input stalls until an equal barrier arrives on the other,
    and a single barrier is emitted.  Threads therefore never cross barriers.
    """
    out: Stream = []
    ia, ib = 0, 0
    while ia < len(a) or ib < len(b):
        # Drain data from a until its next barrier.
        while ia < len(a) and isinstance(a[ia], Data):
            out.append(a[ia])
            ia += 1
        while ib < len(b) and isinstance(b[ib], Data):
            out.append(b[ib])
            ib += 1
        if ia >= len(a) and ib >= len(b):
            break
        if ia >= len(a) or ib >= len(b):
            raise PrimitiveError("forward merge inputs have mismatched barriers")
        bar_a, bar_b = a[ia], b[ib]
        if bar_a.level != bar_b.level:
            raise PrimitiveError(
                f"forward merge barrier mismatch: {bar_a} vs {bar_b}"
            )
        out.append(Barrier(bar_a.level))
        ia += 1
        ib += 1
    return out


def merge_many(streams: Sequence[Sequence[Token]]) -> Stream:
    """Merge any number of streams with a tree of forward merges."""
    if not streams:
        raise PrimitiveError("merge_many requires at least one stream")
    result = list(streams[0])
    for other in streams[1:]:
        result = forward_merge(result, other)
    return result


# ---------------------------------------------------------------------------
# Cyclic subgraphs: forward-backward merging (while loops)
# ---------------------------------------------------------------------------


def forward_backward_loop(
    stream: Sequence[Token],
    body: Callable[[Stream], Tuple[Stream, Stream]],
    max_iterations: int = 1_000_000,
) -> Stream:
    """Run a natural loop over each barrier group of ``stream``.

    ``body`` receives a 1-D stream of live thread states (terminated by a
    level-1 barrier) and must return ``(recirculate, exit)`` streams, both
    terminated by a level-1 barrier.  The forward-backward merge at the loop
    header admits one barrier group at a time, iterates the threads until the
    loop body is empty (two consecutive level-1 barriers on the backedge),
    and then emits the exited threads followed by the group's barrier.

    This matches the paper's Figure 4 semantics: barriers inside the loop are
    raised by one level and restored on exit, so loops compose with other
    primitives (including nested loops inside ``body``).
    """
    out: Stream = []
    group: List[Data] = []
    for tok in stream:
        if isinstance(tok, Data):
            group.append(tok)
            continue
        # A barrier terminates the current group: iterate it to completion.
        # Data tokens are immutable, so the group is reused as-is.
        live: Stream = group + [Barrier(1)]
        group = []
        exited_all: Stream = []
        iterations = 0
        while True:
            recirc, exited = body(live)
            exited_all.extend(t for t in exited if isinstance(t, Data))
            recirc_data = [t for t in recirc if isinstance(t, Data)]
            if not recirc_data:
                break
            live = recirc_data + [Barrier(1)]
            iterations += 1
            if iterations > max_iterations:
                raise PrimitiveError(
                    "forward-backward loop exceeded max_iterations; "
                    "possible livelock in loop body"
                )
        out.extend(exited_all)
        out.append(Barrier(tok.level))
    if group:
        raise PrimitiveError("forward-backward loop input missing final barrier")
    return out


def while_loop(
    stream: Sequence[Token],
    condition: Callable[[Any], bool],
    step: Callable[[Any], Any],
    max_iterations: int = 1_000_000,
) -> Stream:
    """Convenience wrapper: a while loop over per-thread state values.

    Each thread's state is tested with ``condition``; while true the state is
    advanced with ``step``.  The final states are emitted in completion order
    within each barrier group (threads are unordered inside a group).
    """

    def body(live: Stream) -> Tuple[Stream, Stream]:
        recirc: Stream = []
        exited: Stream = []
        for tok in live:
            if isinstance(tok, Barrier):
                recirc.append(Barrier(1))
                exited.append(Barrier(1))
                break
            state = tok.value
            if condition(state):
                recirc.append(Data(step(state)))
            else:
                exited.append(Data(state))
        return recirc, exited

    return forward_backward_loop(stream, body, max_iterations=max_iterations)


# ---------------------------------------------------------------------------
# foreach: expansion/reduction pair
# ---------------------------------------------------------------------------


def foreach(
    stream: Sequence[Token],
    trip_counts: Callable[[Any], Iterable[Any]],
    body: Callable[[Stream], Stream],
    reduce_op: Optional[Callable[[Any, Any], Any]] = None,
    reduce_init: Any = 0,
) -> Stream:
    """A foreach block: expansion, body, and reduction or flattening.

    ``trip_counts(parent_value)`` yields the child iteration values for one
    parent thread; ``body`` runs element-wise-composable code on the expanded
    (k+1)-D stream.  If ``reduce_op`` is given the children are reduced back
    to one value per parent; otherwise the children are flattened into the
    parent dimension (a ``fork``-like expansion).
    """
    expanded: Stream = []
    for tok in stream:
        if isinstance(tok, Data):
            for child in trip_counts(tok.value):
                expanded.append(Data(child))
            expanded.append(Barrier(1))
        else:
            expanded.append(Barrier(tok.level + 1))
    result = body(expanded)
    if reduce_op is not None:
        return reduce_stream(reduce_op, reduce_init, result, level=1)
    return flatten_stream(result, levels=1)
