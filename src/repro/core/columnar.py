"""Vectorized columnar executor backend.

The token executor (:class:`repro.core.executor.Executor`) pushes Python
``Data``/``Barrier`` objects through the graph one token at a time.  This
module executes the same :class:`~repro.core.executor.NodeSchedule` plan
over *columns*: each SLTF link is represented as

* ``tags`` — one ``uint8`` per token position: ``0`` for a data element,
  ``level`` (1..15) for a barrier, and
* ``values`` — the data elements only, compacted into one numpy array
  (``int64`` when every element is a Python int that fits, ``object``
  otherwise), plus
* ``lo``/``hi`` — exact Python-int bounds on the ``int64`` values, used to
  prove per-opcode overflow safety before running a whole-array op.

Parallel live-value streams of one thread bundle share the *same* ``tags``
array object, so alignment checks are identity comparisons on the happy
path.  Straight-line (non-``while``) regions run as whole-array numpy ops.

``while`` regions have two drain strategies.  The default mirrors the
token executor's per-barrier-group drain loop (condition → boolean-mask
partition → emit exiting rows → body → recirculate) but runs each turn's
condition/body columnar over the group's still-live rows.  When several
groups carry rows and the loop's regions contain only provably
group-independent ops (compute/const/memory traffic/if/while — see
``_WHILE_VECTOR_OPS``), the drain instead runs all groups in *lockstep*:
one condition/body evaluation per global turn over every live row at once.
Lockstep turns are transactional: memory traffic is buffered in a
``_ShadowMemory`` overlay that tracks the owning group of every read and
write, and any cross-group hazard (or any error at all) aborts the attempt
— nothing real was touched — and the drain silently re-runs per-group,
reproducing token behaviour exactly, including partial state on error.
On success the overlay commits and per-node firing counts are compensated
so the profile is indistinguishable from the sequential drain.

Bit-identity contract
---------------------

A columnar run must be indistinguishable from a token run: identical
output streams, identical memory contents and :class:`MemoryStats`
counters, identical profile counts (``node_firings``, ``loop_iterations``,
link histograms), and identical exception types/messages on malformed
input.  Whenever the vectorized path cannot prove it preserves exact
Python semantics (possible int64 overflow, non-int values, misaligned
structures, zero divisors), it falls back per node to the token primitive
— correctness never depends on the fast path firing.

``numpy`` is an optional dependency: when it is missing this module still
imports, :data:`HAVE_NUMPY` is False, and :func:`resolve_executor` maps
``"auto"`` to the token executor.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - import gate, exercised by resolve_executor tests
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

from repro.core import primitives as prim
from repro.core.executor import (
    ExecutionProfile,
    Executor,
    LinkProfile,
    _as_stream,
    _resolve_fn,
    _resolve_reduce,
    zip_streams,
    unzip_stream,
)
from repro.core.graph import DFGraph, DFNode
from repro.core.memory import MemoryStats, MemorySystem
from repro.core.sltf import MAX_BARRIER_LEVEL, Barrier, Data, Stream
from repro.errors import GraphError, PrimitiveError

#: True when numpy imported and the columnar executor is usable.
HAVE_NUMPY = np is not None

#: Valid values for every ``executor=`` switch in the stack.
EXECUTOR_CHOICES = ("auto", "columnar", "token")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def default_executor() -> str:
    """The executor ``"auto"`` resolves to on this interpreter."""
    return "columnar" if HAVE_NUMPY else "token"


def resolve_executor(name: Optional[str]) -> str:
    """Validate an ``executor=`` switch and resolve ``"auto"``/``None``.

    Raises ``ValueError`` for unknown names and ``RuntimeError`` when
    ``"columnar"`` is requested explicitly but numpy is unavailable
    (``"auto"`` degrades to ``"token"`` silently instead).
    """
    if name is None or name == "auto":
        return default_executor()
    if name not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {name!r}; choose one of {EXECUTOR_CHOICES}"
        )
    if name == "columnar" and not HAVE_NUMPY:
        raise RuntimeError(
            "executor='columnar' requires numpy; install numpy or use "
            "executor='auto' to fall back to the token executor"
        )
    return name


def make_executor(graph: DFGraph, *, executor: Optional[str] = None, **kwargs):
    """Build the requested executor (``auto``/``columnar``/``token``)."""
    name = resolve_executor(executor)
    cls = ColumnarExecutor if name == "columnar" else Executor
    return cls(graph, **kwargs)


# ---------------------------------------------------------------------------
# Column representation
# ---------------------------------------------------------------------------


class Column:
    """One SLTF link as (tags, values) arrays.

    ``tags[j] == 0`` marks a data element, ``tags[j] == level`` a barrier.
    ``values`` holds the data elements only, in stream order.  Columns are
    immutable by convention (every handler builds fresh arrays or shares
    inputs); aligned columns of one bundle share the same ``tags`` object.
    ``lo``/``hi`` are valid (not necessarily tight) Python-int bounds for
    ``int64`` values and ``None`` for ``object`` columns.
    """

    __slots__ = ("tags", "values", "lo", "hi")

    def __init__(self, tags, values, lo=None, hi=None):
        self.tags = tags
        self.values = values
        self.lo = lo
        self.hi = hi

    def __len__(self) -> int:
        return len(self.tags)

    @property
    def n_data(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({len(self.values)}d/{len(self.tags)}t)"


def _values_from_list(vals: list) -> Tuple[Any, Optional[int], Optional[int]]:
    """Pack Python values into an array, choosing int64 when exact."""
    for v in vals:
        if type(v) is not int:
            arr = np.empty(len(vals), dtype=object)
            arr[:] = vals
            return arr, None, None
    if not vals:
        return np.empty(0, dtype=np.int64), 0, 0
    lo, hi = min(vals), max(vals)
    if _INT64_MIN <= lo and hi <= _INT64_MAX:
        return np.array(vals, dtype=np.int64), lo, hi
    arr = np.empty(len(vals), dtype=object)
    arr[:] = vals
    return arr, None, None


def _bounds_of(values) -> Tuple[Optional[int], Optional[int]]:
    if values.dtype == object:
        return None, None
    if values.size == 0:
        return 0, 0
    return int(values.min()), int(values.max())


def _values_from_ints(vals: list) -> Tuple[Any, Optional[int], Optional[int]]:
    """Pack values known to be Python ints (memory reads) into an array.

    Same contract as :func:`_values_from_list` minus the per-element type
    scan — every value a :class:`MemorySystem` hands back went through
    ``int()`` on the way in.
    """
    if not vals:
        return np.empty(0, dtype=np.int64), 0, 0
    lo, hi = min(vals), max(vals)
    if _INT64_MIN <= lo and hi <= _INT64_MAX:
        return np.array(vals, dtype=np.int64), lo, hi
    arr = np.empty(len(vals), dtype=object)
    arr[:] = vals
    return arr, None, None


def from_stream(stream: Sequence) -> "Column":
    """Convert a token stream into a :class:`Column`."""
    n = len(stream)
    tags = np.zeros(n, dtype=np.uint8)
    vals: list = []
    append = vals.append
    for j, tok in enumerate(stream):
        if isinstance(tok, Data):
            append(tok.value)
        else:
            tags[j] = tok.level
    values, lo, hi = _values_from_list(vals)
    return Column(tags, values, lo, hi)


def to_stream(col: "Column") -> Stream:
    """Convert a :class:`Column` back into a token stream.

    ``ndarray.tolist()`` yields Python ints for ``int64`` values, so no
    numpy scalar ever leaks into a stream (or, downstream, into JSON).
    """
    out: Stream = []
    append = out.append
    vals = iter(col.values.tolist())
    for t in col.tags.tolist():
        append(Data(next(vals)) if t == 0 else Barrier(t))
    return out


def _align(cols: Sequence["Column"]) -> bool:
    """True when every column shares one structure.

    Canonicalizes equal-content tag arrays onto one shared object so later
    checks on the same bundle are identity-fast.
    """
    t0 = cols[0].tags
    for c in cols[1:]:
        t = c.tags
        if t is t0:
            continue
        if t.shape != t0.shape or not np.array_equal(t, t0):
            return False
        c.tags = t0
    return True


def _truthy(values) -> Any:
    """Boolean mask over data values matching Python truthiness."""
    if values.dtype == object:
        return np.fromiter(
            (bool(v) for v in values.tolist()), dtype=bool, count=len(values)
        )
    return values != 0


def _token_at(col: "Column", j: int):
    """Reconstruct the token at stream position ``j`` (error paths only)."""
    tag = int(col.tags[j])
    if tag:
        return Barrier(tag)
    k = int(np.count_nonzero(col.tags[:j] == 0))
    v = col.values[k]
    return Data(v if col.values.dtype == object else int(v))


# ---------------------------------------------------------------------------
# Shadow memory for the cross-group vectorized while drain
# ---------------------------------------------------------------------------


class _VectorAbort(Exception):
    """Internal: the lockstep while drain cannot preserve token semantics.

    Raised on any cross-group memory conflict (or structural surprise) while
    draining every barrier group of a ``while`` in lockstep.  Never escapes
    :meth:`ColumnarExecutor._try_while_vectorized`: the attempt is discarded
    and the per-group reference drain reruns from untouched real state.
    """


#: ``readers[key]`` sentinel: more than one group has read this location.
_FOREIGN = -1


class _ShadowMemory:
    """Write-buffering overlay that makes the lockstep drain transactional.

    The token executor drains ``while`` barrier groups *sequentially*, so
    group ``g`` observes every memory write groups ``0..g-1`` made.  The
    lockstep drain runs all groups together, which is only equivalent when
    no location is shared across groups.  This overlay proves that as it
    goes: all writes are buffered here (real memory is never touched), every
    access is attributed to its owning group, and any cross-group overlap
    that could change an observed value raises :class:`_VectorAbort`:

    * read of another group's buffered write (stale-value hazard),
    * write to a location some other group has read (ordering hazard),
    * write to a location another group has written (lost-write hazard).

    Traffic counters accumulate into a scratch :class:`MemoryStats` —
    they are pure sums, so lockstep order cannot change the totals.  On
    success :meth:`commit` applies the buffered writes and counter deltas
    to the real memory system; on abort the overlay is simply dropped.
    """

    __slots__ = ("memory", "stats", "writes", "readers", "touched_sites",
                 "current_groups")

    def __init__(self, memory: MemorySystem):
        self.memory = memory
        self.stats = MemoryStats()
        #: ("s", site, addr) | ("d", addr) -> (value, owning group id)
        self.writes: Dict[tuple, tuple] = {}
        #: same keys -> sole reading group id, or _FOREIGN once shared
        self.readers: Dict[tuple, int] = {}
        #: sites touched (insertion-ordered), created for real on commit
        self.touched_sites: Dict[str, bool] = {}
        #: maps local barrier-group index (within the bundle the regions
        #: currently see) to a global group id; maintained per lockstep turn
        self.current_groups: List[int] = []

    def _note_read(self, key: tuple, gid: int) -> None:
        r = self.readers.get(key)
        if r is None:
            self.readers[key] = gid
        elif r != gid:
            self.readers[key] = _FOREIGN

    # -- SRAM ----------------------------------------------------------------

    def sram_read_many(self, site_name, addrs, gids) -> List[int]:
        self.touched_sites[site_name] = True
        site = self.memory._sites.get(site_name)
        storage = site.storage if site is not None else {}
        writes = self.writes
        out: List[int] = []
        for addr, gid in zip(addrs, gids):
            key = ("s", site_name, int(addr))
            w = writes.get(key)
            if w is not None:
                if w[1] != gid:
                    raise _VectorAbort
                out.append(w[0])
            else:
                out.append(storage.get(key[2], 0))
            self._note_read(key, gid)
        self.stats.sram_reads += len(out)
        return out

    def sram_write_many(self, site_name, addrs, values, gids) -> None:
        self.touched_sites[site_name] = True
        writes, readers = self.writes, self.readers
        n = 0
        for addr, value, gid in zip(addrs, values, gids):
            key = ("s", site_name, int(addr))
            r = readers.get(key)
            if r is not None and r != gid:
                raise _VectorAbort
            w = writes.get(key)
            if w is not None and w[1] != gid:
                raise _VectorAbort
            writes[key] = (int(value), gid)
            n += 1
        self.stats.sram_writes += n

    # -- DRAM ----------------------------------------------------------------

    def dram_read_many(self, addrs, gids) -> List[int]:
        mem = self.memory
        dram = mem._dram
        bytes_at = mem._element_bytes_at
        writes = self.writes
        out: List[int] = []
        total_bytes = 0
        for addr, gid in zip(addrs, gids):
            addr = int(addr)
            key = ("d", addr)
            total_bytes += bytes_at(addr)
            w = writes.get(key)
            if w is not None:
                if w[1] != gid:
                    raise _VectorAbort
                out.append(w[0])
            else:
                out.append(dram.get(addr, 0))
            self._note_read(key, gid)
        self.stats.dram_reads += len(out)
        self.stats.dram_random_reads += len(out)
        self.stats.dram_read_bytes += total_bytes
        return out

    def dram_write_many(self, addrs, values, gids) -> None:
        bytes_at = self.memory._element_bytes_at
        writes, readers = self.writes, self.readers
        total_bytes = 0
        n = 0
        for addr, value, gid in zip(addrs, values, gids):
            addr = int(addr)
            key = ("d", addr)
            total_bytes += bytes_at(addr)
            r = readers.get(key)
            if r is not None and r != gid:
                raise _VectorAbort
            w = writes.get(key)
            if w is not None and w[1] != gid:
                raise _VectorAbort
            writes[key] = (int(value), gid)
            n += 1
        self.stats.dram_writes += n
        self.stats.dram_random_writes += n
        self.stats.dram_write_bytes += total_bytes

    # -- tile transfers -------------------------------------------------------

    def bulk_load_many(self, site_name, dram_bases, sram_bases, size, gids):
        self.touched_sites[site_name] = True
        mem = self.memory
        dram = mem._dram
        writes, readers = self.writes, self.readers
        stats = self.stats
        for db, sb, gid in zip(dram_bases, sram_bases, gids):
            db, sb = int(db), int(sb)
            stats.bulk_loads += 1
            stats.dram_reads += size
            stats.dram_read_bytes += size * mem._element_bytes_at(db)
            for i in range(size):
                dkey = ("d", db + i)
                w = writes.get(dkey)
                if w is not None:
                    if w[1] != gid:
                        raise _VectorAbort
                    v = w[0]
                else:
                    v = dram.get(db + i, 0)
                self._note_read(dkey, gid)
                skey = ("s", site_name, sb + i)
                r = readers.get(skey)
                if r is not None and r != gid:
                    raise _VectorAbort
                sw = writes.get(skey)
                if sw is not None and sw[1] != gid:
                    raise _VectorAbort
                writes[skey] = (v, gid)

    def bulk_store_many(self, site_name, dram_bases, sram_bases, size, gids):
        for db, sb, gid in zip(dram_bases, sram_bases, gids):
            self._bulk_store_one(site_name, int(db), int(sb), size, gid)

    def bulk_store_counted_many(
        self, site_name, dram_bases, sram_bases, sizes, gids
    ):
        for db, sb, n, gid in zip(dram_bases, sram_bases, sizes, gids):
            self._bulk_store_one(site_name, int(db), int(sb), n, gid)

    def _bulk_store_one(self, site_name, db, sb, size, gid) -> None:
        self.touched_sites[site_name] = True
        mem = self.memory
        site = mem._sites.get(site_name)
        storage = site.storage if site is not None else {}
        writes, readers = self.writes, self.readers
        stats = self.stats
        stats.bulk_stores += 1
        stats.dram_writes += size
        stats.dram_write_bytes += size * mem._element_bytes_at(db)
        for i in range(size):
            skey = ("s", site_name, sb + i)
            w = writes.get(skey)
            if w is not None:
                if w[1] != gid:
                    raise _VectorAbort
                v = w[0]
            else:
                v = storage.get(sb + i, 0)
            self._note_read(skey, gid)
            dkey = ("d", db + i)
            r = readers.get(dkey)
            if r is not None and r != gid:
                raise _VectorAbort
            dw = writes.get(dkey)
            if dw is not None and dw[1] != gid:
                raise _VectorAbort
            writes[dkey] = (v, gid)

    # -- outcome --------------------------------------------------------------

    def commit(self) -> None:
        """Apply buffered writes and counter deltas to the real memory.

        Only called after the whole drain succeeded; insertion order of
        ``writes``/``touched_sites`` reproduces first-touch order, so the
        resulting memory state (including which sites exist) is identical
        to the sequential per-group drain.
        """
        mem = self.memory
        for name in self.touched_sites:
            mem.site(name)
        dram = mem._dram
        sites = mem._sites
        for key, (value, _gid) in self.writes.items():
            if key[0] == "d":
                dram[key[1]] = value
            else:
                sites[key[1]].storage[key[2]] = value
        stats = mem.stats
        for name, add in vars(self.stats).items():
            if add:
                setattr(stats, name, getattr(stats, name) + add)


def _group_tags(rowcounts) -> Any:
    """Tags array for ``rowcounts[i]`` data rows + one level-1 barrier each."""
    total = int(rowcounts.sum()) + len(rowcounts)
    tags = np.zeros(total, np.uint8)
    if len(rowcounts):
        tags[np.cumsum(rowcounts + 1) - 1] = 1
    return tags


def _group_data_counts(tags) -> Any:
    """Data rows per barrier group (rows after the last barrier excluded)."""
    bpos = np.nonzero(tags)[0]
    if not bpos.size:
        return np.zeros(0, np.int64)
    return _counts_at((tags == 0).cumsum(), bpos)


def _counts_at(dcum, bpos) -> Any:
    """Per-group data counts from a data-cumsum and barrier positions."""
    d = dcum[bpos]
    counts = d.copy()
    counts[1:] -= d[:-1]
    return counts


# ---------------------------------------------------------------------------
# Vectorized compute opcodes with exact-overflow bounds checks
# ---------------------------------------------------------------------------


def _fits(lo: int, hi: int) -> bool:
    return _INT64_MIN <= lo and hi <= _INT64_MAX


def _bit_bounds(*extremes: int) -> Tuple[int, int]:
    """Bounds for a two's-complement bitwise result over bounded inputs."""
    k = min(max(abs(v).bit_length() for v in extremes), 63)
    if all(v >= 0 for v in extremes):
        return 0, (1 << k) - 1
    return -(1 << k), (1 << k) - 1


def _vec_add(cols):
    a, b = cols
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if not _fits(lo, hi):
        return None
    return a.values + b.values, lo, hi


def _vec_sub(cols):
    a, b = cols
    lo, hi = a.lo - b.hi, a.hi - b.lo
    if not _fits(lo, hi):
        return None
    return a.values - b.values, lo, hi


def _vec_mul(cols):
    a, b = cols
    corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    lo, hi = min(corners), max(corners)
    if not _fits(lo, hi):
        return None
    return a.values * b.values, lo, hi


def _vec_div(cols):
    a, b = cols
    if (b.lo <= 0 <= b.hi) and bool((b.values == 0).any()):
        return None  # exact ZeroDivisionError comes from the fallback
    m = max(abs(a.lo), abs(a.hi))
    if m > _INT64_MAX:
        return None
    return np.floor_divide(a.values, b.values), -m, m


def _vec_rem(cols):
    a, b = cols
    if (b.lo <= 0 <= b.hi) and bool((b.values == 0).any()):
        return None
    m = max(abs(b.lo), abs(b.hi))
    if m > _INT64_MAX:
        return None
    return np.remainder(a.values, b.values), -m, m


def _vec_bit(npop):
    def impl(cols):
        a, b = cols
        lo, hi = _bit_bounds(a.lo, a.hi, b.lo, b.hi)
        return npop(a.values, b.values), lo, hi

    return impl


def _vec_shl(cols):
    a, b = cols
    if b.lo < 0 or b.hi > 63:
        return None
    corners = (a.lo << b.lo, a.lo << b.hi, a.hi << b.lo, a.hi << b.hi)
    lo, hi = min(corners), max(corners)
    if not _fits(lo, hi):
        return None
    return np.left_shift(a.values, b.values), lo, hi


def _vec_shr(cols):
    a, b = cols
    if b.lo < 0 or b.hi > 63:
        return None
    v = a.values
    if a.lo < 0:
        # Logical shift: negative values shift as 32-bit patterns.
        v = np.where(v < 0, v & 0xFFFFFFFF, v)
        lo, hi = 0, max(a.hi, 0xFFFFFFFF)
    else:
        lo, hi = a.lo >> b.hi, a.hi >> b.lo
    return np.right_shift(v, b.values), lo, hi


def _vec_ashr(cols):
    a, b = cols
    if b.lo < 0 or b.hi > 63:
        return None
    corners = (a.lo >> b.lo, a.lo >> b.hi, a.hi >> b.lo, a.hi >> b.hi)
    return np.right_shift(a.values, b.values), min(corners), max(corners)


def _vec_cmp(npop):
    def impl(cols):
        a, b = cols
        return npop(a.values, b.values).astype(np.int64), 0, 1

    return impl


def _vec_min(cols):
    a, b = cols
    return np.minimum(a.values, b.values), min(a.lo, b.lo), min(a.hi, b.hi)


def _vec_max(cols):
    a, b = cols
    return np.maximum(a.values, b.values), max(a.lo, b.lo), max(a.hi, b.hi)


def _vec_not(cols):
    (a,) = cols
    return (a.values == 0).astype(np.int64), 0, 1


def _vec_neg(cols):
    (a,) = cols
    lo, hi = -a.hi, -a.lo
    if not _fits(lo, hi):
        return None
    return -a.values, lo, hi


def _vec_copy(cols):
    (a,) = cols
    return a.values, a.lo, a.hi


def _vec_select(cols):
    c, a, b = cols
    return (
        np.where(c.values != 0, a.values, b.values),
        min(a.lo, b.lo),
        max(a.hi, b.hi),
    )


def _vec_land(cols):
    a, b = cols
    return ((a.values != 0) & (b.values != 0)).astype(np.int64), 0, 1


def _vec_lor(cols):
    a, b = cols
    return ((a.values != 0) | (b.values != 0)).astype(np.int64), 0, 1


_VEC_OPS: Dict[str, Callable] = {}
if HAVE_NUMPY:
    _VEC_OPS.update(
        {
            "add": _vec_add,
            "sub": _vec_sub,
            "mul": _vec_mul,
            "div": _vec_div,
            "rem": _vec_rem,
            "and": _vec_bit(np.bitwise_and),
            "or": _vec_bit(np.bitwise_or),
            "xor": _vec_bit(np.bitwise_xor),
            "shl": _vec_shl,
            "shr": _vec_shr,
            "ashr": _vec_ashr,
            "eq": _vec_cmp(np.equal),
            "ne": _vec_cmp(np.not_equal),
            "lt": _vec_cmp(np.less),
            "le": _vec_cmp(np.less_equal),
            "gt": _vec_cmp(np.greater),
            "ge": _vec_cmp(np.greater_equal),
            "min": _vec_min,
            "max": _vec_max,
            "not": _vec_not,
            "neg": _vec_neg,
            "copy": _vec_copy,
            "select": _vec_select,
            "land": _vec_land,
            "lor": _vec_lor,
        }
    )

#: Reductions with a matching ufunc (``void`` is handled separately).
_REDUCE_UFUNCS: Dict[str, Any] = {}
if HAVE_NUMPY:
    _REDUCE_UFUNCS.update(
        {
            "add": np.add,
            "mul": np.multiply,
            "min": np.minimum,
            "max": np.maximum,
            "and": np.bitwise_and,
            "or": np.bitwise_or,
        }
    )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ColumnarExecutor(Executor):
    """Drop-in vectorized replacement for :class:`Executor`.

    Same constructor, same ``run()`` signature, same profile and memory
    side effects — only the internal stream representation differs (see
    the module docstring for the bit-identity contract).
    """

    def __init__(
        self,
        graph: DFGraph,
        memory: Optional[MemorySystem] = None,
        max_loop_iterations: int = 1_000_000,
        link_stats: bool = True,
        schedule=None,
    ):
        if np is None:
            raise RuntimeError(
                "ColumnarExecutor requires numpy; use the token Executor"
            )
        super().__init__(
            graph,
            memory=memory,
            max_loop_iterations=max_loop_iterations,
            link_stats=link_stats,
            schedule=schedule,
        )
        #: Active :class:`_ShadowMemory` while attempting a lockstep while
        #: drain; every memory handler must route through it (or abort).
        self._shadow: Optional[_ShadowMemory] = None
        self._while_gate_cache: Dict[int, bool] = {}
        self._while_static_cache: Dict[int, Dict[str, int]] = {}
        #: id(tags) -> (tags, barrier count): loop turns reuse one shared
        #: tags object across every column of the bundle, so link stats
        #: can skip recounting.  Entries hold a strong reference, so a
        #: cached id can never alias a different (dead) array.
        self._tag_counts: Dict[int, tuple] = {}
        #: node uid -> cached np.full array for `const` nodes (loop bodies
        #: rebuild the same constant column every turn); columns are
        #: immutable by convention, so handing out slice views is safe.
        self._const_cache: Dict[int, Any] = {}
        #: id(graph) -> (graph, steps with pre-resolved handlers); graphs
        #: are kept alive by the tuple so ids cannot alias.
        self._bound_steps: Dict[int, tuple] = {}

    # -- public API ---------------------------------------------------------

    def run(self, inputs: Optional[Dict[str, Any]] = None) -> Dict[str, Stream]:
        """Execute the graph; same contract as :meth:`Executor.run`."""
        inputs = inputs or {}
        env: Dict[int, Column] = {}
        for value in self.graph.inputs:
            if value.name not in inputs:
                raise GraphError(f"missing input stream '{value.name}'")
            env[value.uid] = from_stream(_as_stream(inputs[value.name]))
        outputs = self._run_graph(self.graph, env)
        return {v.name: to_stream(outputs[v.uid]) for v in self.graph.outputs}

    # -- graph walk (column-aware link stats) --------------------------------

    def _run_graph(self, graph: DFGraph, env: Dict[int, Any]) -> Dict[int, Any]:
        profile = self.profile
        firings = profile.node_firings
        handlers = self._handlers
        collect_links = self.collect_link_stats
        link_stats = profile.link_stats
        tag_counts = self._tag_counts
        if len(tag_counts) > 4096:
            tag_counts.clear()
        bound = self._bound_steps.get(id(graph))
        if bound is None or bound[0] is not graph:
            bound = (graph, [
                (handlers.get(op) or self._handler(op), node, op, in_uids,
                 outputs)
                for node, op, in_uids, outputs in self._schedule.steps(graph)
            ])
            self._bound_steps[id(graph)] = bound
        for handler, node, op, in_uids, outputs in bound[1]:
            in_cols = [env[uid] for uid in in_uids]
            firings[op] = firings.get(op, 0) + 1
            out_cols = handler(node, in_cols)
            if len(out_cols) != len(outputs):
                raise GraphError(
                    f"node {node!r} produced {len(out_cols)} streams, "
                    f"expected {len(outputs)}"
                )
            for value, col in zip(outputs, out_cols):
                env[value.uid] = col
                if collect_links:
                    tags = col.tags
                    hit = tag_counts.get(id(tags))
                    if hit is not None and hit[0] is tags:
                        barriers = hit[1]
                    else:
                        barriers = int(np.count_nonzero(tags))
                        tag_counts[id(tags)] = (tags, barriers)
                    name = value.name
                    lp = link_stats.get(name)
                    if lp is None:
                        lp = link_stats[name] = LinkProfile()
                    lp.barriers += barriers
                    lp.elements += len(tags) - barriers
        return env

    # -- exact token fallback for leaf nodes ---------------------------------

    def _fallback_node(self, node: DFNode, ins: List[Column]) -> List[Column]:
        """Run one leaf node through the token handler (exact semantics)."""
        streams = [to_stream(c) for c in ins]
        handler = getattr(Executor, f"_op_{node.op}")
        return [from_stream(s) for s in handler(self, node, streams)]

    # -- element-wise and structural ops --------------------------------------

    def _op_compute(self, node: DFNode, ins: List[Column]) -> List[Column]:
        name = node.params["fn"]
        impl = _VEC_OPS.get(name) if isinstance(name, str) else None
        vectorizable = impl is not None and _align(ins)
        if vectorizable:
            for c in ins:
                if c.values.dtype == object:
                    vectorizable = False
                    break
        if vectorizable:
            res = impl(ins)
            if res is not None:
                values, lo, hi = res
                return [Column(ins[0].tags, values, lo, hi)]
        if _align(ins):
            # Exact per-element fallback with the Python opcode.
            fn = self._schedule.fn(node)
            if fn is None:
                fn = _resolve_fn(name)
            lists = [c.values.tolist() for c in ins]
            if len(lists) == 1:
                vals = [fn(v) for v in lists[0]]
            else:
                vals = [fn(*t) for t in zip(*lists)]
            values, lo, hi = _values_from_list(vals)
            return [Column(ins[0].tags, values, lo, hi)]
        return self._fallback_node(node, ins)

    def _op_const(self, node: DFNode, ins: List[Column]) -> List[Column]:
        value = node.params["value"]
        s = ins[0]
        n = s.n_data
        if type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
            arr = self._const_cache.get(node.uid)
            if arr is None or len(arr) < n:
                arr = np.full(max(n, 64), value, dtype=np.int64)
                self._const_cache[node.uid] = arr
            return [Column(s.tags, arr[:n], value, value)]
        arr = np.empty(n, dtype=object)
        arr[:] = [value] * n
        return [Column(s.tags, arr, None, None)]

    def _op_broadcast(self, node: DFNode, ins: List[Column]) -> List[Column]:
        levels = node.params.get("levels", 1)
        return [self._broadcast_column(ins[0], ins[1], levels)]

    def _broadcast_column(self, outer: Column, inner: Column, levels: int) -> Column:
        if levels < 1:
            raise PrimitiveError("broadcast requires levels >= 1")
        tags = inner.tags
        adv = (tags >= levels).astype(np.int64)
        idx = np.cumsum(adv) - adv
        didx = idx[tags == 0]
        if didx.size and int(didx.max()) >= outer.n_data:
            raise PrimitiveError("broadcast ran out of outer elements")
        return Column(tags, outer.values[didx], outer.lo, outer.hi)

    def _op_counter(self, node: DFNode, ins: List[Column]) -> List[Column]:
        return [self._counter_columns(ins[0], ins[1], ins[2])]

    def _counter_columns(self, lo_c: Column, hi_c: Column, step_c: Column) -> Column:
        def fallback() -> Column:
            return from_stream(
                prim.counter(to_stream(lo_c), to_stream(hi_c), to_stream(step_c))
            )

        cols = [lo_c, hi_c, step_c]
        if not _align(cols) or any(c.values.dtype == object for c in cols):
            return fallback()
        sv = step_c.values
        if bool((sv == 0).any()):
            return fallback()
        # Span arithmetic must stay exact in int64.
        if not (
            _fits(lo_c.lo - hi_c.hi, lo_c.hi - hi_c.lo)
            and _fits(hi_c.lo - lo_c.hi, hi_c.hi - lo_c.lo)
        ):
            return fallback()
        tags = lo_c.tags
        bvals = tags[tags > 0]
        if bvals.size and int(bvals.max()) >= MAX_BARRIER_LEVEL:
            return fallback()  # raised barrier would exceed the encoding
        lov, hiv = lo_c.values, hi_c.values
        n = np.where(sv > 0, -((lov - hiv) // sv), -((hiv - lov) // (-sv)))
        n = np.maximum(n, 0)
        total_data = int(n.sum())
        data_mask = tags == 0
        reps = np.ones(len(tags), dtype=np.int64)
        reps[data_mask] = n + 1
        total = int(reps.sum())
        out_tags = np.zeros(total, dtype=np.uint8)
        if len(tags):
            ends = np.cumsum(reps) - 1
            out_tags[ends[data_mask]] = 1
            bmask = ~data_mask
            out_tags[ends[bmask]] = tags[bmask] + 1
        offsets = np.cumsum(n) - n
        values = np.repeat(lov, n) + np.repeat(sv, n) * (
            np.arange(total_data, dtype=np.int64) - np.repeat(offsets, n)
        )
        return Column(
            out_tags, values, min(lo_c.lo, hi_c.lo), max(lo_c.hi, hi_c.hi)
        )

    def _op_reduce(self, node: DFNode, ins: List[Column]) -> List[Column]:
        op = node.params["op"]
        init = node.params.get("init", 0)
        level = node.params.get("level", 1)
        return [self._reduce_column(node, ins[0], op, init, level)]

    def _reduce_column(
        self, node: DFNode, col: Column, op_name: Any, init: Any, level: int
    ) -> Column:
        if level < 1:
            raise PrimitiveError("reduce level must be >= 1")

        def fallback() -> Column:
            op = self._schedule.fn(node)
            if op is None:
                op = _resolve_reduce(op_name)
            return from_stream(
                prim.reduce_stream(op, init, to_stream(col), level=level)
            )

        named = isinstance(op_name, str)
        if not named or not (op_name in _REDUCE_UFUNCS or op_name == "void"):
            return fallback()
        if col.values.dtype == object or type(init) is not int:
            return fallback()
        if not _fits(init, init):
            return fallback()

        tags = col.tags
        values = col.values
        bpos = np.nonzero(tags)[0]
        if not bpos.size:
            return Column(np.zeros(0, np.uint8), np.empty(0, np.int64), 0, 0)
        levels_arr = tags[bpos].astype(np.int64)
        dcum = (tags == 0).cumsum()
        d = dcum[bpos]
        prev_d = np.concatenate([np.zeros(1, np.int64), d[:-1]])
        low = levels_arr <= level
        high = ~low
        emit = low | (d > prev_d)
        starts = prev_d[emit]
        ends_seg = d[emit]
        n_emit = int(emit.sum())

        # Overflow-safety per reduction op.
        max_len = int((ends_seg - starts).max()) if n_emit else 0
        m = max(abs(col.lo), abs(col.hi))
        iv = abs(init)
        if op_name == "add":
            cap = max_len * m + iv
            if cap > _INT64_MAX:
                return fallback()
            lo_r, hi_r = -cap, cap
        elif op_name == "mul":
            bits = max_len * max(m.bit_length(), 1) + iv.bit_length()
            if bits > 62:
                return fallback()
            cap = 1 << bits
            lo_r, hi_r = -cap, cap
        elif op_name in ("min", "max"):
            lo_r = min(col.lo, init)
            hi_r = max(col.hi, init)
        elif op_name in ("and", "or"):
            lo_r, hi_r = _bit_bounds(col.lo, col.hi, init)
        else:  # void
            lo_r, hi_r = min(0, init), max(0, init)

        if n_emit == 0:
            red = np.empty(0, np.int64)
        elif op_name == "void":
            red = np.where(starts == ends_seg, init, 0).astype(np.int64)
        else:
            ufunc = _REDUCE_UFUNCS[op_name]
            tsize = int(ends_seg[-1])
            empty = starts == ends_seg
            if tsize == 0:
                red = np.full(n_emit, init, dtype=np.int64)
            else:
                s_idx = np.minimum(starts, tsize - 1)
                red = ufunc.reduceat(values[:tsize], s_idx)
                red = ufunc(red, np.int64(init))
                red[empty] = init

        reps = emit.astype(np.int64) + high.astype(np.int64)
        total = int(reps.sum())
        out_tags = np.zeros(total, np.uint8)
        pos_end = np.cumsum(reps)
        out_tags[pos_end[high] - 1] = (levels_arr[high] - level).astype(np.uint8)
        return Column(out_tags, red, lo_r, hi_r)

    def _op_flatten(self, node: DFNode, ins: List[Column]) -> List[Column]:
        return [self._flatten_column(ins[0], node.params.get("levels", 1))]

    @staticmethod
    def _flatten_column(col: Column, levels: int) -> Column:
        tags = col.tags
        keep = (tags == 0) | (tags > levels)
        new_tags = tags[keep]
        new_tags = np.where(new_tags > 0, new_tags - levels, 0).astype(np.uint8)
        return Column(new_tags, col.values, col.lo, col.hi)

    def _op_filter(self, node: DFNode, ins: List[Column]) -> List[Column]:
        pred = ins[-1]
        data_cols = ins[:-1]
        if not _align(ins):
            # Token path reproduces exact errors (and exact quirks) for
            # malformed bundles.
            if len(ins) == 2:
                return [
                    from_stream(
                        prim.filter_stream(to_stream(ins[0]), to_stream(pred))
                    )
                ]
            outs = prim.filter_streams(
                [to_stream(c) for c in data_cols], to_stream(pred)
            )
            return [from_stream(s) for s in outs]
        keep_data = _truthy(pred.values)
        tags = pred.tags
        data_mask = tags == 0
        full = ~data_mask
        full[data_mask] = keep_data
        new_tags = tags[full]
        return [
            Column(new_tags, c.values[keep_data], c.lo, c.hi) for c in data_cols
        ]

    def _partition_bundle(
        self, cols: Sequence[Column], pred: Column
    ) -> Tuple[List[Column], List[Column]]:
        """Boolean-mask split of an aligned bundle (``prim.partition_streams``)."""
        bundle = [pred] + list(cols)
        if not _align(bundle):
            streams = [to_stream(c) for c in cols]
            kept, dropped = prim.partition_streams(streams, to_stream(pred))
            return (
                [from_stream(s) for s in kept],
                [from_stream(s) for s in dropped],
            )
        keep_data = _truthy(pred.values)
        tags = pred.tags
        nk = int(np.count_nonzero(keep_data))
        # All-or-nothing turns dominate while drains (most turns no thread
        # exits; many `if` partitions are one-sided), so skip the fancy
        # indexing: the full side shares the input columns, the empty side
        # is barriers-only with an empty same-dtype values view.
        if nk == len(keep_data):
            bar_tags = tags[tags != 0]
            empty = [Column(bar_tags, c.values[:0], c.lo, c.hi) for c in cols]
            return list(cols), empty
        if nk == 0:
            bar_tags = tags[tags != 0]
            empty = [Column(bar_tags, c.values[:0], c.lo, c.hi) for c in cols]
            return empty, list(cols)
        data_mask = tags == 0
        full_keep = ~data_mask
        full_keep[data_mask] = keep_data
        kept_tags = tags[full_keep]
        full_drop = ~data_mask
        drop_data = ~keep_data
        full_drop[data_mask] = drop_data
        dropped_tags = tags[full_drop]
        kept = [Column(kept_tags, c.values[keep_data], c.lo, c.hi) for c in cols]
        dropped = [
            Column(dropped_tags, c.values[drop_data], c.lo, c.hi) for c in cols
        ]
        return kept, dropped

    # -- forward merge ---------------------------------------------------------

    def _op_forward_merge(self, node: DFNode, ins: List[Column]) -> List[Column]:
        width = node.params.get("width", 1)
        return self._merge_columns(ins[:width], ins[width:])

    def _merge_columns(
        self, a_cols: Sequence[Column], b_cols: Sequence[Column]
    ) -> List[Column]:
        width = len(a_cols)
        if not _align(a_cols) or not _align(b_cols):
            # Token path: bundle-zip, merge, unzip — exact error behaviour.
            a_s = [to_stream(c) for c in a_cols]
            b_s = [to_stream(c) for c in b_cols]
            if width == 1:
                return [from_stream(prim.forward_merge(a_s[0], b_s[0]))]
            merged = prim.forward_merge(zip_streams(*a_s), zip_streams(*b_s))
            return [from_stream(s) for s in unzip_stream(merged, width)]
        ta, tb = a_cols[0].tags, b_cols[0].tags
        a_b = np.nonzero(ta)[0]
        b_b = np.nonzero(tb)[0]
        la = ta[a_b]
        lb = tb[b_b]
        if a_b.size != b_b.size:
            raise PrimitiveError("forward merge inputs have mismatched barriers")
        neq = np.nonzero(la != lb)[0]
        if neq.size:
            j = int(neq[0])
            raise PrimitiveError(
                f"forward merge barrier mismatch: "
                f"{Barrier(int(la[j]))} vs {Barrier(int(lb[j]))}"
            )
        na = len(ta) - a_b.size
        nb = len(tb) - b_b.size
        # One-sided merges are the norm inside while drains (an `if` whose
        # other branch got no rows this turn): the empty side contributes
        # nothing to any group, so the result *is* the populated side.
        if nb == 0:
            return [Column(ta, a.values, a.lo, a.hi) for a in a_cols]
        if na == 0:
            return [Column(tb, b.values, b.lo, b.hi) for b in b_cols]
        G = int(a_b.size)
        a_at = (ta == 0).cumsum()[a_b]
        b_at = (tb == 0).cumsum()[b_b]
        # Per-group data counts, including the trailing (barrier-less) group
        # (hand-rolled diff-with-endpoints: np.diff's wrapper is measurable
        # at this call rate).
        ac = np.empty(G + 1, np.int64)
        ac[:G] = a_at
        ac[G] = na
        ac[1:] -= a_at
        bc = np.empty(G + 1, np.int64)
        bc[:G] = b_at
        bc[G] = nb
        bc[1:] -= b_at
        a_incl = ac.cumsum()
        b_incl = bc.cumsum()
        b_excl = b_incl - bc  # b-data before each group
        # Compacted output index per input data element.
        idx_a = np.arange(na, dtype=np.int64) + np.repeat(b_excl, ac)
        idx_b = np.arange(nb, dtype=np.int64) + np.repeat(a_incl, bc)
        sizes = ac + bc
        sizes[:G] += 1
        out_len = int(sizes.sum())
        out_tags = np.zeros(out_len, np.uint8)
        if G:
            bar_pos = sizes.cumsum()[:G] - 1
            out_tags[bar_pos] = la
        outs: List[Column] = []
        for a, b in zip(a_cols, b_cols):
            obj = a.values.dtype == object or b.values.dtype == object
            if obj:
                values = np.empty(na + nb, dtype=object)
                values[idx_a] = a.values.tolist()
                values[idx_b] = b.values.tolist()
                lo = hi = None
            else:
                values = np.empty(na + nb, dtype=np.int64)
                values[idx_a] = a.values
                values[idx_b] = b.values
                lo, hi = min(a.lo, b.lo), max(a.hi, b.hi)
            outs.append(Column(out_tags, values, lo, hi))
        return outs

    def _op_fork(self, node: DFNode, ins: List[Column]) -> List[Column]:
        counts = ins[0]
        negative = counts.values.dtype != object and bool(
            (counts.values < 0).any()
        )
        if (
            not _align(ins)
            or counts.values.dtype == object
            or (negative and len(ins) > 1)
        ):
            return self._fallback_node(node, ins)
        n = np.maximum(counts.values, 0)  # range(-k) is empty in the token path
        total_data = int(n.sum())
        offsets = np.cumsum(n) - n
        idx_vals = np.arange(total_data, dtype=np.int64) - np.repeat(offsets, n)
        tags = counts.tags
        data_mask = tags == 0
        reps = np.ones(len(tags), dtype=np.int64)
        reps[data_mask] = n
        total = int(reps.sum())
        out_tags = np.zeros(total, np.uint8)
        if len(tags):
            ends = np.cumsum(reps) - 1
            bmask = ~data_mask
            out_tags[ends[bmask]] = tags[bmask]
        hi_idx = max(int(n.max()) - 1, 0) if n.size else 0
        outs = [Column(out_tags, idx_vals, 0, hi_idx)]
        for c in ins[1:]:
            outs.append(Column(out_tags, np.repeat(c.values, n), c.lo, c.hi))
        return outs

    # -- memory ops -----------------------------------------------------------
    #
    # Each handler has two routes: the real MemorySystem, or — while a
    # lockstep while drain is attempting — the _ShadowMemory overlay, which
    # needs the owning barrier group of every data row (_row_gids).  Under
    # the shadow a handler must never touch real memory, so structural
    # surprises raise _VectorAbort instead of taking the token fallback.

    def _row_gids(self, col: Column) -> List[int]:
        """Owning *global* barrier-group id for each data row of ``col``."""
        tags = col.tags
        local = np.cumsum(tags != 0)[tags == 0]
        groups = np.asarray(self._shadow.current_groups, dtype=np.int64)
        return groups[local].tolist()

    def _op_sram_alloc(self, node: DFNode, ins: List[Column]) -> List[Column]:
        if self._shadow is not None:  # pointer order is group-interleaved
            raise _VectorAbort
        site = node.params.get("site", "default")
        words = node.params.get("buffer_words", 64)
        max_buffers = node.params.get("max_buffers", 4096)
        if ins:
            tags, n = ins[0].tags, ins[0].n_data
        else:
            tags = np.array([0, 1], dtype=np.uint8)
            n = 1
        ptrs = self.memory.sram_alloc_many(site, words, max_buffers, n)
        values, lo, hi = _values_from_list(ptrs)
        return [Column(tags, values, lo, hi)]

    def _op_sram_free(self, node: DFNode, ins: List[Column]) -> List[Column]:
        if self._shadow is not None:  # free-list order is group-interleaved
            raise _VectorAbort
        site = node.params.get("site", "default")
        col = ins[0]
        self.memory.sram_free_many(site, col.values.tolist())
        return [Column(col.tags, np.zeros(col.n_data, np.int64), 0, 0)]

    def _op_sram_read(self, node: DFNode, ins: List[Column]) -> List[Column]:
        site = node.params.get("site", "default")
        col = ins[0]
        shadow = self._shadow
        if shadow is None:
            vals = self.memory.sram_read_many(site, col.values.tolist())
        else:
            vals = shadow.sram_read_many(
                site, col.values.tolist(), self._row_gids(col))
        values, lo, hi = _values_from_ints(vals)
        return [Column(col.tags, values, lo, hi)]

    def _op_sram_write(self, node: DFNode, ins: List[Column]) -> List[Column]:
        shadow = self._shadow
        if not _align(ins):
            if shadow is not None:
                raise _VectorAbort
            return self._fallback_node(node, ins)
        site = node.params.get("site", "default")
        a, v = ins
        if shadow is None:
            self.memory.sram_write_many(
                site, a.values.tolist(), v.values.tolist())
        else:
            shadow.sram_write_many(
                site, a.values.tolist(), v.values.tolist(),
                self._row_gids(a))
        return [Column(a.tags, np.zeros(a.n_data, np.int64), 0, 0)]

    def _op_dram_read(self, node: DFNode, ins: List[Column]) -> List[Column]:
        col = ins[0]
        shadow = self._shadow
        if shadow is None:
            vals = self.memory.dram_read_many(col.values.tolist())
        else:
            vals = shadow.dram_read_many(
                col.values.tolist(), self._row_gids(col))
        values, lo, hi = _values_from_ints(vals)
        return [Column(col.tags, values, lo, hi)]

    def _op_dram_write(self, node: DFNode, ins: List[Column]) -> List[Column]:
        shadow = self._shadow
        if not _align(ins):
            if shadow is not None:
                raise _VectorAbort
            return self._fallback_node(node, ins)
        a, v = ins
        if shadow is None:
            self.memory.dram_write_many(a.values.tolist(), v.values.tolist())
        else:
            shadow.dram_write_many(
                a.values.tolist(), v.values.tolist(), self._row_gids(a))
        return [Column(a.tags, np.zeros(a.n_data, np.int64), 0, 0)]

    def _op_bulk_load(self, node: DFNode, ins: List[Column]) -> List[Column]:
        shadow = self._shadow
        if not _align(ins):
            if shadow is not None:
                raise _VectorAbort
            return self._fallback_node(node, ins)
        site = node.params.get("site", "default")
        size = node.params["size"]
        d, s = ins
        if shadow is None:
            self.memory.bulk_load_many(
                site, d.values.tolist(), s.values.tolist(), size
            )
        else:
            shadow.bulk_load_many(
                site, d.values.tolist(), s.values.tolist(), size,
                self._row_gids(d))
        return [Column(d.tags, np.zeros(d.n_data, np.int64), 0, 0)]

    def _op_bulk_store(self, node: DFNode, ins: List[Column]) -> List[Column]:
        shadow = self._shadow
        if not _align(ins):
            if shadow is not None:
                raise _VectorAbort
            return self._fallback_node(node, ins)
        site = node.params.get("site", "default")
        size = node.params["size"]
        d, s = ins[0], ins[1]
        if len(ins) > 2:
            counts = [
                max(0, min(size, c)) for c in ins[2].values.tolist()
            ]
            if shadow is None:
                self.memory.bulk_store_counted_many(
                    site, d.values.tolist(), s.values.tolist(), counts
                )
            else:
                shadow.bulk_store_counted_many(
                    site, d.values.tolist(), s.values.tolist(), counts,
                    self._row_gids(d))
        elif shadow is None:
            self.memory.bulk_store_many(
                site, d.values.tolist(), s.values.tolist(), size
            )
        else:
            shadow.bulk_store_many(
                site, d.values.tolist(), s.values.tolist(), size,
                self._row_gids(d))
        return [Column(d.tags, np.zeros(d.n_data, np.int64), 0, 0)]

    # -- region ops -------------------------------------------------------------

    def _op_while(self, node: DFNode, ins: List[Column]) -> List[Column]:
        """Drain a forward-backward loop (see :meth:`Executor._op_while`).

        Preferred route: drain *every* barrier group in lockstep
        (:meth:`_while_drain_vectorized`) under a :class:`_ShadowMemory`
        transaction; on any cross-group hazard the attempt is discarded and
        this falls back to the sequential per-group drain below, which
        matches the token executor turn for turn.
        """
        cond_region, body_region = node.regions
        width = len(ins)
        label = node.params.get("label", f"while#{node.uid}")

        tags0 = ins[0].tags
        length = len(tags0)
        for other in ins[1:]:
            if len(other.tags) != length:
                raise PrimitiveError("while live streams have different lengths")
        if not _align(ins):
            self._raise_while_misalignment(ins)

        bpos = np.nonzero(tags0)[0]
        dcum = (tags0 == 0).cumsum()

        if self._shadow is not None:
            # Nested inside an outer lockstep drain: the outer gate already
            # proved this loop's regions safe, so run inline on the shared
            # shadow; any hazard here aborts the outermost attempt.
            return self._while_drain_vectorized(node, ins, tags0, bpos, dcum)
        if len(bpos) > 1 and self._while_vector_safe(node):
            # Lockstep only pays when several groups actually carry rows:
            # with zero or one non-empty group the sequential drain below
            # is already whole-bundle vectorized, and the shadow overlay
            # would be pure per-access overhead.
            counts0 = _counts_at(dcum, bpos)
            if int(np.count_nonzero(counts0)) > 1:
                out = self._try_while_vectorized(node, ins, tags0, bpos, dcum)
                if out is not None:
                    return out

        record_loop = self.profile.record_loop
        max_iterations = self.max_loop_iterations
        out_chunks: List[List[Any]] = [[] for _ in range(width)]
        group_counts: List[int] = []
        start = 0
        for p in bpos.tolist():
            end = int(dcum[p])
            n = end - start
            gt = np.zeros(n + 1, np.uint8)
            gt[n] = 1
            live = [Column(gt, c.values[start:end], c.lo, c.hi) for c in ins]
            start = end
            exited = 0
            iterations = 0
            while True:
                record_loop(label, 1)
                cond = self._run_subgraph(cond_region, live)[0]
                continuing, exiting = self._partition_bundle(live, cond)
                for i in range(width):
                    if exiting[i].n_data:
                        out_chunks[i].append(exiting[i].values)
                exited += exiting[0].n_data
                next_live = self._run_subgraph(body_region, continuing)
                n_re = next_live[0].n_data
                if n_re == 0:
                    break
                gt2 = np.zeros(n_re + 1, np.uint8)
                gt2[n_re] = 1
                live = []
                for s in next_live:
                    if s.n_data == n_re:
                        live.append(Column(gt2, s.values, s.lo, s.hi))
                    else:
                        # Ragged body outputs surface as misalignment on the
                        # next turn, exactly as in the token path.
                        t = np.zeros(s.n_data + 1, np.uint8)
                        t[s.n_data] = 1
                        live.append(Column(t, s.values, s.lo, s.hi))
                iterations += 1
                if iterations > max_iterations:
                    raise PrimitiveError(
                        "forward-backward loop exceeded max_iterations; "
                        "possible livelock in loop body"
                    )
            group_counts.append(exited)
        total_data = int(dcum[-1]) if length else 0
        if total_data > start:
            raise PrimitiveError(
                "forward-backward loop input missing final barrier")

        counts_arr = np.asarray(group_counts, np.int64)
        G = len(group_counts)
        out_total = int(counts_arr.sum()) + G
        out_tags = np.zeros(out_total, np.uint8)
        if G:
            bar_pos = np.cumsum(counts_arr + 1) - 1
            out_tags[bar_pos] = tags0[bpos]
        outs: List[Column] = []
        for i in range(width):
            chunks = out_chunks[i]
            if not chunks:
                outs.append(Column(out_tags, np.empty(0, np.int64), 0, 0))
                continue
            if any(c.dtype == object for c in chunks):
                values = np.empty(sum(len(c) for c in chunks), dtype=object)
                pos = 0
                for c in chunks:
                    items = c.tolist()
                    values[pos:pos + len(items)] = items
                    pos += len(items)
                lo = hi = None
            else:
                values = np.concatenate(chunks)
                lo, hi = _bounds_of(values)
            outs.append(Column(out_tags, values, lo, hi))
        return outs

    #: Ops allowed inside a lockstep-drained while: each is *group-local*
    #: (rows of one barrier group never influence another group's rows) and
    #: count-preserving, and its memory effects go through the shadow.
    #: ``sram_alloc``/``sram_free`` are excluded — the FIFO free list makes
    #: pointer values depend on cross-group allocation order — as is every
    #: structural op (fork/filter/merge/foreach/...), conservatively.
    _WHILE_VECTOR_OPS = frozenset({
        "compute", "const", "sram_read", "sram_write", "dram_read",
        "dram_write", "bulk_load", "bulk_store", "if", "while",
    })

    def _while_vector_safe(self, node: DFNode) -> bool:
        """Whether ``node``'s regions qualify for the lockstep drain."""
        cached = self._while_gate_cache.get(node.uid)
        if cached is None:
            cached = all(self._region_vector_safe(r) for r in node.regions)
            self._while_gate_cache[node.uid] = cached
        return cached

    def _region_vector_safe(self, graph: DFGraph) -> bool:
        safe = self._WHILE_VECTOR_OPS
        for n in graph.nodes:
            if n.op not in safe:
                return False
            for r in getattr(n, "regions", ()) or ():
                if not self._region_vector_safe(r):
                    return False
        return True

    def _static_op_counts(self, node: DFNode) -> Dict[str, int]:
        """Op histogram of the while's regions, not descending into nested
        whiles (which compensate their own firings) but counting the nested
        while node itself.  Every such node fires exactly once per region
        run, which is what the firing compensation in the lockstep drain
        relies on."""
        cached = self._while_static_cache.get(node.uid)
        if cached is None:
            cached = {}

            def walk(graph: DFGraph) -> None:
                for n in graph.nodes:
                    cached[n.op] = cached.get(n.op, 0) + 1
                    if n.op == "while":
                        continue
                    for r in getattr(n, "regions", ()) or ():
                        walk(r)

            for r in node.regions:
                walk(r)
            self._while_static_cache[node.uid] = cached
        return cached

    def _try_while_vectorized(
        self, node: DFNode, ins: List[Column], tags0, bpos, dcum
    ) -> Optional[List[Column]]:
        """Attempt the lockstep drain as a transaction; None on abort.

        All memory effects go to a fresh shadow overlay and all profile
        counts to a scratch profile, so *any* exception — a cross-group
        hazard, a malformed program, a genuine executor error — leaves real
        state untouched and the sequential per-group drain reruns from
        scratch, reproducing token behaviour exactly (including the error
        itself and any partial side effects preceding it).
        """
        scratch = ExecutionProfile()
        shadow = _ShadowMemory(self.memory)
        shadow.current_groups = list(range(len(bpos)))
        saved = self.profile
        self.profile = scratch
        self._shadow = shadow
        try:
            outs = self._while_drain_vectorized(node, ins, tags0, bpos, dcum)
        except Exception:
            return None
        finally:
            self.profile = saved
            self._shadow = None
        shadow.commit()
        self._merge_profile(scratch)
        return outs

    def _merge_profile(self, scratch: ExecutionProfile) -> None:
        profile = self.profile
        links = profile.link_stats
        for name, lp in scratch.link_stats.items():
            t = links.get(name)
            if t is None:
                t = links[name] = LinkProfile()
            t.elements += lp.elements
            t.barriers += lp.barriers
        firings = profile.node_firings
        for op, n in scratch.node_firings.items():
            firings[op] = firings.get(op, 0) + n
        loops = profile.loop_iterations
        for lbl, n in scratch.loop_iterations.items():
            loops[lbl] = loops.get(lbl, 0) + n

    def _while_drain_vectorized(
        self, node: DFNode, ins: List[Column], tags0, bpos, dcum
    ) -> List[Column]:
        """Drain every barrier group of one while in lockstep.

        Each global turn runs the condition and body *once* over the
        still-live rows of all groups together; groups whose body
        recirculates nothing drop out, so the turn count is ``max`` rather
        than ``sum`` of per-group turn counts.  Per-group turn counts,
        exit order, link totals, and loop/firing profile counts all equal
        the sequential drain (firings are compensated below: region nodes
        fire once per global turn here versus once per group-turn there).

        Must run with ``self._shadow`` set; at the outermost level
        ``self.profile`` is a scratch swapped in by
        :meth:`_try_while_vectorized`.
        """
        cond_region, body_region = node.regions
        width = len(ins)
        label = node.params.get("label", f"while#{node.uid}")
        record_loop = self.profile.record_loop
        max_iterations = self.max_loop_iterations
        shadow = self._shadow

        G = len(bpos)
        counts0 = _counts_at(dcum, bpos)
        n_live = int(counts0.sum())
        live_vals = [c.values[:n_live] for c in ins]
        live_bounds = [(c.lo, c.hi) for c in ins]
        present = np.arange(G, dtype=np.int64)  # local group ids still live
        rowcounts = counts0
        out_chunks: List[List[List[Any]]] = [
            [[] for _ in range(G)] for _ in range(width)
        ]
        exited = np.zeros(G, np.int64)
        parent = list(shadow.current_groups)
        group_turns = 0
        turns = 0
        iterations = 0
        try:
            while present.size:
                shadow.current_groups = [parent[g] for g in present.tolist()]
                turns += 1
                group_turns += len(present)
                record_loop(label, len(present))
                turn_tags = _group_tags(rowcounts)
                live = [Column(turn_tags, v, lo, hi)
                        for v, (lo, hi) in zip(live_vals, live_bounds)]
                cond = self._run_subgraph(cond_region, live)[0]
                if cond.tags is not turn_tags and not np.array_equal(
                        cond.tags, turn_tags):
                    raise _VectorAbort  # ragged condition: rerun per group
                continuing, exiting = self._partition_bundle(live, cond)
                ex_counts = _group_data_counts(exiting[0].tags)
                if len(ex_counts) != len(present):
                    raise _VectorAbort
                if exiting[0].n_data:
                    offs = np.cumsum(ex_counts)
                    nz = np.nonzero(ex_counts)[0]
                    for k in nz.tolist():
                        g = int(present[k])
                        o1 = int(offs[k])
                        o0 = o1 - int(ex_counts[k])
                        for i in range(width):
                            out_chunks[i][g].append(exiting[i].values[o0:o1])
                    np.add.at(exited, present[nz], ex_counts[nz])
                body_out = self._run_subgraph(body_region, continuing)
                if len(body_out) != width:
                    raise _VectorAbort
                b_counts = _group_data_counts(body_out[0].tags)
                # The gated ops are all count-preserving, so the body must
                # recirculate exactly the continuing rows of each group;
                # anything else is a malformed program whose exact error the
                # per-group rerun will reproduce.
                if (len(b_counts) != len(present)
                        or not np.array_equal(b_counts,
                                              rowcounts - ex_counts)):
                    raise _VectorAbort
                t0b = body_out[0].tags
                for c in body_out[1:]:
                    t = c.tags
                    if t is not t0b and not np.array_equal(
                            _group_data_counts(t), b_counts):
                        raise _VectorAbort
                alive = b_counts > 0
                present = present[alive]
                rowcounts = b_counts[alive]
                live_vals = [c.values for c in body_out]
                live_bounds = [(c.lo, c.hi) for c in body_out]
                if present.size:
                    iterations += 1
                    if iterations > max_iterations:
                        raise PrimitiveError(
                            "forward-backward loop exceeded max_iterations; "
                            "possible livelock in loop body"
                        )
        finally:
            shadow.current_groups = parent

        total_data = int(dcum[-1]) if len(tags0) else 0
        if total_data > n_live:
            raise PrimitiveError(
                "forward-backward loop input missing final barrier")

        # Firing compensation: the sequential drain runs each region node
        # once per (group, turn); the lockstep drain ran them once per
        # global turn.  The difference is the same for every static node.
        delta = group_turns - turns
        if delta:
            firings = self.profile.node_firings
            for op, n in self._static_op_counts(node).items():
                firings[op] = firings.get(op, 0) + n * delta

        counts_arr = exited
        out_total = int(counts_arr.sum()) + G
        out_tags = np.zeros(out_total, np.uint8)
        if G:
            bar_pos = np.cumsum(counts_arr + 1) - 1
            out_tags[bar_pos] = tags0[bpos]
        outs: List[Column] = []
        for i in range(width):
            chunks = [ch for per_group in out_chunks[i] for ch in per_group]
            if not chunks:
                outs.append(Column(out_tags, np.empty(0, np.int64), 0, 0))
                continue
            if any(c.dtype == object for c in chunks):
                values = np.empty(sum(len(c) for c in chunks), dtype=object)
                pos = 0
                for c in chunks:
                    items = c.tolist()
                    values[pos:pos + len(items)] = items
                    pos += len(items)
                lo = hi = None
            else:
                values = np.concatenate(chunks)
                lo, hi = _bounds_of(values)
            outs.append(Column(out_tags, values, lo, hi))
        return outs

    @staticmethod
    def _raise_while_misalignment(ins: Sequence[Column]) -> None:
        tags0 = ins[0].tags
        for c in ins[1:]:
            diff = np.nonzero(c.tags != tags0)[0]
            if diff.size:
                j = int(diff[0])
                tok = _token_at(c, j)
                if tags0[j] == 0:
                    raise PrimitiveError(
                        f"while live streams misaligned at {tok!r}")
                raise PrimitiveError(
                    f"while live streams have mismatched barriers at {tok!r}")
        raise PrimitiveError("while live streams misaligned")

    def _op_if(self, node: DFNode, ins: List[Column]) -> List[Column]:
        cond, live = ins[0], ins[1:]
        then_region, else_region = node.regions
        taken, fallthrough = self._partition_bundle(live, cond)
        then_out = self._run_subgraph(then_region, taken)
        else_out = self._run_subgraph(else_region, fallthrough)
        width = len(node.outputs)
        if width == 0:
            return []
        return self._merge_columns(then_out, else_out)

    def _op_foreach(self, node: DFNode, ins: List[Column]) -> List[Column]:
        lo, hi, step = ins[0], ins[1], ins[2]
        live = ins[3:]
        body = node.regions[0]
        indices = self._counter_columns(lo, hi, step)
        body_inputs = [indices] + [
            self._broadcast_column(s, indices, 1) for s in live
        ]
        results = self._run_subgraph(body, body_inputs)
        reduce_op = node.params.get("reduce_op")
        if reduce_op is not None:
            init = node.params.get("reduce_init", 0)
            return [
                self._reduce_column(node, r, reduce_op, init, 1) for r in results
            ]
        return [self._flatten_column(r, 1) for r in results]
