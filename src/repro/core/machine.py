"""Abstract vRDA machine model parameters (paper Table II).

The machine is a grid of vectorized compute units (CUs), memory units (MUs),
and DRAM address generators (AGs) connected by a hybrid scalar/vector
network.  The parameters here are the ones used throughout the compiler
(splitting constraints), the placer (capacity checks), and the performance
model (bandwidth limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from repro.errors import MachineError


class ResourceKind(str, Enum):
    """Physical unit classes on the vRDA."""

    CU = "CU"
    MU = "MU"
    AG = "AG"


class LinkKind(str, Enum):
    """On-chip link classes (paper Section III-C)."""

    VECTOR = "vector"
    SCALAR = "scalar"
    VOID = "void"


@dataclass(frozen=True)
class MachineConfig:
    """Table II parameters for the evaluated vRDA.

    The defaults reproduce the paper's configuration: 200 CUs / 200 MUs /
    80 AGs, 16-lane 6-stage CUs, 256 KiB MUs with 16 banks, 4 vector +
    4 scalar input buffers and outputs per unit, a hybrid network with
    3x vector and 6x scalar channels, and ~900 GB/s HBM2 with 32 B bursts
    at a 1.6 GHz fabric clock.
    """

    num_cus: int = 200
    num_mus: int = 200
    num_ags: int = 80

    lanes: int = 16
    stages: int = 6
    regs_per_lane_stage: int = 6

    mu_banks: int = 16
    mu_capacity_bytes: int = 256 * 1024

    vector_buffers_per_unit: int = 4
    vector_buffer_words: int = 256
    scalar_buffers_per_unit: int = 4
    scalar_buffer_words: int = 64
    vector_outputs_per_unit: int = 4
    scalar_outputs_per_unit: int = 4

    network_vector_channels: int = 3
    network_scalar_channels: int = 6

    clock_ghz: float = 1.6
    word_bytes: int = 4

    dram_bandwidth_gbs: float = 900.0
    dram_burst_bytes: int = 32
    dram_activation_bytes: int = 1024  # one HBM2 row activation granule
    dram_activations_per_us: float = 2800.0

    area_mm2: float = 189.0

    def validate(self) -> None:
        """Raise :class:`MachineError` for non-physical configurations."""
        for name in (
            "num_cus",
            "num_mus",
            "num_ags",
            "lanes",
            "stages",
            "mu_banks",
            "mu_capacity_bytes",
        ):
            if getattr(self, name) <= 0:
                raise MachineError(f"{name} must be positive")
        if self.clock_ghz <= 0 or self.dram_bandwidth_gbs <= 0:
            raise MachineError("clock and DRAM bandwidth must be positive")

    @property
    def vector_bytes(self) -> int:
        """Width of a vector link payload in bytes (16 x 32-bit lanes)."""
        return self.lanes * self.word_bytes

    @property
    def peak_vector_words_per_cycle(self) -> int:
        """Data elements one vector link can move per cycle."""
        return self.lanes

    @property
    def peak_scalar_words_per_cycle(self) -> int:
        """Data elements one scalar link can move per cycle."""
        return 1

    @property
    def dram_bytes_per_cycle(self) -> float:
        """HBM2 bandwidth expressed per fabric cycle."""
        return self.dram_bandwidth_gbs / self.clock_ghz

    @property
    def mu_words(self) -> int:
        """Words of storage per memory unit."""
        return self.mu_capacity_bytes // self.word_bytes

    def resource_total(self, kind: ResourceKind) -> int:
        """Total number of physical units of ``kind``."""
        return {
            ResourceKind.CU: self.num_cus,
            ResourceKind.MU: self.num_mus,
            ResourceKind.AG: self.num_ags,
        }[kind]


#: The paper's evaluated configuration (Table II).
DEFAULT_MACHINE = MachineConfig()

#: The V100 die area the paper compares against (815 mm^2, so the vRDA is
#: ~4.3x smaller); used for the area-adjusted speedup in Table V.
V100_AREA_MM2 = 815.0


@dataclass
class ContextLimits:
    """Splitting constraints for one streaming context (virtual CU).

    Derived from :class:`MachineConfig`: a context must fit the pipeline
    stages, register file, and input/output buffer counts of one CU.
    """

    max_ops: int = 6
    max_vector_inputs: int = 4
    max_scalar_inputs: int = 4
    max_vector_outputs: int = 4
    max_scalar_outputs: int = 4
    max_regs_per_lane: int = 36  # 6 regs/stage * 6 stages

    @classmethod
    def from_machine(cls, machine: MachineConfig) -> "ContextLimits":
        return cls(
            max_ops=machine.stages,
            max_vector_inputs=machine.vector_buffers_per_unit,
            max_scalar_inputs=machine.scalar_buffers_per_unit,
            max_vector_outputs=machine.vector_outputs_per_unit,
            max_scalar_outputs=machine.scalar_outputs_per_unit,
            max_regs_per_lane=machine.regs_per_lane_stage * machine.stages,
        )


@dataclass
class ResourceUsage:
    """A CU/MU/AG usage triple, with helpers for aggregation."""

    cu: int = 0
    mu: int = 0
    ag: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(self.cu + other.cu, self.mu + other.mu, self.ag + other.ag)

    def scaled(self, factor: int) -> "ResourceUsage":
        return ResourceUsage(self.cu * factor, self.mu * factor, self.ag * factor)

    def as_dict(self) -> Dict[str, int]:
        return {"CU": self.cu, "MU": self.mu, "AG": self.ag}

    def fits(self, machine: MachineConfig) -> bool:
        """True if this usage fits within the machine's unit counts."""
        return (
            self.cu <= machine.num_cus
            and self.mu <= machine.num_mus
            and self.ag <= machine.num_ags
        )

    def utilization(self, machine: MachineConfig) -> Dict[str, float]:
        """Fraction of each resource class consumed."""
        return {
            "CU": self.cu / machine.num_cus,
            "MU": self.mu / machine.num_mus,
            "AG": self.ag / machine.num_ags,
        }

    def critical_resource(self, machine: MachineConfig) -> str:
        """The resource class with the highest utilization."""
        util = self.utilization(machine)
        return max(util, key=util.get)
