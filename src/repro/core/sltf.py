"""Structured-Link Tensor Format (SLTF).

The SLTF is Revet's on-chip data representation (paper Section III-A).  A
link carries a stream of tokens: data elements interleaved with *barriers*
(done-tokens) that encode the ends of ragged-tensor dimensions.  A barrier of
level ``n`` (written Omega_n in the paper) terminates dimension ``n``; it
implies the termination of lower dimensions only when data is pending in
them, which is what gives the empty tensors ``[[]]``, ``[[],[]]`` and ``[]``
their distinct encodings.

This module provides:

* :class:`Data` and :class:`Barrier` tokens,
* :func:`encode` / :func:`decode` between nested Python lists (ragged
  tensors) and token streams,
* :func:`validate_stream` which checks the well-formedness rules that
  Revet's machine model relies on for composability, and
* small utilities (:func:`stream_depth`, :func:`count_elements`,
  :func:`split_groups`) used by the streaming primitives.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import SLTFError

#: Maximum barrier level supported by the on-chip encoding (4 bits, paper
#: Section III-A: "we assume ... n <= 15").
MAX_BARRIER_LEVEL = 15


class Data:
    """A single data element travelling on an SLTF link.

    Tokens are the most-allocated objects in the system (every primitive
    builds fresh streams), so they are hand-written slotted classes rather
    than frozen dataclasses: construction is ~2x faster, which is directly
    visible in cold serving throughput.  They are immutable by convention;
    value equality and hashing match the old dataclass behaviour.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is Data:
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Data, self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"D({self.value!r})"


class Barrier:
    """A done-token terminating tensor dimension ``level`` (Omega_level)."""

    #: ``_closed_empty`` is transient bookkeeping for :func:`_compress`.
    __slots__ = ("level", "_closed_empty")

    def __init__(self, level: int):
        if level < 1:
            raise SLTFError(f"barrier level must be >= 1, got {level}")
        if level > MAX_BARRIER_LEVEL:
            raise SLTFError(
                f"barrier level {level} exceeds MAX_BARRIER_LEVEL "
                f"({MAX_BARRIER_LEVEL})"
            )
        self.level = level

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is Barrier:
            return self.level == other.level
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Barrier, self.level))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"B{self.level}"


Token = Union[Data, Barrier]
Stream = List[Token]


def is_data(token: Token) -> bool:
    """Return True if ``token`` carries a data element."""
    return isinstance(token, Data)


def is_barrier(token: Token, level: int = None) -> bool:
    """Return True if ``token`` is a barrier (optionally of a given level)."""
    if not isinstance(token, Barrier):
        return False
    return level is None or token.level == level


def data_values(stream: Iterable[Token]) -> List[Any]:
    """Extract the data payloads of a stream, dropping barriers."""
    return [tok.value for tok in stream if isinstance(tok, Data)]


def count_elements(stream: Iterable[Token]) -> int:
    """Count data elements in a stream."""
    return sum(1 for tok in stream if isinstance(tok, Data))


def _encode_nested(tensor: Sequence, ndim: int) -> Stream:
    """Recursively encode ``tensor`` (an ``ndim``-dimensional nested list)."""
    if ndim == 1:
        return [Data(v) for v in tensor]
    tokens: Stream = []
    for child in tensor:
        tokens.extend(_encode_nested(child, ndim - 1))
        tokens.append(Barrier(ndim - 1))
    return tokens


def _compress(tokens: Stream) -> Stream:
    """Drop barriers implied by an immediately following higher barrier.

    A barrier Omega_k that closes a *non-empty* group is implied when it is
    immediately followed by a barrier of a strictly higher level, matching
    the paper's example ``[[0,1],[2]] -> 0, 1, O1, 2, O2``.
    """
    out: Stream = []
    # ``group_nonempty[k]`` tracks whether dimension ``k`` has pending data
    # (data or closed sub-groups) since the last barrier of level >= k.
    pending = [False] * (MAX_BARRIER_LEVEL + 2)
    for tok in tokens:
        if isinstance(tok, Data):
            out.append(tok)
            for lvl in range(1, MAX_BARRIER_LEVEL + 2):
                pending[lvl] = True
            continue
        # Barrier: drop trailing lower barriers that closed non-empty groups.
        while out and isinstance(out[-1], Barrier) and out[-1].level < tok.level:
            # The lower barrier is implied only if its group was non-empty.
            # Because we appended it, its group must have been empty or
            # non-empty; we recorded emptiness via a sentinel below.
            if getattr(out[-1], "_closed_empty", False):
                break
            out.pop()
        emitted = Barrier(tok.level)
        if not pending[tok.level]:
            # Closing an empty group: mark so a following higher barrier
            # does not absorb it.
            object.__setattr__(emitted, "_closed_empty", True)
        out.append(emitted)
        for lvl in range(1, tok.level + 1):
            pending[lvl] = False
        for lvl in range(tok.level + 1, MAX_BARRIER_LEVEL + 2):
            pending[lvl] = True
    # Strip the bookkeeping attribute so tokens compare equal to plain ones.
    cleaned: Stream = []
    for tok in out:
        if isinstance(tok, Barrier):
            cleaned.append(Barrier(tok.level))
        else:
            cleaned.append(tok)
    return cleaned


def encode(tensor: Sequence, ndim: int) -> Stream:
    """Encode an ``ndim``-dimensional ragged tensor into an SLTF stream.

    The stream is terminated by a single barrier of level ``ndim``.

    >>> encode([[0, 1], [2]], ndim=2)
    [D(0), D(1), B1, D(2), B2]
    >>> encode([[]], ndim=2)
    [B1, B2]
    >>> encode([], ndim=2)
    [B2]
    """
    if ndim < 1:
        raise SLTFError(f"tensor rank must be >= 1, got {ndim}")
    if ndim > MAX_BARRIER_LEVEL:
        raise SLTFError(f"tensor rank {ndim} exceeds MAX_BARRIER_LEVEL")
    tokens = _encode_nested(tensor, ndim)
    tokens.append(Barrier(ndim))
    return _compress(tokens)


def decode(stream: Iterable[Token], ndim: int) -> list:
    """Decode an SLTF stream back into an ``ndim``-dimensional nested list.

    The stream may contain multiple top-level tensors (each terminated by a
    level-``ndim`` barrier); in that case a list of tensors is *not*
    returned — use :func:`decode_all` instead.  :func:`decode` requires the
    stream to contain exactly one top-level tensor.
    """
    tensors = decode_all(stream, ndim)
    if len(tensors) != 1:
        raise SLTFError(
            f"expected exactly one level-{ndim} tensor in stream, found "
            f"{len(tensors)}"
        )
    return tensors[0]


def decode_all(stream: Iterable[Token], ndim: int) -> List[list]:
    """Decode a stream containing zero or more ``ndim``-D tensors."""
    if ndim < 1:
        raise SLTFError(f"tensor rank must be >= 1, got {ndim}")
    # groups[k] is the partially-built list of dimension k+1 (0-indexed).
    groups: List[list] = [[] for _ in range(ndim)]
    # pending[k] is True when dimension k+1 has received content since it
    # was last closed.
    pending = [False] * ndim
    results: List[list] = []

    def close(level: int) -> None:
        """Close dimensions 1..level, respecting implied-closure rules."""
        for lvl in range(1, level):
            if pending[lvl - 1]:
                groups[lvl].append(groups[lvl - 1])
                groups[lvl - 1] = []
                pending[lvl - 1] = False
                pending[lvl] = True
        # Explicitly close ``level`` itself (even if empty).
        if level < ndim:
            groups[level].append(groups[level - 1])
            pending[level] = True
        else:
            results.append(groups[level - 1])
        groups[level - 1] = []
        pending[level - 1] = False

    for tok in stream:
        if isinstance(tok, Data):
            groups[0].append(tok.value)
            pending[0] = True
        else:
            if tok.level > ndim:
                raise SLTFError(
                    f"barrier level {tok.level} exceeds stream rank {ndim}"
                )
            close(tok.level)
    if any(pending) or any(groups[k] for k in range(ndim)):
        raise SLTFError("stream ended with unterminated dimensions")
    return results


def validate_stream(stream: Iterable[Token], ndim: int) -> None:
    """Check SLTF well-formedness for a rank-``ndim`` link.

    Raises :class:`SLTFError` if the stream contains barriers above ``ndim``
    or is not decodable (e.g. unterminated dimensions).
    """
    decode_all(stream, ndim)


def stream_depth(stream: Iterable[Token]) -> int:
    """Return the maximum barrier level present in a stream (0 if none)."""
    return max((tok.level for tok in stream if isinstance(tok, Barrier)), default=0)


def split_groups(stream: Sequence[Token], level: int) -> Iterator[Stream]:
    """Split a stream into the groups terminated by barriers of ``level``.

    Each yielded group *includes* its terminating barrier.  Lower barriers
    remain embedded inside the groups.  A trailing partial group (no final
    barrier) is yielded as-is.
    """
    group: Stream = []
    for tok in stream:
        group.append(tok)
        if isinstance(tok, Barrier) and tok.level >= level:
            yield group
            group = []
    if group:
        yield group


def lower_barriers(stream: Iterable[Token], by: int = 1) -> Stream:
    """Lower every barrier level by ``by``, dropping those that reach 0.

    This implements the *flatten* edge behaviour: leaving a while-loop body
    or flattening a foreach removes one level of hierarchy.
    """
    out: Stream = []
    for tok in stream:
        if isinstance(tok, Barrier):
            new_level = tok.level - by
            if new_level >= 1:
                out.append(Barrier(new_level))
        else:
            out.append(tok)
    return out


def raise_barriers(stream: Iterable[Token], by: int = 1) -> Stream:
    """Raise every barrier level by ``by`` (used when entering loop bodies)."""
    out: Stream = []
    for tok in stream:
        if isinstance(tok, Barrier):
            out.append(Barrier(tok.level + by))
        else:
            out.append(tok)
    return out


def concat_streams(*streams: Sequence[Token]) -> Stream:
    """Concatenate token streams into a new stream."""
    out: Stream = []
    for s in streams:
        out.extend(s)
    return out


def zip_data(*streams: Sequence[Token]) -> Iterator[Tuple[Any, ...]]:
    """Iterate tuples of corresponding data values across parallel streams.

    Parallel SLTF streams carry the live variables of the same threads, so
    their data elements (and barriers) must line up one-to-one.  Raises
    :class:`SLTFError` on misalignment.
    """
    iters = [iter(s) for s in streams]
    while True:
        toks = []
        done = 0
        for it in iters:
            try:
                toks.append(next(it))
            except StopIteration:
                done += 1
                toks.append(None)
        if done == len(iters):
            return
        if done:
            raise SLTFError("parallel streams have different lengths")
        kinds = {isinstance(t, Barrier) for t in toks}
        if len(kinds) != 1:
            raise SLTFError(f"parallel streams misaligned at {toks}")
        if isinstance(toks[0], Barrier):
            levels = {t.level for t in toks}
            if len(levels) != 1:
                raise SLTFError(f"parallel streams have mismatched barriers {toks}")
            continue
        yield tuple(t.value for t in toks)
