"""Synthetic request traces for exercising the serving engine.

A serving workload is dominated by *repeats*: many clients asking for the
same few programs over a small set of parameter shapes.  The generator here
models that: a trace of ``size`` requests drawn from a handful of apps,
each with a bounded pool of distinct ``(n_threads, seed)`` shapes, and an
optional mix of analytic baseline backends.  Repetition is what gives the
program cache its >80% hit rate and the result tier its warm speedup, so
``distinct_shapes`` is the knob benchmarks sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.apps.base import REGISTRY
from repro.runtime.engine import Request

#: Cheap-to-execute default app mix (small functional instances).
DEFAULT_TRACE_APPS = ["hash-table", "search", "huff-enc", "murmur3"]


@dataclass
class TraceConfig:
    """Shape of one synthetic serving trace."""

    size: int = 100
    apps: Sequence[str] = field(default_factory=lambda: list(DEFAULT_TRACE_APPS))
    #: Probability weight per backend name.
    backend_mix: Dict[str, float] = field(
        default_factory=lambda: {"vrda": 0.85, "cpu": 0.05, "gpu": 0.05,
                                 "aurochs": 0.05})
    #: How many distinct (n_threads, seed) shapes each app cycles through.
    distinct_shapes: int = 2
    n_threads: int = 4
    seed: int = 0


def synthetic_trace(config: Optional[TraceConfig] = None, **overrides
                    ) -> List[Request]:
    """Generate a reproducible request trace from ``config``.

    Keyword overrides are applied on top of the config, so callers can say
    ``synthetic_trace(size=500, apps=["strlen"])`` directly.
    """
    config = config or TraceConfig()
    unknown_options = [name for name in overrides
                       if name not in config.__dataclass_fields__]
    if unknown_options:
        raise ValueError(f"unknown trace options {unknown_options}")
    if overrides:
        config = replace(config, **overrides)  # never mutate the caller's
    if not config.apps:
        raise ValueError("trace needs at least one app")
    known = set(REGISTRY.names())
    unknown = [app for app in config.apps if app not in known]
    if unknown:
        raise ValueError(f"trace names unknown apps {unknown}")

    rng = random.Random(config.seed)
    backends = sorted(config.backend_mix)
    weights = [config.backend_mix[b] for b in backends]
    requests: List[Request] = []
    for index in range(config.size):
        app = config.apps[index % len(config.apps)]
        shape = rng.randrange(max(1, config.distinct_shapes))
        backend = rng.choices(backends, weights=weights)[0]
        requests.append(Request(
            app=app,
            n_threads=config.n_threads,
            seed=shape,
            backend=backend,
        ))
    return requests
