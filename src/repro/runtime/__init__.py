"""``repro.runtime`` — a cached, batched, multi-worker serving engine.

The seed repo's entry points recompile every program from source and serve
one request at a time.  This package turns the compiler + executor into a
serving layer:

* :mod:`repro.runtime.cache` — content-addressed program cache (LRU memory
  tier + optional on-disk pickles) keyed on source hash and
  :meth:`repro.compiler.CompileOptions.cache_key`.
* :mod:`repro.runtime.engine` — request/response engine that coalesces
  requests into per-program batches, executes them, memoizes deterministic
  results, and attaches the paper's modeled latency.
* :mod:`repro.runtime.backends` — one dispatch interface over the
  functional vRDA executor and the analytic CPU / GPU / Aurochs baselines.
* :mod:`repro.runtime.scheduler` — shards batch costs across N simulated
  workers using the admission policies shared with the Figure 14 simulator.
* :mod:`repro.runtime.pool` — real multi-worker execution: N inline or
  ``multiprocessing`` workers, each owning its own program cache, fed by
  cache-affinity batch dispatch with residency feedback; dead or hung
  workers are respawned in place and their batches replayed (fail-fast
  only once a circuit breaker trips).
* :mod:`repro.runtime.faults` — injectable fault plans (kill/hang a
  worker, delay/drop a pipe reply, corrupt a disk-cache entry) for chaos
  tests and the recovery benchmark, threaded through ``--fault-plan``.
* :mod:`repro.runtime.server` / :mod:`repro.runtime.client` — persistent
  NDJSON-over-TCP service front-end and its client (plus the CI smoke
  drivers, ``python -m repro.runtime.client --smoke`` / ``--smoke-http``).
* :mod:`repro.runtime.gateway` — asyncio HTTP/1.1 + chunked-streaming
  front door with rate-aware admission control (429 + ``Retry-After``
  beyond the measured token budget) and slow-reader/idle handling, shared
  with the NDJSON server through one :class:`PoolService`.
* :mod:`repro.runtime.trace` — synthetic repeated-app request traces.
* :mod:`repro.runtime.telemetry` / :mod:`repro.runtime.logs` — the
  observability plane: a snapshot-mergeable metrics registry (counters,
  gauges, log-bucketed latency histograms) rendered as Prometheus text on
  ``GET /metrics`` and the NDJSON ``metrics`` op, opt-in request tracing
  with a top-K slowest ring (``GET /v1/slow``), and structured (optionally
  JSON) logging for restarts, breaker trips, and sheds.

``python -m repro.runtime`` replays a trace end to end and reports
throughput, per-backend counts, cache hit rates, and worker shares;
``python -m repro.runtime.server`` serves the same engine as a long-lived
socket process.
"""

from repro.runtime.backends import (
    AurochsBaselineBackend,
    Backend,
    BackendError,
    BackendRegistry,
    BackendResult,
    CPUBaselineBackend,
    FunctionalVRDABackend,
    GPUBaselineBackend,
)
import importlib
from typing import TYPE_CHECKING

from repro.runtime.cache import CacheStats, LRUCache, ProgramCache, program_key
from repro.runtime.engine import Batch, Engine, EngineError, Request, Response
from repro.runtime.faults import Fault, FaultInjector, FaultPlan, load_fault_plan
from repro.runtime.pool import (
    PoolError,
    PoolReport,
    WorkerConfig,
    WorkerPool,
    WorkerSnapshot,
)
from repro.runtime.logs import JsonFormatter, configure_logging
from repro.runtime.scheduler import ScheduleReport, ShardScheduler, WorkerReport
from repro.runtime.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowRing,
    merge_snapshots,
    new_trace_id,
    render_prometheus,
)
from repro.runtime.trace import DEFAULT_TRACE_APPS, TraceConfig, synthetic_trace

if TYPE_CHECKING:
    from repro.runtime.client import ClientError, RuntimeClient, spawn_server
    from repro.runtime.server import PROTOCOL_VERSION, RuntimeServer

# client/server double as `python -m` entry points; importing them eagerly
# here would make runpy warn about (and re-execute) the module it is about
# to run as __main__, so they resolve lazily instead.  The gateway exports
# resolve lazily for the same reason (its http module imports server).
_LAZY_EXPORTS = {
    "ClientError": "repro.runtime.client",
    "ConnectionLostError": "repro.runtime.client",
    "OverloadedError": "repro.runtime.client",
    "RuntimeClient": "repro.runtime.client",
    "spawn_server": "repro.runtime.client",
    "PROTOCOL_VERSION": "repro.runtime.server",
    "RuntimeServer": "repro.runtime.server",
    "AdmissionController": "repro.runtime.gateway.admission",
    "PoolService": "repro.runtime.gateway.admission",
    "HttpGateway": "repro.runtime.gateway.http",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        value = getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "AurochsBaselineBackend",
    "Backend",
    "BackendError",
    "BackendRegistry",
    "BackendResult",
    "Batch",
    "CPUBaselineBackend",
    "CacheStats",
    "ClientError",
    "ConnectionLostError",
    "Counter",
    "DEFAULT_TRACE_APPS",
    "Engine",
    "EngineError",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FunctionalVRDABackend",
    "GPUBaselineBackend",
    "Gauge",
    "Histogram",
    "HttpGateway",
    "JsonFormatter",
    "LRUCache",
    "MetricsRegistry",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "PoolError",
    "PoolReport",
    "PoolService",
    "ProgramCache",
    "Request",
    "Response",
    "RuntimeClient",
    "RuntimeServer",
    "ScheduleReport",
    "ShardScheduler",
    "SlowRing",
    "TraceConfig",
    "WorkerConfig",
    "WorkerPool",
    "WorkerReport",
    "WorkerSnapshot",
    "configure_logging",
    "load_fault_plan",
    "merge_snapshots",
    "new_trace_id",
    "program_key",
    "render_prometheus",
    "spawn_server",
    "synthetic_trace",
]
