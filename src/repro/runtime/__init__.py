"""``repro.runtime`` — a cached, batched, multi-worker serving engine.

The seed repo's entry points recompile every program from source and serve
one request at a time.  This package turns the compiler + executor into a
serving layer:

* :mod:`repro.runtime.cache` — content-addressed program cache (LRU memory
  tier + optional on-disk pickles) keyed on source hash and
  :meth:`repro.compiler.CompileOptions.cache_key`.
* :mod:`repro.runtime.engine` — request/response engine that coalesces
  requests into per-program batches, executes them, memoizes deterministic
  results, and attaches the paper's modeled latency.
* :mod:`repro.runtime.backends` — one dispatch interface over the
  functional vRDA executor and the analytic CPU / GPU / Aurochs baselines.
* :mod:`repro.runtime.scheduler` — shards batch costs across N simulated
  workers using the admission policies shared with the Figure 14 simulator.
* :mod:`repro.runtime.trace` — synthetic repeated-app request traces.

``python -m repro.runtime`` replays a trace end to end and reports
throughput, per-backend counts, cache hit rates, and worker shares.
"""

from repro.runtime.backends import (
    AurochsBaselineBackend,
    Backend,
    BackendError,
    BackendRegistry,
    BackendResult,
    CPUBaselineBackend,
    FunctionalVRDABackend,
    GPUBaselineBackend,
)
from repro.runtime.cache import CacheStats, LRUCache, ProgramCache, program_key
from repro.runtime.engine import Batch, Engine, EngineError, Request, Response
from repro.runtime.scheduler import ScheduleReport, ShardScheduler, WorkerReport
from repro.runtime.trace import DEFAULT_TRACE_APPS, TraceConfig, synthetic_trace

__all__ = [
    "AurochsBaselineBackend",
    "Backend",
    "BackendError",
    "BackendRegistry",
    "BackendResult",
    "Batch",
    "CPUBaselineBackend",
    "CacheStats",
    "DEFAULT_TRACE_APPS",
    "Engine",
    "EngineError",
    "FunctionalVRDABackend",
    "GPUBaselineBackend",
    "LRUCache",
    "ProgramCache",
    "Request",
    "Response",
    "ScheduleReport",
    "ShardScheduler",
    "TraceConfig",
    "WorkerReport",
    "program_key",
    "synthetic_trace",
]
