"""Multi-worker sharding for served batches.

The paper balances work across replicate regions with a hoisted allocation
buffer (Figure 14); a serving deployment faces the same problem one level
up: shard request batches across ``N`` vRDA workers whose relative service
times may differ.  :class:`ShardScheduler` reuses the exact admission machinery of
:mod:`repro.sim.policies` — so its ``hoisted-buffer`` mode provably matches
the Figure 14 :class:`~repro.sim.load_balance.LoadBalanceSimulator` — and
adds the serving-side bookkeeping: per-worker request counts, busy time,
and simulated makespan for a stream of batch costs.

Workers here are *simulated* shards: each admitted task occupies one of the
worker's buffer slots for ``cost * worker_scale`` seconds of simulated
time.  Costs normally come from the engine's modeled per-request latency
(``Response.modeled_runtime_s``), keeping the paper's
``runtime = size / throughput + init`` model in the loop end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Union

from repro.sim.policies import AdmissionPolicy, make_policy, run_admission


@dataclass
class WorkerReport:
    """Serving-side view of one simulated worker shard."""

    index: int
    #: Relative service time per unit cost (>1 means a slower worker).
    scale: float
    tasks: int
    busy_time_s: float
    share_percent: float


@dataclass
class ScheduleReport:
    """Outcome of sharding one task stream across the worker pool."""

    policy: str
    workers: List[WorkerReport]
    assignments: List[int] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        """Simulated completion time: the busiest worker's drain time."""
        return max((w.busy_time_s for w in self.workers), default=0.0)

    @property
    def total_tasks(self) -> int:
        """Requests admitted across every worker."""
        return sum(w.tasks for w in self.workers)

    def imbalance(self) -> float:
        """Busiest / average busy time (1.0 means perfectly balanced)."""
        busy = [w.busy_time_s for w in self.workers]
        mean = sum(busy) / len(busy) if busy else 0.0
        return max(busy) / mean if mean > 0 else 1.0

    def as_rows(self) -> List[dict]:
        """Per-worker table rows (the CLI/stats wire form)."""
        return [{
            "worker": w.index,
            "scale": w.scale,
            "tasks": w.tasks,
            "busy_s": round(w.busy_time_s, 6),
            "share_%": round(w.share_percent, 2),
        } for w in self.workers]

    def to_dict(self) -> dict:
        """JSON-serializable form (server stats / benchmark records)."""
        return {
            "policy": self.policy,
            "makespan_s": self.makespan_s,
            "imbalance": round(self.imbalance(), 4),
            "total_tasks": self.total_tasks,
            "workers": self.as_rows(),
            "assignments": list(self.assignments),
        }


class ShardScheduler:
    """Dispatches task costs across N simulated workers under a policy."""

    def __init__(self, workers: int = 4, buffers_per_worker: int = 8,
                 policy: Union[str, AdmissionPolicy] = "least-loaded",
                 worker_scales: Optional[Sequence[float]] = None):
        if workers <= 0:
            raise ValueError("need at least one worker")
        if worker_scales is not None and len(worker_scales) != workers:
            raise ValueError("worker_scales must have one entry per worker")
        self.workers = workers
        self.buffers_per_worker = max(1, buffers_per_worker)
        self.policy = policy
        self.worker_scales = (list(worker_scales) if worker_scales is not None
                              else [1.0] * workers)

    def set_worker_scales(self, scales: Sequence[float]) -> None:
        """Replace the per-worker scales before the next dispatch.

        This is how measured-rate dispatch closes the loop: the pool turns
        each worker's EWMA service rate (reported in its snapshot) into a
        relative scale via :func:`repro.sim.policies.scales_from_rates` and
        installs them here, so slower workers accrue proportionally more
        pending service time and are admitted less work.
        """
        if len(scales) != self.workers:
            raise ValueError("worker_scales must have one entry per worker")
        self.worker_scales = [float(s) for s in scales]

    def dispatch(self, costs: Sequence[float],
                 keys: Optional[Sequence[Hashable]] = None) -> ScheduleReport:
        """Assign each task cost to a worker; returns the full report.

        ``keys`` aligns one content key per task for key-aware policies
        (``cache-affinity``); other policies ignore them.  Passing a policy
        *instance* to the constructor keeps its residency model alive
        across dispatch calls — that is how the worker pool feeds real
        per-worker cache reports back into admission.
        """
        policy = make_policy(self.policy)
        result = run_admission(
            task_costs=list(costs),
            worker_scales=self.worker_scales,
            buffers=[self.buffers_per_worker] * self.workers,
            policy=policy,
            task_keys=list(keys) if keys is not None else None,
        )
        shares = result.shares_percent()
        reports = [WorkerReport(index=w, scale=self.worker_scales[w],
                                tasks=result.counts[w],
                                busy_time_s=result.busy_time[w],
                                share_percent=shares[w])
                   for w in range(self.workers)]
        return ScheduleReport(policy=policy.name, workers=reports,
                              assignments=result.assignments)

    def dispatch_responses(self, responses: Sequence[object],
                           keys: Optional[Sequence[Hashable]] = None
                           ) -> ScheduleReport:
        """Shard served responses by their modeled latency.

        Accepts any objects with a ``modeled_runtime_s`` attribute (i.e.
        :class:`repro.runtime.engine.Response`); errored responses with no
        modeled cost are charged a nominal epsilon so they still count.
        """
        costs = [max(getattr(r, "modeled_runtime_s", 0.0), 1e-9)
                 for r in responses]
        return self.dispatch(costs, keys=keys)
