"""Cache-aware worker pool: process-parallel execution of engine batches.

:class:`WorkerPool` is the layer between the engine's batch former and its
batch executor.  A front :class:`~repro.runtime.engine.Engine` coalesces
queued requests into per-program batches exactly as a single-process engine
would; the pool then *dispatches* whole batches across ``N`` workers, each
of which owns a private :class:`~repro.runtime.engine.Engine` with its own
:class:`~repro.runtime.cache.ProgramCache` and memoized-response tier.

Two execution modes share one dispatch path:

* ``process`` — each worker is a ``multiprocessing`` child driven over a
  pipe; all workers execute their batch lists concurrently (one scatter,
  one gather per flush, so the pipe protocol cannot deadlock).
* ``inline`` — each worker is an in-process engine executed sequentially in
  dispatch order.  Same batches, same per-worker caches, same responses:
  the deterministic fallback tests and CI rely on.

Dispatch itself runs through :class:`~repro.runtime.scheduler.ShardScheduler`
with the batch's content-addressed program key as the affinity key.  Under
``cache-affinity`` (:class:`repro.sim.policies.CacheAffinityPolicy`) a batch
goes to a free worker whose cache already holds its program; after every
flush the workers report their actual cache residency back, and the
dispatcher seeds the policy with those reports before the next round — the
feedback loop the ROADMAP calls "route requests to the worker that has the
program resident".

The pool is **self-healing**: worker death is a steady-state event, not a
crash.  A dead worker (EOF or broken pipe) or a hung one (no flush reply
inside a deadline derived from its measured EWMA service rate) is respawned
in place with its same :class:`WorkerConfig`, and the batches it was
holding are requeued onto the surviving workers *within the same flush* —
responses are deterministic and the memoized-response tier is per-worker,
so replaying a batch reproduces the exact responses a fault-free run would
have produced.  Cache-affinity residency is re-seeded from the lost
worker's last snapshot, so routing stays stable while the respawned child
rewarms (its disk tier, when configured, survives the crash).  Repeated
failure trips a circuit breaker — more than ``max_worker_restarts``
respawns inside ``restart_window_s`` closes the pool and raises
:class:`PoolError`, the unrecoverable-death signal the serving layer turns
into a clean shutdown.  :class:`~repro.runtime.faults.FaultPlan` injection
(``WorkerConfig.fault_plan``) exercises every one of these paths on demand.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.columnar import resolve_executor
from repro.errors import ReproError
from repro.runtime.cache import CacheStats, ProgramCache
from repro.runtime.engine import Batch, Engine, Request, Response
from repro.runtime.faults import FaultInjector, FaultPlan, InjectedFault
from repro.runtime.logs import event, get_logger
from repro.runtime.scheduler import ScheduleReport, ShardScheduler
from repro.runtime.telemetry import MetricsRegistry
from repro.sim.policies import (
    AdmissionPolicy,
    CacheAffinityPolicy,
    ServiceRateEstimator,
    make_policy,
    scales_from_rates,
)

POOL_MODES = ("inline", "process")

_LOG = get_logger(__name__)


class PoolError(ReproError):
    """The pool was misconfigured or died unrecoverably (breaker open)."""


class _WorkerFailure(Exception):
    """One worker was lost (died, hung, or pipe broke); the pool recovers.

    ``cause`` classifies the loss for the structured restart log: ``eof``
    (the child died), ``hang`` (no reply inside the deadline), ``pipe``
    (the parent-side pipe broke), or ``injected`` (inline fault plan).
    """

    def __init__(self, message: str, cause: str = "unknown"):
        super().__init__(message)
        self.cause = cause


@dataclass
class WorkerConfig:
    """Everything one pool worker needs to build its private engine."""

    cache_capacity: int = 64
    result_cache_capacity: int = 512
    max_batch_size: int = 16
    init_latency_s: float = 1e-4
    #: Concurrent execution *inside* one batch (the engine's thread fan-out).
    intra_batch_workers: int = 1
    #: Root of the on-disk program-cache tier; each worker pickles into its
    #: own subdirectory so concurrent processes never race on one file.
    disk_cache_dir: Optional[str] = None
    #: Artificial per-request service delay (seconds); a test/benchmark knob
    #: for skewed-worker experiments, never set in production configs.
    service_delay_s: float = 0.0
    #: Functional interpreter for the vrda backend: "columnar", "token", or
    #: None/"auto" (columnar when numpy is available).  Picklable, so process
    #: workers inherit the choice across the spawn boundary.
    executor: Optional[str] = None
    #: Injected faults for chaos tests and the recovery benchmark; picklable
    #: like every other field, so process workers arm their share after the
    #: spawn.  ``None`` (production) injects nothing.
    fault_plan: Optional[FaultPlan] = None
    #: ``False`` nulls out the worker engine's metrics registry entirely —
    #: the telemetry-off baseline of the overhead benchmark.
    telemetry: bool = True

    def build_engine(self, index: int = 0) -> Engine:
        """Construct this worker's private engine (one per worker index)."""
        return Engine(
            program_cache=ProgramCache(
                capacity=self.cache_capacity, disk_dir=self.disk_dir(index)
            ),
            result_cache_capacity=self.result_cache_capacity,
            max_batch_size=self.max_batch_size,
            init_latency_s=self.init_latency_s,
            intra_batch_workers=self.intra_batch_workers,
            executor=self.executor,
            metrics=MetricsRegistry(enabled=self.telemetry),
        )

    def disk_dir(self, index: int) -> Optional[Path]:
        """This worker's private on-disk cache directory (None = memory only)."""
        if self.disk_cache_dir is None:
            return None
        return Path(self.disk_cache_dir) / f"worker-{index}"

    def build_injector(self, index: int, inline: bool) -> Optional[FaultInjector]:
        """The fault-injection arm for one worker (None when no faults)."""
        if self.fault_plan is None or not self.fault_plan.for_worker(index):
            return None
        return FaultInjector(
            self.fault_plan, index, inline=inline, disk_dir=self.disk_dir(index)
        )

    def respawned(self, index: int) -> "WorkerConfig":
        """The config a respawned worker restarts with.

        Identical except that already-consumed one-shot faults for this
        worker are stripped (see :meth:`FaultPlan.respawn_plan`), so one
        injected kill exercises exactly one recovery.
        """
        if self.fault_plan is None:
            return self
        return replace(self, fault_plan=self.fault_plan.respawn_plan(index))


@dataclass
class WorkerSnapshot:
    """One worker's cumulative state, reported back after each flush."""

    index: int
    batches: int
    requests: int
    program_cache: CacheStats
    result_cache: CacheStats
    resident_keys: List[str] = field(default_factory=list)
    #: Cumulative wall-clock seconds this worker spent executing batches.
    busy_s: float = 0.0
    #: EWMA of measured requests/second across flushes (0.0 = unmeasured).
    service_rate_rps: float = 0.0
    #: The worker engine's metrics-registry snapshot (merged pool-side into
    #: `/metrics`; counters restart from zero when the worker respawns).
    #: Excluded from :meth:`to_dict` — label keys are tuples, not JSON.
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (stats endpoints and the CLI report)."""
        return {
            "worker": self.index,
            "batches": self.batches,
            "requests": self.requests,
            "program_cache": self.program_cache.to_dict(),
            "result_cache": self.result_cache.to_dict(),
            "resident_programs": len(self.resident_keys),
            "busy_s": round(self.busy_s, 6),
            "service_rate_rps": round(self.service_rate_rps, 2),
        }


def _crash_responses(batch: Batch, error: Exception) -> List[Response]:
    """Error responses for every entry of a batch whose worker blew up."""
    return [
        Response(
            request_id=request_id,
            app=request.app,
            backend=request.backend,
            ok=False,
            error=f"worker failure: {error}",
            batch_id=batch.batch_id,
            trace={"trace_id": request.trace_id} if request.trace else None,
        )
        for request_id, request in batch.entries
    ]


def _run_batches(
    engine: Engine,
    batches: Sequence[Batch],
    service_delay_s: float = 0.0,
    injector: Optional[FaultInjector] = None,
) -> Tuple[List[Response], int, float]:
    """Execute a worker's batch list, timing its wall clock.

    Unexpected errors become responses; returns ``(responses, served,
    elapsed_s)`` so the caller can fold the measurement into its service-rate
    estimate.  ``service_delay_s`` sleeps per served request — the
    skewed-worker knob, charged inside the measured window on purpose.
    ``injector`` is consulted at batch boundaries; an injected crash
    propagates (it must look like worker death, not an error response).
    """
    responses: List[Response] = []
    served = 0
    started = time.perf_counter()
    for batch in batches:
        if injector is not None:
            injector.on_batch_start()
        served += len(batch)
        try:
            responses.extend(engine.execute_batch(batch))
        except InjectedFault:
            raise
        except Exception as error:  # noqa: BLE001 - a worker must not die
            responses.extend(_crash_responses(batch, error))
        if injector is not None:
            injector.on_batch_done()
        if service_delay_s > 0.0:
            time.sleep(service_delay_s * len(batch))
    return responses, served, time.perf_counter() - started


def _snapshot(
    index: int,
    engine: Engine,
    batches: int,
    requests: int,
    busy_s: float = 0.0,
    service_rate_rps: float = 0.0,
) -> WorkerSnapshot:
    return WorkerSnapshot(
        index=index,
        batches=batches,
        requests=requests,
        program_cache=engine.program_cache_stats.snapshot(),
        result_cache=engine.result_cache_stats.snapshot(),
        resident_keys=engine.program_cache.resident_keys(),
        busy_s=busy_s,
        service_rate_rps=service_rate_rps,
        metrics=engine.metrics_snapshot(),
    )


def _process_worker_main(connection, index: int, config: WorkerConfig) -> None:
    """Entry point of one pool child: serve ``run`` messages until ``stop``."""
    engine = config.build_engine(index)
    injector = config.build_injector(index, inline=False)
    batches_done = 0
    requests_done = 0
    busy_s = 0.0
    estimator = ServiceRateEstimator()
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message[0] == "stop":
            break
        batches = message[1]
        responses, served, elapsed = _run_batches(
            engine, batches, config.service_delay_s, injector
        )
        batches_done += len(batches)
        requests_done += served
        busy_s += elapsed
        estimator.observe(served, elapsed)
        snapshot = _snapshot(
            index, engine, batches_done, requests_done, busy_s, estimator.rate
        )
        if injector is None or injector.before_reply():
            connection.send((responses, snapshot))
    connection.close()


class _InlineWorker:
    """Deterministic in-process worker: same engine, no child process."""

    def __init__(self, index: int, config: WorkerConfig):
        self.index = index
        self.config = config
        self._reset()

    def _reset(self) -> None:
        self.engine = self.config.build_engine(self.index)
        self._injector = self.config.build_injector(self.index, inline=True)
        self._batches = 0
        self._requests = 0
        self._busy_s = 0.0
        self._estimator = ServiceRateEstimator()
        self._pending: Optional[Tuple[List[Response], WorkerSnapshot]] = None

    def submit(self, batches: Sequence[Batch]) -> None:
        """Execute the batches synchronously; results wait for collect()."""
        try:
            responses, served, elapsed = _run_batches(
                self.engine, batches, self.config.service_delay_s, self._injector
            )
            if self._injector is not None:
                # Process-worker parity: a kill/hang due right after the
                # flush's work ("die before the reply") fires here too.
                # Reply-pipe faults have nothing to act on inline.
                self._injector.before_reply()
        except InjectedFault as fault:
            self._pending = None
            raise _WorkerFailure(str(fault), cause="injected") from fault
        self._batches += len(batches)
        self._requests += served
        self._busy_s += elapsed
        self._estimator.observe(served, elapsed)
        snapshot = _snapshot(
            self.index,
            self.engine,
            self._batches,
            self._requests,
            self._busy_s,
            self._estimator.rate,
        )
        self._pending = (responses, snapshot)

    def collect(
        self, deadline_s: Optional[float] = None
    ) -> Tuple[List[Response], WorkerSnapshot]:
        """Return (and clear) the responses/snapshot of the last submit().

        ``deadline_s`` is accepted for interface parity with the process
        worker; an inline worker already finished inside submit().
        """
        assert self._pending is not None, "collect() before submit()"
        pending, self._pending = self._pending, None
        return pending

    def respawn(self) -> None:
        """Rebuild the engine in place — the inline analogue of a new child.

        Counters, caches, and the rate estimator restart from zero exactly
        as a fresh process would; consumed one-shot faults stay consumed.
        """
        self.config = self.config.respawned(self.index)
        self._reset()

    def stop(self) -> None:
        """Nothing to tear down for an in-process worker."""
        pass


class _ProcessWorker:
    """One multiprocessing child plus the parent-side pipe to drive it."""

    def __init__(self, index: int, config: WorkerConfig, context):
        self.index = index
        self.config = config
        self.context = context
        self._spawn()

    def _spawn(self) -> None:
        self.connection, child = self.context.Pipe()
        self.process = self.context.Process(
            target=_process_worker_main,
            args=(child, self.index, self.config),
            daemon=True,
        )
        self.process.start()
        child.close()

    def submit(self, batches: Sequence[Batch]) -> None:
        """Ship the batches to the child; raises if the child is gone."""
        try:
            self.connection.send(("run", batches))
        except (BrokenPipeError, OSError) as error:
            raise _WorkerFailure(f"worker {self.index} is gone: {error}", cause="pipe")

    def collect(
        self, deadline_s: Optional[float] = None
    ) -> Tuple[List[Response], WorkerSnapshot]:
        """Block for the child's reply; raises if it died or blew a deadline.

        ``deadline_s`` bounds the wait: a child that neither replies nor
        dies inside it is declared hung (the caller kills and respawns it,
        so a late reply can never desynchronize the pipe).  ``None`` waits
        forever, the pre-supervision behaviour.
        """
        try:
            if deadline_s is not None and not self.connection.poll(deadline_s):
                raise _WorkerFailure(
                    f"worker {self.index} hung: no flush reply within "
                    f"{deadline_s:.1f}s",
                    cause="hang",
                )
            return self.connection.recv()
        except EOFError as error:
            raise _WorkerFailure(
                f"worker {self.index} died mid-batch", cause="eof"
            ) from error
        except OSError as error:
            raise _WorkerFailure(
                f"worker {self.index} pipe failed: {error}", cause="pipe"
            )

    def respawn(self) -> None:
        """Replace the child with a fresh one on a fresh pipe, in place.

        The old child is killed outright (it is dead, hung, or poisoned —
        never worth a graceful stop), its pipe is closed so no stale reply
        can ever be read, and the new child starts from the same config
        with consumed one-shot faults stripped.
        """
        try:
            self.connection.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10)
        self.config = self.config.respawned(self.index)
        self._spawn()

    def stop(self) -> None:
        """Stop the child — politely, then terminate, then kill.

        Escalation never leaves a zombie: the process is always joined
        before the pipe closes, and a child that survives ``terminate()``
        (e.g. one wedged in uninterruptible state) gets ``kill()``.
        """
        try:
            self.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.connection.close()


@dataclass
class PoolReport:
    """Everything one flush produced: responses plus dispatch evidence."""

    mode: str
    responses: List[Response]
    workers: List[WorkerSnapshot]
    schedule: ScheduleReport
    #: Workers respawned during this flush (0 on the fault-free path).
    worker_restarts: int = 0
    #: Batches replayed onto survivors after a worker loss, this flush.
    replayed_batches: int = 0

    @property
    def policy(self) -> str:
        """Name of the admission policy that dispatched this flush."""
        return self.schedule.policy

    def aggregate_program_stats(self) -> CacheStats:
        """Program-cache counters summed across every worker."""
        return CacheStats.merged(w.program_cache for w in self.workers)

    def aggregate_result_stats(self) -> CacheStats:
        """Result-cache counters summed across every worker."""
        return CacheStats.merged(w.result_cache for w in self.workers)

    def program_hit_rate(self) -> float:
        """Pool-wide program-cache hit rate (the affinity headline metric)."""
        return self.aggregate_program_stats().hit_rate

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable flush summary (CLI + stats wire form)."""
        ok = sum(1 for r in self.responses if r.error is None)
        return {
            "mode": self.mode,
            "policy": self.policy,
            "responses": len(self.responses),
            "ok": ok,
            "errors": len(self.responses) - ok,
            "worker_restarts": self.worker_restarts,
            "replayed_batches": self.replayed_batches,
            "program_cache": self.aggregate_program_stats().to_dict(),
            "result_cache": self.aggregate_result_stats().to_dict(),
            "workers": [w.to_dict() for w in self.workers],
            "schedule": self.schedule.to_dict(),
        }


class WorkerPool:
    """Executes engine batches across N cache-owning, supervised workers.

    The pool is long-lived: submit/flush as many rounds as you like (the
    server does exactly that), then :meth:`close` it — or use it as a
    context manager.  ``policy`` accepts any :data:`repro.sim.policies`
    name or instance; ``cache-affinity`` (the default) is the one that
    exploits the per-worker program caches.

    Worker loss is masked, not fatal: a dead or hung worker is respawned
    in place and its batches are requeued within the same flush (see the
    module docstring for the recovery contract).  The supervision knobs:

    * ``max_worker_restarts`` / ``restart_window_s`` — the circuit
      breaker.  More than this many respawns inside the window closes the
      pool and raises :class:`PoolError`; ``0`` disables self-healing
      entirely (any worker loss is immediately fatal).
    * ``max_batch_replays`` — a batch that keeps killing its worker (a
      poison batch) is converted to per-request error responses after this
      many replays instead of looping.
    * ``hang_deadline_factor`` / ``hang_deadline_min_s`` — a process
      worker whose flush reply takes longer than ``factor ×`` its expected
      service time (from its measured EWMA rate), floored at the minimum,
      is declared hung and recovered.  ``hang_cold_deadline_s`` bounds
      workers with no measured rate yet (fresh or just respawned);
      ``None`` disables hang detection for them.
    * ``fault_plan`` — injected faults for chaos testing (see
      :mod:`repro.runtime.faults`).
    """

    def __init__(
        self,
        workers: int = 4,
        mode: str = "inline",
        policy: Union[str, AdmissionPolicy] = "cache-affinity",
        cache_capacity: int = 64,
        result_cache_capacity: int = 512,
        max_batch_size: int = 16,
        buffers_per_worker: int = 8,
        init_latency_s: float = 1e-4,
        intra_batch_workers: int = 1,
        rate_dispatch: bool = False,
        service_delays: Optional[Sequence[float]] = None,
        disk_cache_dir: Optional[str] = None,
        mp_context: str = "spawn",
        executor: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_worker_restarts: int = 5,
        restart_window_s: float = 30.0,
        max_batch_replays: int = 3,
        hang_deadline_factor: float = 8.0,
        hang_deadline_min_s: float = 30.0,
        hang_cold_deadline_s: Optional[float] = 120.0,
        telemetry: bool = True,
    ):
        if workers <= 0:
            raise PoolError("need at least one pool worker")
        if mode not in POOL_MODES:
            raise PoolError(f"unknown pool mode '{mode}'; choose from {POOL_MODES}")
        if service_delays is not None and len(service_delays) != workers:
            raise PoolError("service_delays must have one entry per worker")
        if max_worker_restarts < 0:
            raise PoolError("max_worker_restarts must be >= 0")
        if fault_plan is not None:
            for fault in fault_plan.faults:
                if fault.worker >= workers:
                    raise PoolError(
                        f"fault plan targets worker {fault.worker} but the "
                        f"pool has only {workers} workers"
                    )
        # Validate eagerly so a bad --executor flag fails here, in the parent
        # process, instead of inside every spawned worker.
        resolve_executor(executor)
        self.workers = workers
        self.mode = mode
        #: Dispatch on measured per-worker service rates: before each flush
        #: the workers' EWMA rates (from their snapshots) are converted to
        #: relative scales and installed in the shard scheduler.
        self.rate_dispatch = rate_dispatch
        self.max_worker_restarts = max_worker_restarts
        self.restart_window_s = restart_window_s
        self.max_batch_replays = max(0, max_batch_replays)
        self.hang_deadline_factor = hang_deadline_factor
        self.hang_deadline_min_s = hang_deadline_min_s
        self.hang_cold_deadline_s = hang_cold_deadline_s
        #: Cumulative fault counters (never reset while the pool lives).
        self.worker_restarts = 0
        self.replayed_batches = 0
        self._restart_times: List[float] = []
        #: Pool-level metric families (worker engines keep their own
        #: registries and ship snapshots back with every flush reply).
        self.metrics = MetricsRegistry(enabled=telemetry)
        self._m_flushes = self.metrics.counter(
            "pool_flushes_total", "Pool flush rounds completed."
        )
        self._m_flush_s = self.metrics.histogram(
            "pool_flush_seconds", "Per-flush wall clock (dispatch to gather)."
        )
        self._m_imbalance = self.metrics.gauge(
            "pool_dispatch_imbalance",
            "Last flush's max/mean worker-load ratio (1.0 = even).",
        )
        self.metrics.add_collector(self._collect_metrics)
        self.config = WorkerConfig(
            cache_capacity=cache_capacity,
            result_cache_capacity=result_cache_capacity,
            max_batch_size=max_batch_size,
            init_latency_s=init_latency_s,
            intra_batch_workers=intra_batch_workers,
            disk_cache_dir=disk_cache_dir,
            executor=executor,
            fault_plan=fault_plan,
            telemetry=telemetry,
        )
        if service_delays is None:
            self._worker_configs = [self.config] * workers
        else:
            self._worker_configs = [
                replace(self.config, service_delay_s=delay)
                for delay in service_delays
            ]
        self._policy = (
            CacheAffinityPolicy(cache_capacity=cache_capacity)
            if policy == "cache-affinity"
            else make_policy(policy)
        )
        self._scheduler = ShardScheduler(
            workers=workers,
            buffers_per_worker=buffers_per_worker,
            policy=self._policy,
        )
        # The front engine only queues and coalesces; capacity-0 caches keep
        # it from ever compiling or memoizing anything itself.
        self._front = Engine(
            program_cache=ProgramCache(capacity=0),
            result_cache_capacity=0,
            max_batch_size=max_batch_size,
        )
        if mode == "process":
            context = multiprocessing.get_context(mp_context)
            self._workers = [
                _ProcessWorker(i, self._worker_configs[i], context)
                for i in range(workers)
            ]
        else:
            self._workers = [
                _InlineWorker(i, self._worker_configs[i]) for i in range(workers)
            ]
        self._residency: Optional[List[List[str]]] = None
        # Idle workers are skipped per flush; their last snapshot (initially
        # an empty one) still describes their caches exactly.
        self.last_snapshots: List[WorkerSnapshot] = [
            WorkerSnapshot(
                index=i,
                batches=0,
                requests=0,
                program_cache=CacheStats(),
                result_cache=CacheStats(),
            )
            for i in range(workers)
        ]
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent, and the pool is unusable after."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving ------------------------------------------------------------

    def submit(self, request: Request) -> int:
        """Queue one request; returns its id (also its response order)."""
        return self._front.submit(request)

    def process(self, requests: Sequence[Request]) -> PoolReport:
        """Submit and serve a whole trace; responses in submission order."""
        for request in requests:
            self.submit(request)
        return self.flush()

    def flush(self) -> PoolReport:
        """Dispatch everything queued across the pool and gather responses.

        Worker loss during the flush is masked: the lost worker is
        respawned and its batches are redispatched onto the pool within
        this same call, so the returned responses match a fault-free run
        (deterministic replay).  Only a tripped circuit breaker, a failed
        respawn, or an exhausted poison batch surfaces — the first two as
        :class:`PoolError` after closing the pool, the last as per-request
        error responses.
        """
        if self._closed:
            raise PoolError("pool is closed")
        flush_started = time.perf_counter()
        batches = self._front.coalesce()
        failed = self._front.drain_failed()
        if isinstance(self._policy, CacheAffinityPolicy) and self._residency:
            self._policy.seed(self._residency)
        if self.rate_dispatch:
            rates = [s.service_rate_rps for s in self.last_snapshots]
            self._scheduler.set_worker_scales(scales_from_rates(rates))
        schedule = self._scheduler.dispatch(
            [float(len(batch)) for batch in batches],
            keys=[batch.program_key for batch in batches],
        )
        # Idle workers (no batches this flush) are skipped entirely: their
        # caches cannot have changed, so their previous snapshot still holds
        # and the single-request path costs one worker round-trip, not N.
        pending: Dict[int, List[Batch]] = {}
        for batch, worker in zip(batches, schedule.assignments):
            pending.setdefault(worker, []).append(batch)
        responses: List[Response] = list(failed)
        snapshots = list(self.last_snapshots)
        flush_restarts = 0
        flush_replays = 0
        replay_counts: Dict[int, int] = {}
        restarted: Set[int] = set()
        while pending:
            submitted: Dict[int, List[Batch]] = {}
            lost: List[Tuple[int, List[Batch], _WorkerFailure]] = []
            for index in sorted(pending):
                try:
                    self._workers[index].submit(pending[index])
                    submitted[index] = pending[index]
                except _WorkerFailure as failure:
                    lost.append((index, pending[index], failure))
            for index, assigned in submitted.items():
                deadline = self._collect_deadline_s(
                    index, assigned, cold=index in restarted
                )
                try:
                    worker_responses, snapshot = self._workers[index].collect(
                        deadline
                    )
                    for response in worker_responses:
                        if response.trace is not None:
                            response.trace["worker"] = index
                    responses.extend(worker_responses)
                    snapshots[index] = snapshot
                except _WorkerFailure as failure:
                    lost.append((index, assigned, failure))
            pending = {}
            if not lost:
                break
            retry: List[Batch] = []
            for index, assigned, failure in lost:
                reason = str(failure)
                self._recover_worker(index, reason, failure.cause)
                flush_restarts += 1
                restarted.add(index)
                for batch in assigned:
                    replays = replay_counts.get(batch.batch_id, 0) + 1
                    replay_counts[batch.batch_id] = replays
                    if replays > self.max_batch_replays:
                        # A poison batch: it has now taken down a worker on
                        # every replay.  Answer it with error responses so
                        # the rest of the flush can complete.
                        event(
                            _LOG,
                            logging.ERROR,
                            "poison batch abandoned",
                            batch=batch.batch_id,
                            replays=self.max_batch_replays,
                            worker=index,
                            cause=failure.cause,
                        )
                        responses.extend(
                            _crash_responses(
                                batch,
                                PoolError(
                                    f"batch abandoned after "
                                    f"{self.max_batch_replays} replays "
                                    f"(last failure: {reason})"
                                ),
                            )
                        )
                    else:
                        retry.append(batch)
                        flush_replays += 1
            if retry:
                # Requeue onto the (now fully respawned) pool through the
                # same affinity-aware scheduler as the original dispatch.
                redispatch = self._scheduler.dispatch(
                    [float(len(batch)) for batch in retry],
                    keys=[batch.program_key for batch in retry],
                )
                for batch, worker in zip(retry, redispatch.assignments):
                    pending.setdefault(worker, []).append(batch)
        responses.sort(key=lambda r: r.request_id)
        # Snapshots of respawned workers that served no retry batch are
        # deliberately left at their pre-crash value: the residency seed
        # keeps routing their programs to the same index while the fresh
        # child rewarms (its disk tier, if any, survived the crash).
        self._residency = [list(s.resident_keys) for s in snapshots]
        self.last_snapshots = snapshots
        self.replayed_batches += flush_replays
        self._m_flushes.inc()
        self._m_flush_s.observe(time.perf_counter() - flush_started)
        if batches:
            self._m_imbalance.set(schedule.imbalance())
        return PoolReport(
            mode=self.mode,
            responses=responses,
            workers=snapshots,
            schedule=schedule,
            worker_restarts=flush_restarts,
            replayed_batches=flush_replays,
        )

    # -- supervision --------------------------------------------------------

    def _collect_deadline_s(
        self, index: int, batches: Sequence[Batch], cold: bool = False
    ) -> Optional[float]:
        """Reply deadline for one worker's flush (None = wait forever).

        Derived from the worker's measured EWMA service rate: ``factor ×``
        the expected service time of its assigned requests, floored at
        ``hang_deadline_min_s``.  Workers with no measurement yet — fresh,
        or just respawned (``cold``) and facing recompiles — get the
        generous ``hang_cold_deadline_s`` instead.  Inline workers finish
        inside submit(), so only process mode has deadlines at all.
        """
        if self.mode != "process":
            return None
        rate = self.last_snapshots[index].service_rate_rps
        if cold or rate <= 0.0:
            return self.hang_cold_deadline_s
        requests = sum(len(batch) for batch in batches)
        return max(
            self.hang_deadline_min_s,
            self.hang_deadline_factor * requests / rate,
        )

    def _recover_worker(self, index: int, reason: str, cause: str) -> None:
        """Respawn one lost worker, or trip the breaker and close the pool.

        The breaker opens when this loss would exceed
        ``max_worker_restarts`` respawns inside ``restart_window_s`` — the
        pool is then closed and :class:`PoolError` raised, which the
        serving layer treats as unrecoverable (clean shutdown for an
        external supervisor).  A respawn that itself fails is equally
        fatal.  Every outcome emits a structured log record carrying the
        worker id, the fault cause (``eof`` vs ``hang`` vs ``pipe``), and
        the replay count, so recoveries are debuggable after the fact.
        """
        now = time.monotonic()
        self._restart_times = [
            t for t in self._restart_times if now - t < self.restart_window_s
        ]
        if len(self._restart_times) >= self.max_worker_restarts:
            event(
                _LOG,
                logging.ERROR,
                "circuit breaker open",
                worker=index,
                cause=cause,
                restarts_in_window=len(self._restart_times),
                window_s=self.restart_window_s,
                reason=reason,
            )
            self.close()
            raise PoolError(
                f"worker {index} lost ({reason}) after "
                f"{len(self._restart_times)} respawns within "
                f"{self.restart_window_s:.0f}s: circuit breaker open, "
                f"pool closed"
            )
        try:
            self._workers[index].respawn()
        except Exception as error:  # noqa: BLE001 - a failed respawn is fatal
            event(
                _LOG,
                logging.ERROR,
                "worker respawn failed",
                worker=index,
                cause=cause,
                error=str(error),
            )
            self.close()
            raise PoolError(f"could not respawn worker {index}: {error}")
        self._restart_times.append(now)
        self.worker_restarts += 1
        event(
            _LOG,
            logging.WARNING,
            "worker restarted",
            worker=index,
            cause=cause,
            reason=reason,
            restarts_in_window=len(self._restart_times),
            replayed_batches_total=self.replayed_batches,
        )

    def recent_restarts(self) -> int:
        """Worker respawns inside the current breaker window.

        Nonzero means "degraded": the pool is serving, but capacity was
        recently lost and caches are rewarming.  Health endpoints report
        exactly this.
        """
        now = time.monotonic()
        return sum(
            1 for t in self._restart_times if now - t < self.restart_window_s
        )

    def fault_counters(self) -> Dict[str, int]:
        """Cumulative fault counters (lock-free reads for health checks)."""
        return {
            "worker_restarts": self.worker_restarts,
            "replayed_batches": self.replayed_batches,
        }

    # -- telemetry ----------------------------------------------------------

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Fold pool fault counters into metric families (at snapshot)."""
        restarts = registry.counter(
            "pool_worker_restarts_total", "Workers respawned after a loss."
        )
        restarts.set_total(self.worker_restarts)
        replays = registry.counter(
            "pool_replayed_batches_total",
            "Batches requeued onto survivors after a worker loss.",
        )
        replays.set_total(self.replayed_batches)
        resident = registry.gauge(
            "pool_resident_programs", "Programs resident across worker caches."
        )
        resident.set(sum(len(s.resident_keys) for s in self.last_snapshots))

    def metrics_snapshots(self) -> List[Dict[str, Any]]:
        """Every registry snapshot this pool can see (pool + worker engines).

        Worker snapshots are the latest each worker shipped with a flush
        reply; a worker respawned since then reports its fresh (reset)
        counters on its next flush — the standard Prometheus restart
        semantics.
        """
        snapshots = [self.metrics.snapshot()]
        snapshots.extend(s.metrics for s in self.last_snapshots if s.metrics)
        return snapshots

    # -- stats --------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed (the front engine queue)."""
        return self._front.pending

    def measured_rates(self) -> List[float]:
        """Per-worker EWMA service rates from the latest snapshots.

        The admission layer aggregates these (``pool_drain_rps``) into the
        drain estimate that sizes its in-flight token budget; 0.0 entries
        mean "never measured".
        """
        return [s.service_rate_rps for s in self.last_snapshots]

    def stats_row(self) -> Dict[str, Any]:
        """Cumulative pool stats from the most recent flush's snapshots."""
        return {
            "mode": self.mode,
            "policy": getattr(self._policy, "name", str(self._policy)),
            "intra_batch_workers": self.config.intra_batch_workers,
            "executor": resolve_executor(self.config.executor),
            "rate_dispatch": self.rate_dispatch,
            "worker_scales": [round(s, 4) for s in self._scheduler.worker_scales],
            "faults": {
                "worker_restarts": self.worker_restarts,
                "replayed_batches": self.replayed_batches,
                "recent_restarts": self.recent_restarts(),
                "max_worker_restarts": self.max_worker_restarts,
                "restart_window_s": self.restart_window_s,
            },
            "workers": [s.to_dict() for s in self.last_snapshots],
            "program_cache": CacheStats.merged(
                s.program_cache for s in self.last_snapshots
            ).to_dict(),
            "result_cache": CacheStats.merged(
                s.result_cache for s in self.last_snapshots
            ).to_dict(),
        }
