"""Cache-aware worker pool: process-parallel execution of engine batches.

:class:`WorkerPool` is the layer between the engine's batch former and its
batch executor.  A front :class:`~repro.runtime.engine.Engine` coalesces
queued requests into per-program batches exactly as a single-process engine
would; the pool then *dispatches* whole batches across ``N`` workers, each
of which owns a private :class:`~repro.runtime.engine.Engine` with its own
:class:`~repro.runtime.cache.ProgramCache` and memoized-response tier.

Two execution modes share one dispatch path:

* ``process`` — each worker is a ``multiprocessing`` child driven over a
  pipe; all workers execute their batch lists concurrently (one scatter,
  one gather per flush, so the pipe protocol cannot deadlock).
* ``inline`` — each worker is an in-process engine executed sequentially in
  dispatch order.  Same batches, same per-worker caches, same responses:
  the deterministic fallback tests and CI rely on.

Dispatch itself runs through :class:`~repro.runtime.scheduler.ShardScheduler`
with the batch's content-addressed program key as the affinity key.  Under
``cache-affinity`` (:class:`repro.sim.policies.CacheAffinityPolicy`) a batch
goes to a free worker whose cache already holds its program; after every
flush the workers report their actual cache residency back, and the
dispatcher seeds the policy with those reports before the next round — the
feedback loop the ROADMAP calls "route requests to the worker that has the
program resident".
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.columnar import resolve_executor
from repro.errors import ReproError
from repro.runtime.cache import CacheStats, ProgramCache
from repro.runtime.engine import Batch, Engine, Request, Response
from repro.runtime.scheduler import ScheduleReport, ShardScheduler
from repro.sim.policies import (
    AdmissionPolicy,
    CacheAffinityPolicy,
    ServiceRateEstimator,
    make_policy,
    scales_from_rates,
)

POOL_MODES = ("inline", "process")


class PoolError(ReproError):
    """The worker pool was misconfigured or lost a worker."""


@dataclass
class WorkerConfig:
    """Everything one pool worker needs to build its private engine."""

    cache_capacity: int = 64
    result_cache_capacity: int = 512
    max_batch_size: int = 16
    init_latency_s: float = 1e-4
    #: Concurrent execution *inside* one batch (the engine's thread fan-out).
    intra_batch_workers: int = 1
    #: Root of the on-disk program-cache tier; each worker pickles into its
    #: own subdirectory so concurrent processes never race on one file.
    disk_cache_dir: Optional[str] = None
    #: Artificial per-request service delay (seconds); a test/benchmark knob
    #: for skewed-worker experiments, never set in production configs.
    service_delay_s: float = 0.0
    #: Functional interpreter for the vrda backend: "columnar", "token", or
    #: None/"auto" (columnar when numpy is available).  Picklable, so process
    #: workers inherit the choice across the spawn boundary.
    executor: Optional[str] = None

    def build_engine(self, index: int = 0) -> Engine:
        """Construct this worker's private engine (one per worker index)."""
        disk_dir = (
            Path(self.disk_cache_dir) / f"worker-{index}"
            if self.disk_cache_dir is not None
            else None
        )
        return Engine(
            program_cache=ProgramCache(
                capacity=self.cache_capacity, disk_dir=disk_dir
            ),
            result_cache_capacity=self.result_cache_capacity,
            max_batch_size=self.max_batch_size,
            init_latency_s=self.init_latency_s,
            intra_batch_workers=self.intra_batch_workers,
            executor=self.executor,
        )


@dataclass
class WorkerSnapshot:
    """One worker's cumulative state, reported back after each flush."""

    index: int
    batches: int
    requests: int
    program_cache: CacheStats
    result_cache: CacheStats
    resident_keys: List[str] = field(default_factory=list)
    #: Cumulative wall-clock seconds this worker spent executing batches.
    busy_s: float = 0.0
    #: EWMA of measured requests/second across flushes (0.0 = unmeasured).
    service_rate_rps: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (stats endpoints and the CLI report)."""
        return {
            "worker": self.index,
            "batches": self.batches,
            "requests": self.requests,
            "program_cache": self.program_cache.to_dict(),
            "result_cache": self.result_cache.to_dict(),
            "resident_programs": len(self.resident_keys),
            "busy_s": round(self.busy_s, 6),
            "service_rate_rps": round(self.service_rate_rps, 2),
        }


def _crash_responses(batch: Batch, error: Exception) -> List[Response]:
    """Error responses for every entry of a batch whose worker blew up."""
    return [
        Response(
            request_id=request_id,
            app=request.app,
            backend=request.backend,
            ok=False,
            error=f"worker failure: {error}",
            batch_id=batch.batch_id,
        )
        for request_id, request in batch.entries
    ]


def _run_batches(
    engine: Engine, batches: Sequence[Batch], service_delay_s: float = 0.0
) -> Tuple[List[Response], int, float]:
    """Execute a worker's batch list, timing its wall clock.

    Unexpected errors become responses; returns ``(responses, served,
    elapsed_s)`` so the caller can fold the measurement into its service-rate
    estimate.  ``service_delay_s`` sleeps per served request — the
    skewed-worker knob, charged inside the measured window on purpose.
    """
    responses: List[Response] = []
    served = 0
    started = time.perf_counter()
    for batch in batches:
        served += len(batch)
        try:
            responses.extend(engine.execute_batch(batch))
        except Exception as error:  # noqa: BLE001 - a worker must not die
            responses.extend(_crash_responses(batch, error))
        if service_delay_s > 0.0:
            time.sleep(service_delay_s * len(batch))
    return responses, served, time.perf_counter() - started


def _snapshot(
    index: int,
    engine: Engine,
    batches: int,
    requests: int,
    busy_s: float = 0.0,
    service_rate_rps: float = 0.0,
) -> WorkerSnapshot:
    return WorkerSnapshot(
        index=index,
        batches=batches,
        requests=requests,
        program_cache=engine.program_cache_stats.snapshot(),
        result_cache=engine.result_cache_stats.snapshot(),
        resident_keys=engine.program_cache.resident_keys(),
        busy_s=busy_s,
        service_rate_rps=service_rate_rps,
    )


def _process_worker_main(connection, index: int, config: WorkerConfig) -> None:
    """Entry point of one pool child: serve ``run`` messages until ``stop``."""
    engine = config.build_engine(index)
    batches_done = 0
    requests_done = 0
    busy_s = 0.0
    estimator = ServiceRateEstimator()
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message[0] == "stop":
            break
        batches = message[1]
        responses, served, elapsed = _run_batches(
            engine, batches, config.service_delay_s
        )
        batches_done += len(batches)
        requests_done += served
        busy_s += elapsed
        estimator.observe(served, elapsed)
        snapshot = _snapshot(
            index, engine, batches_done, requests_done, busy_s, estimator.rate
        )
        connection.send((responses, snapshot))
    connection.close()


class _InlineWorker:
    """Deterministic in-process worker: same engine, no child process."""

    def __init__(self, index: int, config: WorkerConfig):
        self.index = index
        self.config = config
        self.engine = config.build_engine(index)
        self._batches = 0
        self._requests = 0
        self._busy_s = 0.0
        self._estimator = ServiceRateEstimator()
        self._pending: Optional[Tuple[List[Response], WorkerSnapshot]] = None

    def submit(self, batches: Sequence[Batch]) -> None:
        """Execute the batches synchronously; results wait for collect()."""
        responses, served, elapsed = _run_batches(
            self.engine, batches, self.config.service_delay_s
        )
        self._batches += len(batches)
        self._requests += served
        self._busy_s += elapsed
        self._estimator.observe(served, elapsed)
        snapshot = _snapshot(
            self.index,
            self.engine,
            self._batches,
            self._requests,
            self._busy_s,
            self._estimator.rate,
        )
        self._pending = (responses, snapshot)

    def collect(self) -> Tuple[List[Response], WorkerSnapshot]:
        """Return (and clear) the responses/snapshot of the last submit()."""
        assert self._pending is not None, "collect() before submit()"
        pending, self._pending = self._pending, None
        return pending

    def stop(self) -> None:
        """Nothing to tear down for an in-process worker."""
        pass


class _ProcessWorker:
    """One multiprocessing child plus the parent-side pipe to drive it."""

    def __init__(self, index: int, config: WorkerConfig, context):
        self.index = index
        self.connection, child = context.Pipe()
        self.process = context.Process(
            target=_process_worker_main,
            args=(child, index, config),
            daemon=True,
        )
        self.process.start()
        child.close()

    def submit(self, batches: Sequence[Batch]) -> None:
        """Ship the batches to the child; raises PoolError if it is gone."""
        try:
            self.connection.send(("run", batches))
        except (BrokenPipeError, OSError) as error:
            raise PoolError(f"pool worker {self.index} is gone: {error}")

    def collect(self) -> Tuple[List[Response], WorkerSnapshot]:
        """Block for the child's responses; raises PoolError if it died."""
        try:
            return self.connection.recv()
        except EOFError as error:
            raise PoolError(f"pool worker {self.index} died mid-batch") from error

    def stop(self) -> None:
        """Stop the child (politely, then by terminate) and close the pipe."""
        try:
            self.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        self.connection.close()


@dataclass
class PoolReport:
    """Everything one flush produced: responses plus dispatch evidence."""

    mode: str
    responses: List[Response]
    workers: List[WorkerSnapshot]
    schedule: ScheduleReport

    @property
    def policy(self) -> str:
        """Name of the admission policy that dispatched this flush."""
        return self.schedule.policy

    def aggregate_program_stats(self) -> CacheStats:
        """Program-cache counters summed across every worker."""
        return CacheStats.merged(w.program_cache for w in self.workers)

    def aggregate_result_stats(self) -> CacheStats:
        """Result-cache counters summed across every worker."""
        return CacheStats.merged(w.result_cache for w in self.workers)

    def program_hit_rate(self) -> float:
        """Pool-wide program-cache hit rate (the affinity headline metric)."""
        return self.aggregate_program_stats().hit_rate

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable flush summary (CLI + stats wire form)."""
        ok = sum(1 for r in self.responses if r.error is None)
        return {
            "mode": self.mode,
            "policy": self.policy,
            "responses": len(self.responses),
            "ok": ok,
            "errors": len(self.responses) - ok,
            "program_cache": self.aggregate_program_stats().to_dict(),
            "result_cache": self.aggregate_result_stats().to_dict(),
            "workers": [w.to_dict() for w in self.workers],
            "schedule": self.schedule.to_dict(),
        }


class WorkerPool:
    """Executes engine batches across N cache-owning workers.

    The pool is long-lived: submit/flush as many rounds as you like (the
    server does exactly that), then :meth:`close` it — or use it as a
    context manager.  ``policy`` accepts any :data:`repro.sim.policies`
    name or instance; ``cache-affinity`` (the default) is the one that
    exploits the per-worker program caches.
    """

    def __init__(
        self,
        workers: int = 4,
        mode: str = "inline",
        policy: Union[str, AdmissionPolicy] = "cache-affinity",
        cache_capacity: int = 64,
        result_cache_capacity: int = 512,
        max_batch_size: int = 16,
        buffers_per_worker: int = 8,
        init_latency_s: float = 1e-4,
        intra_batch_workers: int = 1,
        rate_dispatch: bool = False,
        service_delays: Optional[Sequence[float]] = None,
        disk_cache_dir: Optional[str] = None,
        mp_context: str = "spawn",
        executor: Optional[str] = None,
    ):
        if workers <= 0:
            raise PoolError("need at least one pool worker")
        if mode not in POOL_MODES:
            raise PoolError(f"unknown pool mode '{mode}'; choose from {POOL_MODES}")
        if service_delays is not None and len(service_delays) != workers:
            raise PoolError("service_delays must have one entry per worker")
        # Validate eagerly so a bad --executor flag fails here, in the parent
        # process, instead of inside every spawned worker.
        resolve_executor(executor)
        self.workers = workers
        self.mode = mode
        #: Dispatch on measured per-worker service rates: before each flush
        #: the workers' EWMA rates (from their snapshots) are converted to
        #: relative scales and installed in the shard scheduler.
        self.rate_dispatch = rate_dispatch
        self.config = WorkerConfig(
            cache_capacity=cache_capacity,
            result_cache_capacity=result_cache_capacity,
            max_batch_size=max_batch_size,
            init_latency_s=init_latency_s,
            intra_batch_workers=intra_batch_workers,
            disk_cache_dir=disk_cache_dir,
            executor=executor,
        )
        if service_delays is None:
            self._worker_configs = [self.config] * workers
        else:
            self._worker_configs = [
                replace(self.config, service_delay_s=delay)
                for delay in service_delays
            ]
        self._policy = (
            CacheAffinityPolicy(cache_capacity=cache_capacity)
            if policy == "cache-affinity"
            else make_policy(policy)
        )
        self._scheduler = ShardScheduler(
            workers=workers,
            buffers_per_worker=buffers_per_worker,
            policy=self._policy,
        )
        # The front engine only queues and coalesces; capacity-0 caches keep
        # it from ever compiling or memoizing anything itself.
        self._front = Engine(
            program_cache=ProgramCache(capacity=0),
            result_cache_capacity=0,
            max_batch_size=max_batch_size,
        )
        if mode == "process":
            context = multiprocessing.get_context(mp_context)
            self._workers = [
                _ProcessWorker(i, self._worker_configs[i], context)
                for i in range(workers)
            ]
        else:
            self._workers = [
                _InlineWorker(i, self._worker_configs[i]) for i in range(workers)
            ]
        self._residency: Optional[List[List[str]]] = None
        # Idle workers are skipped per flush; their last snapshot (initially
        # an empty one) still describes their caches exactly.
        self.last_snapshots: List[WorkerSnapshot] = [
            WorkerSnapshot(
                index=i,
                batches=0,
                requests=0,
                program_cache=CacheStats(),
                result_cache=CacheStats(),
            )
            for i in range(workers)
        ]
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent, and the pool is unusable after."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving ------------------------------------------------------------

    def submit(self, request: Request) -> int:
        """Queue one request; returns its id (also its response order)."""
        return self._front.submit(request)

    def process(self, requests: Sequence[Request]) -> PoolReport:
        """Submit and serve a whole trace; responses in submission order."""
        for request in requests:
            self.submit(request)
        return self.flush()

    def flush(self) -> PoolReport:
        """Dispatch everything queued across the pool and gather responses."""
        if self._closed:
            raise PoolError("pool is closed")
        batches = self._front.coalesce()
        failed = self._front.drain_failed()
        if isinstance(self._policy, CacheAffinityPolicy) and self._residency:
            self._policy.seed(self._residency)
        if self.rate_dispatch:
            rates = [s.service_rate_rps for s in self.last_snapshots]
            self._scheduler.set_worker_scales(scales_from_rates(rates))
        schedule = self._scheduler.dispatch(
            [float(len(batch)) for batch in batches],
            keys=[batch.program_key for batch in batches],
        )
        assigned: List[List[Batch]] = [[] for _ in range(self.workers)]
        for batch, worker in zip(batches, schedule.assignments):
            assigned[worker].append(batch)
        # Idle workers (no batches this flush) are skipped entirely: their
        # caches cannot have changed, so their previous snapshot still holds
        # and the single-request path costs one worker round-trip, not N.
        active = [i for i in range(self.workers) if assigned[i]]
        responses = list(failed)
        snapshots = list(self.last_snapshots)
        try:
            for index in active:
                self._workers[index].submit(assigned[index])
            for index in active:
                worker_responses, snapshot = self._workers[index].collect()
                responses.extend(worker_responses)
                snapshots[index] = snapshot
        except PoolError:
            # A lost worker desynchronizes its pipe (and possibly others'
            # pending replies); the pool cannot serve another flush safely.
            self.close()
            raise
        responses.sort(key=lambda r: r.request_id)
        self._residency = [list(s.resident_keys) for s in snapshots]
        self.last_snapshots = snapshots
        return PoolReport(
            mode=self.mode,
            responses=responses,
            workers=snapshots,
            schedule=schedule,
        )

    # -- stats --------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed (the front engine queue)."""
        return self._front.pending

    def measured_rates(self) -> List[float]:
        """Per-worker EWMA service rates from the latest snapshots.

        The admission layer aggregates these (``pool_drain_rps``) into the
        drain estimate that sizes its in-flight token budget; 0.0 entries
        mean "never measured".
        """
        return [s.service_rate_rps for s in self.last_snapshots]

    def stats_row(self) -> Dict[str, Any]:
        """Cumulative pool stats from the most recent flush's snapshots."""
        return {
            "mode": self.mode,
            "policy": getattr(self._policy, "name", str(self._policy)),
            "intra_batch_workers": self.config.intra_batch_workers,
            "executor": resolve_executor(self.config.executor),
            "rate_dispatch": self.rate_dispatch,
            "worker_scales": [round(s, 4) for s in self._scheduler.worker_scales],
            "workers": [s.to_dict() for s in self.last_snapshots],
            "program_cache": CacheStats.merged(
                s.program_cache for s in self.last_snapshots
            ).to_dict(),
            "result_cache": CacheStats.merged(
                s.result_cache for s in self.last_snapshots
            ).to_dict(),
        }
