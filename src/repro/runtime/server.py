"""Persistent serving front-end: newline-delimited JSON over TCP.

``python -m repro.runtime.server`` turns the worker pool into a long-lived
process.  Clients connect over TCP and exchange one JSON object per line:

Request lines (client → server)::

    {"op": "request", "app": "strlen", "n_threads": 4, "seed": 1}
    {"op": "batch", "requests": [{"app": "search"}, {"app": "murmur3"}]}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}

``op`` defaults to ``request``, so a bare request object
(``{"app": "strlen"}``) is also accepted.  Request fields are exactly
:attr:`repro.runtime.engine.Request.WIRE_FIELDS`; responses are
:meth:`repro.runtime.engine.Response.to_dict` objects (plus ``{"ok": false,
"error": ...}`` envelopes for malformed lines).  ``batch`` serves many
requests through one pool flush — that is the high-throughput path, since
the pool coalesces and cache-affinity-routes the whole set at once.

The server accepts concurrent connections (one thread each); pool access is
serialized behind a lock, so requests from different clients still batch
through one dispatcher.  ``shutdown`` stops the accept loop, closes the
pool's workers, and lets the process exit cleanly — CI drives 50 requests
through this path and asserts exactly that.
"""

from __future__ import annotations

import argparse
import json
import socketserver
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.runtime.engine import Request
from repro.runtime.pool import POOL_MODES, PoolError, WorkerPool
from repro.sim.policies import POLICIES

#: Bumped when a wire-visible field changes meaning.
PROTOCOL_VERSION = 1


class RuntimeServer(socketserver.ThreadingTCPServer):
    """Threaded NDJSON front door over one shared :class:`WorkerPool`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, pool: WorkerPool):
        super().__init__(address, _LineHandler)
        self.pool = pool
        self.pool_lock = threading.Lock()
        self.served = 0

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def serve_payloads(self, payloads: Sequence[Any]) -> List[Dict[str, Any]]:
        """Serve one client batch of JSON request payloads, order-preserving.

        Malformed payloads become error envelopes without poisoning the
        rest of the batch; valid ones go through one pool flush together.
        """
        slots: List[tuple] = []
        with self.pool_lock:
            try:
                for payload in payloads:
                    try:
                        slots.append(
                            ("id", self.pool.submit(Request.from_dict(payload)))
                        )
                    except (ReproError, TypeError, ValueError) as error:
                        slots.append(("error", str(error)))
                report = self.pool.flush()
            except PoolError as error:
                # A lost worker closed the pool; a server that can never
                # serve again must exit (cleanly) so a supervisor restarts
                # it, not linger as a listening zombie.  Clients still get
                # an error envelope per request before the loop stops.
                self.request_shutdown()
                message = f"worker pool failed: {error}; server shutting down"
                return [{"ok": False, "error": message} for _ in payloads]
            self.served += len(payloads)
        responses = {r.request_id: r for r in report.responses}
        results: List[Dict[str, Any]] = []
        for kind, value in slots:
            if kind == "id":
                results.append(responses[value].to_dict())
            else:
                results.append({"ok": False, "error": value})
        return results

    def stats_payload(self) -> Dict[str, Any]:
        with self.pool_lock:
            return {
                "ok": True,
                "op": "stats",
                "version": PROTOCOL_VERSION,
                "served": self.served,
                "pool": self.pool.stats_row(),
            }

    def request_shutdown(self) -> None:
        # shutdown() blocks until serve_forever() exits, so it must run off
        # the handler thread that is still inside a request.
        threading.Thread(target=self.shutdown, daemon=True).start()


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines until EOF or shutdown."""

    server: RuntimeServer

    def _reply(self, payload: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                self._reply({"ok": False, "error": f"bad JSON line: {error}"})
                continue
            if not isinstance(payload, dict):
                self._reply({"ok": False, "error": "each line must be a JSON object"})
                continue
            op = payload.pop("op", "request")
            if op == "ping":
                self._reply({"ok": True, "op": "ping", "version": PROTOCOL_VERSION})
            elif op == "stats":
                self._reply(self.server.stats_payload())
            elif op == "request":
                self._reply(self.server.serve_payloads([payload])[0])
            elif op == "batch":
                requests = payload.get("requests")
                if not isinstance(requests, list):
                    self._reply(
                        {"ok": False, "error": "'batch' needs a 'requests' list"}
                    )
                    continue
                self._reply(
                    {
                        "ok": True,
                        "op": "batch",
                        "responses": self.server.serve_payloads(requests),
                    }
                )
            elif op == "shutdown":
                self._reply({"ok": True, "op": "shutdown"})
                self.server.request_shutdown()
                return
            else:
                self._reply({"ok": False, "error": f"unknown op '{op}'"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.server",
        description="Serve runtime requests over newline-delimited JSON/TCP.",
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool workers (default 4)"
    )
    parser.add_argument(
        "--pool-mode",
        type=str,
        default="inline",
        choices=POOL_MODES,
        help="inline (deterministic, in-process) or process (parallel)",
    )
    parser.add_argument(
        "--policy",
        type=str,
        default="cache-affinity",
        choices=sorted(POLICIES),
        help="batch admission policy (default cache-affinity)",
    )
    parser.add_argument("--cache-capacity", type=int, default=64)
    parser.add_argument("--result-cache", type=int, default=512)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument(
        "--intra-batch-workers",
        type=int,
        default=1,
        help="threads executing one batch's entries concurrently inside "
        "each pool worker (default 1 = sequential; responses are "
        "bit-identical at any setting, and the value is surfaced in "
        "the 'stats' op)",
    )
    parser.add_argument(
        "--rate-dispatch",
        action="store_true",
        help="dispatch batches on measured per-worker service rates "
        "(EWMA of flush wall-clock) instead of unit worker scales",
    )
    parser.add_argument(
        "--disk-cache",
        type=str,
        default=None,
        help="root directory for per-worker on-disk program caches",
    )
    parser.add_argument(
        "--mp-context",
        type=str,
        default="spawn",
        help="multiprocessing start method for process mode",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    pool = WorkerPool(
        workers=args.workers,
        mode=args.pool_mode,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
        result_cache_capacity=args.result_cache,
        max_batch_size=args.max_batch,
        intra_batch_workers=args.intra_batch_workers,
        rate_dispatch=args.rate_dispatch,
        disk_cache_dir=args.disk_cache,
        mp_context=args.mp_context,
    )
    with pool:
        server = RuntimeServer((args.host, args.port), pool)
        with server:
            # The one line launchers parse: host:port on stdout, flushed.
            print(f"runtime-server listening on {server.endpoint}", flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
        print(
            f"runtime-server stopped after {server.served} requests",
            file=sys.stderr,
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
