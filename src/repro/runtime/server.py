"""Persistent serving front-end: newline-delimited JSON over TCP.

``python -m repro.runtime.server`` turns the worker pool into a long-lived
process.  Clients connect over TCP and exchange one JSON object per line:

Request lines (client → server)::

    {"op": "request", "app": "strlen", "n_threads": 4, "seed": 1}
    {"op": "batch", "requests": [{"app": "search"}, {"app": "murmur3"}]}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "slow"}
    {"op": "shutdown"}

``op`` defaults to ``request``, so a bare request object
(``{"app": "strlen"}``) is also accepted.  Request fields are exactly
:attr:`repro.runtime.engine.Request.WIRE_FIELDS`; responses are
:meth:`repro.runtime.engine.Response.to_dict` objects (plus ``{"ok": false,
"error": ...}`` envelopes for malformed lines).  ``batch`` serves many
requests through one pool flush — that is the high-throughput path, since
the pool coalesces and cache-affinity-routes the whole set at once.

The server accepts concurrent connections (one thread each); all pool
access goes through one shared
:class:`~repro.runtime.gateway.admission.PoolService`, so requests from
different clients still batch through one dispatcher, and — when the
service carries an :class:`~repro.runtime.gateway.admission.\
AdmissionController` — load beyond the measured token budget is shed with
``{"ok": false, "code": 429, "retry_after_s": ...}`` envelopes instead of
queueing unboundedly.  The same service object can back an
:class:`~repro.runtime.gateway.http.HttpGateway` (``--http-port``), in
which case both front-ends shed identically.  Per-connection socket
timeouts (``--conn-timeout``) reap hung clients so a stalled connection
cannot pin a handler thread forever.  ``shutdown`` stops the accept loop,
closes the pool's workers, and lets the process exit cleanly — CI drives
50 requests through this path and asserts exactly that.
"""

from __future__ import annotations

import argparse
import json
import socketserver
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.core.columnar import EXECUTOR_CHOICES
from repro.runtime.faults import load_fault_plan
from repro.runtime.gateway.admission import AdmissionController, PoolService
from repro.runtime.logs import configure_logging
from repro.runtime.pool import POOL_MODES, WorkerPool
from repro.sim.policies import POLICIES

#: Bumped when a wire-visible field changes meaning.
PROTOCOL_VERSION = 1


class RuntimeServer(socketserver.ThreadingTCPServer):
    """Threaded NDJSON front door over one shared :class:`PoolService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address,
        pool: Optional[WorkerPool] = None,
        *,
        service: Optional[PoolService] = None,
        conn_timeout: Optional[float] = None,
    ):
        if (pool is None) == (service is None):
            raise ValueError("pass exactly one of 'pool' or 'service'")
        super().__init__(address, _LineHandler)
        self.service = service if service is not None else PoolService(pool)
        #: Per-connection socket timeout, seconds (None = never time out).
        #: Applies to both reads and writes, so a hung *or* unreadably slow
        #: client is reaped instead of pinning its handler thread.
        self.conn_timeout = conn_timeout
        self.service.on_failure(self.request_shutdown)

    @property
    def pool(self) -> WorkerPool:
        """The worker pool behind the shared front door."""
        return self.service.pool

    @property
    def served(self) -> int:
        """Requests served (admitted and flushed) since startup."""
        return self.service.served

    @property
    def endpoint(self) -> str:
        """``host:port`` the NDJSON listener is bound to."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def serve_payloads(self, payloads: Sequence[Any]) -> List[Dict[str, Any]]:
        """Serve one client batch of JSON payloads (compat wrapper)."""
        return self.service.serve_payloads(payloads).results

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` reply envelope, protocol version attached."""
        payload = self.service.stats_payload()
        payload["version"] = PROTOCOL_VERSION
        return payload

    def request_shutdown(self) -> None:
        """Stop serve_forever() from any thread (used on pool failure)."""
        # shutdown() blocks until serve_forever() exits, so it must run off
        # the handler thread that is still inside a request.
        threading.Thread(target=self.shutdown, daemon=True).start()


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines until EOF, timeout, or shutdown."""

    server: RuntimeServer

    def setup(self) -> None:
        """Apply the connection timeout before the stream is wrapped."""
        if self.server.conn_timeout is not None:
            self.request.settimeout(self.server.conn_timeout)
        super().setup()

    def _reply(self, payload: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()

    def handle(self) -> None:
        """Serve JSON lines until EOF; timeouts drop the connection."""
        try:
            self._serve_lines()
        except (TimeoutError, OSError):
            # An idle/hung client hit the connection timeout (or vanished);
            # dropping the connection frees this handler thread.  Clients
            # with half-written lines get a closed socket, not a reply.
            return

    def _serve_lines(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                self._reply({"ok": False, "error": f"bad JSON line: {error}"})
                continue
            if not isinstance(payload, dict):
                self._reply({"ok": False, "error": "each line must be a JSON object"})
                continue
            op = payload.pop("op", "request")
            if op == "ping":
                self._reply({"ok": True, "op": "ping", "version": PROTOCOL_VERSION})
            elif op == "stats":
                self._reply(self.server.stats_payload())
            elif op == "metrics":
                # Same renderer as the gateway's GET /metrics, framed as a
                # JSON envelope so the NDJSON protocol stays line-oriented.
                self._reply(
                    {
                        "ok": True,
                        "op": "metrics",
                        "content_type": "text/plain; version=0.0.4",
                        "text": self.server.service.metrics_text(),
                    }
                )
            elif op == "slow":
                self._reply(self.server.service.slow_payload())
            elif op == "request":
                result = self.server.service.serve_payloads(
                    [payload], endpoint="request"
                )
                self._reply(result.results[0])
            elif op == "batch":
                requests = payload.get("requests")
                if not isinstance(requests, list):
                    self._reply(
                        {"ok": False, "error": "'batch' needs a 'requests' list"}
                    )
                    continue
                result = self.server.service.serve_payloads(requests, endpoint="batch")
                if result.shed:
                    # One top-level envelope, exactly as the HTTP gateway
                    # answers 429 for the whole batch.
                    self._reply(
                        {
                            "ok": False,
                            "error": result.results[0]["error"],
                            "code": 429,
                            "retry_after_s": result.retry_after_s,
                            "requested": result.results[0].get("requested"),
                            "limit": result.results[0].get("limit"),
                        }
                    )
                    continue
                self._reply({"ok": True, "op": "batch", "responses": result.results})
            elif op == "shutdown":
                self._reply({"ok": True, "op": "shutdown"})
                self.server.request_shutdown()
                return
            else:
                self._reply({"ok": False, "error": f"unknown op '{op}'"})


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the socket/HTTP server."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.server",
        description="Serve runtime requests over newline-delimited JSON/TCP "
        "(and optionally HTTP).",
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also serve HTTP on this port (0 picks a free one; omit to "
        "serve NDJSON/TCP only).  The HTTP gateway shares the TCP "
        "server's pool and admission controller",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool workers (default 4)"
    )
    parser.add_argument(
        "--pool-mode",
        type=str,
        default="inline",
        choices=POOL_MODES,
        help="inline (deterministic, in-process) or process (parallel)",
    )
    parser.add_argument(
        "--policy",
        type=str,
        default="cache-affinity",
        choices=sorted(POLICIES),
        help="batch admission policy (default cache-affinity)",
    )
    parser.add_argument("--cache-capacity", type=int, default=64)
    parser.add_argument("--result-cache", type=int, default=512)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="fixed in-flight request budget; by default the budget is "
        "derived from the pool's measured drain rate × --headroom",
    )
    parser.add_argument(
        "--headroom",
        type=float,
        default=2.0,
        help="seconds of measured drain the front door may hold in flight "
        "before shedding with 429 (default 2.0; ignored with "
        "--max-inflight)",
    )
    parser.add_argument(
        "--no-admission",
        action="store_true",
        help="disable load shedding entirely (accept and queue unboundedly; "
        "the pre-gateway behaviour, kept for comparisons)",
    )
    parser.add_argument(
        "--conn-timeout",
        type=float,
        default=120.0,
        help="per-connection socket read/write timeout in seconds; hung "
        "clients are reaped after this long (default 120; <= 0 disables)",
    )
    parser.add_argument(
        "--write-timeout",
        type=float,
        default=10.0,
        help="HTTP gateway per-write drain deadline (slow readers are "
        "dropped past it; default 10)",
    )
    parser.add_argument(
        "--stream-chunk",
        type=int,
        default=1,
        help="requests per pool flush on /v1/stream (default 1 = one "
        "response on the wire per flush)",
    )
    parser.add_argument(
        "--intra-batch-workers",
        type=int,
        default=1,
        help="threads executing one batch's entries concurrently inside "
        "each pool worker (default 1 = sequential; responses are "
        "bit-identical at any setting, and the value is surfaced in "
        "the 'stats' op)",
    )
    parser.add_argument(
        "--rate-dispatch",
        action="store_true",
        help="dispatch batches on measured per-worker service rates "
        "(EWMA of flush wall-clock) instead of unit worker scales",
    )
    parser.add_argument(
        "--disk-cache",
        type=str,
        default=None,
        help="root directory for per-worker on-disk program caches",
    )
    parser.add_argument(
        "--mp-context",
        type=str,
        default="spawn",
        help="multiprocessing start method for process mode",
    )
    parser.add_argument(
        "--executor",
        type=str,
        default="auto",
        choices=EXECUTOR_CHOICES,
        help="functional interpreter for the vrda backend: 'columnar' "
             "(vectorized numpy), 'token' (per-token reference), or 'auto' "
             "(columnar when numpy is available; default); responses are "
             "bit-identical either way",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        default=5,
        help="worker respawns tolerated within --restart-window before the "
        "pool's circuit breaker trips and the server shuts down (default "
        "5; 0 makes any worker loss immediately fatal)",
    )
    parser.add_argument(
        "--restart-window",
        type=float,
        default=30.0,
        help="sliding window in seconds for --max-worker-restarts "
        "(default 30)",
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="DEV ONLY: inject faults into pool workers — inline JSON or "
        "@path to a JSON file, e.g. "
        "'[{\"kind\": \"kill\", \"worker\": 0, \"after_batches\": 1}]' "
        "(kinds: kill, hang, delay-reply, drop-reply, corrupt-cache)",
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold for the repro.* loggers (default "
        "info; worker restarts and breaker trips log at warning/error)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line instead of human-readable "
        "text (machine-parseable: ts/level/logger/msg + event fields)",
    )
    parser.add_argument(
        "--slow-ring",
        type=int,
        default=32,
        help="retain this many slowest front-door calls for the 'slow' op "
        "and GET /v1/slow (default 32)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the socket/HTTP server; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    pool = WorkerPool(
        workers=args.workers,
        mode=args.pool_mode,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
        result_cache_capacity=args.result_cache,
        max_batch_size=args.max_batch,
        intra_batch_workers=args.intra_batch_workers,
        rate_dispatch=args.rate_dispatch,
        disk_cache_dir=args.disk_cache,
        mp_context=args.mp_context,
        executor=args.executor,
        fault_plan=load_fault_plan(args.fault_plan),
        max_worker_restarts=args.max_worker_restarts,
        restart_window_s=args.restart_window,
    )
    admission = None
    if not args.no_admission:
        admission = AdmissionController(
            max_inflight=args.max_inflight, headroom=args.headroom
        )
    conn_timeout = args.conn_timeout if args.conn_timeout > 0 else None
    gateway = None
    with pool:
        service = PoolService(pool, admission, slow_ring_size=args.slow_ring)
        server = RuntimeServer(
            (args.host, args.port), service=service, conn_timeout=conn_timeout
        )
        with server:
            # The one line launchers parse: host:port on stdout, flushed.
            print(f"runtime-server listening on {server.endpoint}", flush=True)
            if args.http_port is not None:
                from repro.runtime.gateway.http import HttpGateway

                gateway = HttpGateway(
                    service,
                    host=args.host,
                    port=args.http_port,
                    # None (from --conn-timeout <= 0) disables idle reaping
                    # on the HTTP side too, matching the NDJSON socket.
                    idle_timeout_s=conn_timeout,
                    write_timeout_s=args.write_timeout,
                    stream_chunk=args.stream_chunk,
                ).start()
                print(
                    f"runtime-server http listening on {gateway.endpoint}",
                    flush=True,
                )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                if gateway is not None:
                    gateway.close()
        print(
            f"runtime-server stopped after {server.served} requests",
            file=sys.stderr,
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
