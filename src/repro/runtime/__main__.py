"""Command-line trace replay: ``python -m repro.runtime``.

Replays a synthetic repeated-app request trace through the serving engine
and the shard scheduler, then prints the serving report: wall-clock
requests/sec, per-backend counts, cache hit rates, and per-worker shares.
With ``--pool-workers N`` the trace executes through the real
:class:`~repro.runtime.pool.WorkerPool` (per-worker program caches,
cache-affinity dispatch, optional process parallelism) instead of the
single in-process engine.

Example::

    python -m repro.runtime --trace-size 100 --workers 4
    python -m repro.runtime --apps strlen,search --policy hoisted-buffer
    python -m repro.runtime --pool-workers 4 --policy cache-affinity
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.columnar import EXECUTOR_CHOICES
from repro.eval.tables import format_rows
from repro.runtime.cache import ProgramCache
from repro.runtime.engine import Engine
from repro.runtime.faults import load_fault_plan
from repro.runtime.logs import configure_logging
from repro.runtime.pool import POOL_MODES, WorkerPool
from repro.runtime.scheduler import ShardScheduler
from repro.runtime.trace import DEFAULT_TRACE_APPS, TraceConfig, synthetic_trace
from repro.sim.policies import POLICIES


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the trace-replay CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Replay a synthetic request trace through the serving engine.")
    parser.add_argument("--trace-size", type=int, default=100,
                        help="number of requests in the trace (default 100)")
    parser.add_argument("--workers", type=int, default=4,
                        help="simulated vRDA worker shards (default 4)")
    parser.add_argument("--apps", type=str, default=",".join(DEFAULT_TRACE_APPS),
                        help="comma-separated app names to cycle through")
    parser.add_argument("--policy", type=str, default="least-loaded",
                        choices=sorted(POLICIES),
                        help="shard admission policy (default least-loaded)")
    parser.add_argument("--n-threads", type=int, default=4,
                        help="threads per generated instance (default 4)")
    parser.add_argument("--distinct-shapes", type=int, default=2,
                        help="distinct (n_threads, seed) shapes per app")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace RNG seed (default 0)")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="maximum requests coalesced per batch")
    parser.add_argument("--cache-capacity", type=int, default=64,
                        help="program-cache entries (0 disables)")
    parser.add_argument("--disk-cache", type=str, default=None,
                        help="directory for the on-disk program-cache tier")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the memoized-response tier")
    parser.add_argument("--vrda-share", type=float, default=0.85,
                        help="fraction of requests served functionally "
                             "(rest split over cpu/gpu/aurochs)")
    parser.add_argument("--pool-workers", type=int, default=0,
                        help="execute through a WorkerPool of this many "
                             "cache-owning workers (0 = single engine)")
    parser.add_argument("--pool-mode", type=str, default="inline",
                        choices=POOL_MODES,
                        help="pool execution mode (default inline)")
    parser.add_argument("--intra-batch-workers", type=int, default=1,
                        help="threads executing one batch's entries "
                             "concurrently after its shared compile "
                             "(default 1 = sequential; responses are "
                             "bit-identical at any setting)")
    parser.add_argument("--executor", type=str, default="auto",
                        choices=EXECUTOR_CHOICES,
                        help="functional interpreter for the vrda backend: "
                             "'columnar' (vectorized numpy), 'token' "
                             "(per-token reference), or 'auto' (columnar "
                             "when numpy is available; default). Both "
                             "produce bit-identical responses.")
    parser.add_argument("--rate-dispatch", action="store_true",
                        help="dispatch pool batches on measured per-worker "
                             "service rates (EWMA of flush wall-clock) "
                             "instead of assuming unit worker scales")
    parser.add_argument("--fault-plan", type=str, default=None,
                        help="DEV ONLY: inject faults into pool workers — "
                             "inline JSON or @path to a file, e.g. "
                             "'[{\"kind\": \"kill\", \"worker\": 0, "
                             "\"after_batches\": 1}]'; the pool must mask "
                             "them (pool mode only)")
    parser.add_argument("--log-level", type=str, default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="structured-log threshold for repro.* loggers "
                             "(default warning: restarts and breaker trips "
                             "are visible, chatter is not)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit one JSON object per log line instead of "
                             "human-readable text")
    return parser


def _run_pooled(args: argparse.Namespace, requests: List) -> int:
    """Serve the trace through a real worker pool and print its report."""
    pool = WorkerPool(
        workers=args.pool_workers,
        mode=args.pool_mode,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
        result_cache_capacity=0 if args.no_result_cache else 512,
        max_batch_size=args.max_batch,
        intra_batch_workers=args.intra_batch_workers,
        rate_dispatch=args.rate_dispatch,
        disk_cache_dir=args.disk_cache,
        executor=args.executor,
        fault_plan=load_fault_plan(args.fault_plan),
    )
    with pool:
        started = time.perf_counter()
        report = pool.process(requests)
        elapsed = time.perf_counter() - started
    responses = report.responses
    served = sum(1 for r in responses if r.error is None)
    wrong = sum(1 for r in responses if r.correct is False)
    program = report.aggregate_program_stats()
    result = report.aggregate_result_stats()
    print(f"trace           : {len(requests)} requests, "
          f"pool={args.pool_workers}x{args.pool_mode}, "
          f"policy={report.policy}, "
          f"intra-batch={args.intra_batch_workers}, "
          f"executor={pool.stats_row()['executor']}, "
          f"rate-dispatch={'on' if args.rate_dispatch else 'off'}")
    print(f"served          : {served} ok, {len(responses) - served} errors, "
          f"{wrong} incorrect results")
    if pool.worker_restarts or args.fault_plan:
        print(f"faults          : {pool.worker_restarts} worker restarts, "
              f"{pool.replayed_batches} batches replayed")
    print(f"wall time       : {elapsed:.3f} s  "
          f"({len(requests) / max(elapsed, 1e-9):.1f} requests/s)")
    print(f"program cache   : {program.hits} hits / {program.lookups} lookups "
          f"(pool-wide hit rate {100 * program.hit_rate:.1f}%)")
    print(f"result cache    : {result.hits} hits / {result.lookups} lookups "
          f"(hit rate {100 * result.hit_rate:.1f}%)")
    print(f"dispatch        : makespan {report.schedule.makespan_s:.3f}, "
          f"imbalance {report.schedule.imbalance():.3f}x")
    rows = [{
        "worker": s.index,
        "batches": s.batches,
        "requests": s.requests,
        "prog_hit_%": round(100 * s.program_cache.hit_rate, 1),
        "resident": len(s.resident_keys),
        "busy_s": round(s.busy_s, 3),
        "rate_rps": round(s.service_rate_rps, 1),
    } for s in report.workers]
    print(format_rows(rows))
    # Nonzero when anything failed, so fault-injected smoke runs in CI can
    # assert recovery ("all responses ok") from the exit code alone.
    return 0 if served == len(responses) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the trace-replay CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    apps = [name.strip() for name in args.apps.split(",") if name.strip()]
    rest = max(0.0, 1.0 - args.vrda_share) / 3.0
    config = TraceConfig(
        size=args.trace_size,
        apps=apps,
        backend_mix={"vrda": args.vrda_share, "cpu": rest, "gpu": rest,
                     "aurochs": rest},
        distinct_shapes=args.distinct_shapes,
        n_threads=args.n_threads,
        seed=args.seed,
    )
    try:
        requests = synthetic_trace(config)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.pool_workers > 0:
        return _run_pooled(args, requests)

    engine = Engine(
        program_cache=ProgramCache(capacity=args.cache_capacity,
                                   disk_dir=args.disk_cache),
        max_batch_size=args.max_batch,
        result_cache_capacity=0 if args.no_result_cache else 512,
        intra_batch_workers=args.intra_batch_workers,
        executor=args.executor,
    )
    scheduler = ShardScheduler(workers=args.workers, policy=args.policy)

    started = time.perf_counter()
    responses = engine.process(requests)
    elapsed = time.perf_counter() - started
    report = scheduler.dispatch_responses(responses)

    served = sum(1 for r in responses if r.error is None)
    wrong = sum(1 for r in responses if r.correct is False)
    program_stats = engine.program_cache_stats
    result_stats = engine.result_cache_stats

    print(f"trace           : {len(requests)} requests over {len(apps)} apps "
          f"({', '.join(apps)}), "
          f"intra-batch={args.intra_batch_workers}, "
          f"executor={engine.executor}")
    print(f"served          : {served} ok, {len(responses) - served} errors, "
          f"{wrong} incorrect results")
    print(f"wall time       : {elapsed:.3f} s  "
          f"({len(requests) / max(elapsed, 1e-9):.1f} requests/s)")
    print(f"batches         : {max((r.batch_id for r in responses), default=-1) + 1}")
    print(f"program cache   : {program_stats.hits} hits / "
          f"{program_stats.lookups} lookups "
          f"(hit rate {100 * program_stats.hit_rate:.1f}%, "
          f"{program_stats.evictions} evictions)")
    print(f"result cache    : {result_stats.hits} hits / "
          f"{result_stats.lookups} lookups "
          f"(hit rate {100 * result_stats.hit_rate:.1f}%)")
    print(f"backend counts  : {dict(sorted(engine.backend_counts.items()))}")
    print(f"sharding        : {args.workers} workers, policy={report.policy}, "
          f"simulated makespan {report.makespan_s * 1e3:.3f} ms, "
          f"imbalance {report.imbalance():.3f}x")
    print(format_rows(report.as_rows()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
