"""Stack-wide telemetry: metrics registry, request tracing, slow-request ring.

Every remaining ROADMAP item (federated pools, multi-tenant QoS, elastic
autoscaling) *consumes* live measurements the stack did not expose until
this module.  Three pillars, all stdlib-only:

* **Metrics registry** — :class:`MetricsRegistry` holds lock-cheap
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` families with
  optional labels.  Histograms use fixed log-spaced buckets, so p50/p95/p99
  are derivable from the bucket counts without storing samples.  A registry
  is instantiated per process; :meth:`MetricsRegistry.snapshot` produces a
  picklable, mergeable document, which is how worker-child metrics flow
  back to the pool parent with each flush reply (alongside the existing
  :class:`~repro.runtime.pool.WorkerSnapshot`).  ``MetricsRegistry(
  enabled=False)`` is a true null registry — every observation is a no-op —
  used by the overhead benchmark as the telemetry-off baseline.

* **Request tracing** — :func:`new_trace_id` mints ids (clients may mint
  their own); ``trace_id``/``trace`` ride the
  :class:`~repro.runtime.engine.Request` wire form through the gateway,
  :class:`PoolService`, scheduler dispatch, and worker execution, and the
  accumulated span breakdown (queue-wait → dispatch/flush → compile →
  execute → respond) comes back in the opt-in ``trace`` response field.
  Tracing is byte-transparent: a request that does not opt in produces a
  response byte-identical to one served with telemetry absent.

* **Slow-request ring** — :class:`SlowRing` retains the top-K slowest
  requests seen by the front door (a min-heap keyed on duration), queryable
  via ``GET /v1/slow`` and the NDJSON ``slow`` op, so "where did this slow
  request spend its time?" is answerable after the fact.

:func:`render_prometheus` is the one exposition renderer, shared by the
gateway's ``GET /metrics`` and the NDJSON ``metrics`` op.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import threading
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowRing",
    "default_buckets",
    "merge_snapshots",
    "new_trace_id",
    "quantile_from_buckets",
    "render_prometheus",
]


def new_trace_id() -> str:
    """Mint one request trace id (16 hex chars, collision-safe enough)."""
    return uuid.uuid4().hex[:16]


def default_buckets() -> List[float]:
    """The stack's shared log-spaced latency buckets, in seconds.

    10 µs to ~84 s doubling per bucket (24 bounds): fine enough that
    p50/p95/p99 interpolation is meaningful for both the ~20 µs warm hit
    path and multi-second cold flushes, and coarse enough that a histogram
    snapshot is 24 ints, not a sample list.
    """
    return [1e-5 * 2.0**i for i in range(24)]


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile from bucket counts (Prometheus-style).

    ``counts`` has one entry per bound plus the overflow (+Inf) bucket.
    Linear interpolation inside the target bucket; the overflow bucket
    reports its lower bound (there is no upper edge to interpolate to).
    Returns 0.0 for an empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            if index >= len(bounds):
                return bounds[-1] if bounds else 0.0
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - seen) / count
            return lower + (upper - lower) * fraction
        seen += count
    return bounds[-1] if bounds else 0.0


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, str]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(f"expected labels {list(labelnames)}, got {sorted(labels)}")
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared family plumbing: name, help, label schema, child table."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _zero(self) -> Any:
        raise NotImplementedError

    def _child(self, labels: Dict[str, str]) -> Any:
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._children.setdefault(key, self._zero())
        return child

    def snapshot_values(self) -> Dict[Tuple[str, ...], Any]:
        """Picklable copy of every child's value, keyed by label values."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def _zero(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to this counter's labelled child."""
        with self._lock:
            self._child(labels)[0] += amount

    def set_total(self, value: float, **labels: str) -> None:
        """Overwrite the cumulative total (for counters derived at
        snapshot time from an existing counter the hot path already
        maintains, e.g. :class:`~repro.runtime.cache.CacheStats`)."""
        with self._lock:
            self._child(labels)[0] = value

    def value(self, **labels: str) -> float:
        """Current total for one label set (0.0 if never incremented)."""
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            return child[0] if child else 0.0

    def snapshot_values(self) -> Dict[Tuple[str, ...], float]:
        """Picklable copy of every child's total."""
        with self._lock:
            return {key: child[0] for key, child in self._children.items()}


class Gauge(_Metric):
    """A value that can go up and down (per label set).

    Merging snapshots *sums* gauges: pool-level gauges (in-flight work,
    resident programs) are per-process shares of one stack-wide quantity.
    """

    kind = "gauge"

    def _zero(self) -> List[float]:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        """Set the gauge's current value for one label set."""
        with self._lock:
            self._child(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._child(labels)[0] += amount

    def value(self, **labels: str) -> float:
        """Current value for one label set (0.0 if never set)."""
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            return child[0] if child else 0.0

    def snapshot_values(self) -> Dict[Tuple[str, ...], float]:
        """Picklable copy of every child's value."""
        with self._lock:
            return {key: child[0] for key, child in self._children.items()}


class Histogram(_Metric):
    """Bucketed latency distribution over fixed log-spaced bounds.

    Each child is ``[counts per bound + overflow, sum, count]``; quantiles
    come from :func:`quantile_from_buckets`, so no samples are retained.
    One ``observe`` is a bisect plus three in-place adds under the family
    lock — cheap enough for per-batch (and even per-request) use.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labelnames)
        self.bounds: List[float] = sorted(
            buckets if buckets is not None else default_buckets()
        )

    def _zero(self) -> Dict[str, Any]:
        return {"buckets": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: str) -> None:
        """Record one measurement into its bucket."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            child = self._child(labels)
            child["buckets"][index] += 1
            child["sum"] += value
            child["count"] += 1

    def quantile(self, q: float, **labels: str) -> float:
        """Estimated ``q``-quantile for one label set (0.0 when empty)."""
        with self._lock:
            key = _label_key(self.labelnames, labels)
            child = self._children.get(key)
            if child is None:
                return 0.0
            counts = list(child["buckets"])
        return quantile_from_buckets(self.bounds, counts, q)

    def snapshot_values(self) -> Dict[Tuple[str, ...], Dict[str, Any]]:
        """Picklable deep copy of every child's buckets/sum/count."""
        with self._lock:
            return {
                key: {
                    "buckets": list(child["buckets"]),
                    "sum": child["sum"],
                    "count": child["count"],
                }
                for key, child in self._children.items()
            }


class _NullMetric:
    """The disabled registry's metric: every method is a no-op."""

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """No-op."""

    def set(self, value: float, **labels: str) -> None:
        """No-op."""

    def set_total(self, value: float, **labels: str) -> None:
        """No-op."""

    def observe(self, value: float, **labels: str) -> None:
        """No-op."""

    def value(self, **labels: str) -> float:
        """Always 0.0."""
        return 0.0

    def quantile(self, q: float, **labels: str) -> float:
        """Always 0.0."""
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """One process's metric families, snapshot-mergeable across processes.

    ``counter``/``gauge``/``histogram`` create-or-return a family by name
    (idempotent, so instrumented modules need no central declaration
    point).  ``enabled=False`` returns a shared null metric from every
    factory: the telemetry-off baseline costs one attribute lookup and a
    no-op call on the hot path.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _register(self, factory: Callable[[], _Metric], name: str, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}"
                )
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()):
        """Create or fetch a :class:`Counter` family."""
        if not self.enabled:
            return _NULL_METRIC
        return self._register(lambda: Counter(name, help, labelnames), name, "counter")

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()):
        """Create or fetch a :class:`Gauge` family."""
        if not self.enabled:
            return _NULL_METRIC
        return self._register(lambda: Gauge(name, help, labelnames), name, "gauge")

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        """Create or fetch a :class:`Histogram` family."""
        if not self.enabled:
            return _NULL_METRIC
        return self._register(
            lambda: Histogram(name, help, labelnames, buckets), name, "histogram"
        )

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at snapshot time to set derived metrics.

        Collectors keep the hot path free: counters the stack already
        maintains (cache stats, admission totals, gateway connection
        counters) are folded into the registry only when someone actually
        scrapes or snapshots it.
        """
        self._collectors.append(collector)

    def snapshot(self) -> Dict[str, Any]:
        """Picklable document of every family (collectors run first).

        Format (stable, merged by :func:`merge_snapshots`)::

            {name: {"kind": ..., "help": ..., "labelnames": [...],
                    "bounds": [...]  # histograms only
                    "values": {(label values...): value}}}
        """
        if not self.enabled:
            return {}
        for collector in list(self._collectors):
            collector(self)
        document: Dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: Dict[str, Any] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "values": metric.snapshot_values(),
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            document[metric.name] = entry
        return document


def _merge_value(kind: str, into: Any, value: Any) -> Any:
    if kind == "histogram":
        if into is None:
            return {
                "buckets": list(value["buckets"]),
                "sum": value["sum"],
                "count": value["count"],
            }
        if len(into["buckets"]) != len(value["buckets"]):
            raise ValueError("cannot merge histograms with different buckets")
        into["buckets"] = [a + b for a, b in zip(into["buckets"], value["buckets"])]
        into["sum"] += value["sum"]
        into["count"] += value["count"]
        return into
    return value if into is None else into + value


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold many registry snapshots into one (counters/histograms sum).

    This is how per-worker engine metrics aggregate into the pool-wide
    view: each worker ships its own registry snapshot back with the flush
    reply, and the parent merges the latest snapshot per worker.  Families
    must agree on kind and (for histograms) bucket bounds.
    """
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            target = merged.get(name)
            if target is None:
                target = {
                    "kind": entry["kind"],
                    "help": entry["help"],
                    "labelnames": list(entry["labelnames"]),
                    "values": {},
                }
                if "bounds" in entry:
                    target["bounds"] = list(entry["bounds"])
                merged[name] = target
            elif target["kind"] != entry["kind"]:
                raise ValueError(
                    f"metric {name!r} has conflicting kinds: "
                    f"{target['kind']} vs {entry['kind']}"
                )
            for key, value in entry["values"].items():
                target["values"][key] = _merge_value(
                    entry["kind"], target["values"].get(key), value
                )
    return merged


def _format_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str], key: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(f'{name}="{val}"' for name, val in zip(labelnames, key))
    return "{" + pairs + "}"


def _bucket_labels(labelnames: Sequence[str], key: Sequence[str], le: str) -> str:
    pairs = [f'{name}="{val}"' for name, val in zip(labelnames, key)]
    pairs.append(f'le="{le}"')
    return "{" + ",".join(pairs) + "}"


def render_prometheus(snapshots: Iterable[Dict[str, Any]]) -> str:
    """Render merged snapshots as Prometheus text exposition (format 0.0.4).

    One renderer serves both exposition surfaces: the gateway's
    ``GET /metrics`` and the NDJSON ``metrics`` op.  Families are emitted
    in sorted-name order with ``# HELP``/``# TYPE`` preambles; histograms
    expand to cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.
    """
    merged = merge_snapshots(snapshots)
    lines: List[str] = []
    for name in sorted(merged):
        entry = merged[name]
        labelnames = entry["labelnames"]
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for key in sorted(entry["values"]):
            value = entry["values"][key]
            if entry["kind"] == "histogram":
                bounds = entry["bounds"]
                cumulative = list(itertools.accumulate(value["buckets"]))
                for bound, count in zip(bounds, cumulative):
                    lines.append(
                        f"{name}_bucket"
                        f"{_bucket_labels(labelnames, key, repr(float(bound)))}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_bucket{_bucket_labels(labelnames, key, '+Inf')}"
                    f" {cumulative[-1] if cumulative else 0}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labelnames, key)}"
                    f" {repr(float(value['sum']))}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labelnames, key)}"
                    f" {value['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labelnames, key)}"
                    f" {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


class SlowRing:
    """Bounded retention of the top-K slowest requests the front door saw.

    A min-heap keyed on duration: a new entry displaces the current
    fastest member only when it is slower, so the ring always holds the K
    slowest requests observed (not the K most recent).  Thread-safe;
    :meth:`payload` is the wire form ``GET /v1/slow`` and the NDJSON
    ``slow`` op share.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []
        self._sequence = 0
        self.recorded = 0

    def record(self, duration_s: float, entry: Dict[str, Any]) -> None:
        """Offer one request record; kept only if among the K slowest."""
        with self._lock:
            self.recorded += 1
            self._sequence += 1
            item = (duration_s, self._sequence, entry)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif duration_s > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)

    def entries(self) -> List[Dict[str, Any]]:
        """The retained records, slowest first."""
        with self._lock:
            items = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [dict(entry, duration_s=round(duration, 6))
                for duration, _, entry in items]

    def payload(self) -> Dict[str, Any]:
        """JSON envelope for the slow-request endpoints."""
        return {
            "ok": True,
            "op": "slow",
            "capacity": self.capacity,
            "recorded": self.recorded,
            "slowest": self.entries(),
        }
