"""Structured logging for the serving stack.

Library modules log through ``logging.getLogger("repro.runtime...")`` and
attach machine-readable context via the ``event`` helper; by default the
package is silent (a ``NullHandler`` on the root ``repro`` logger), and
the server / gateway CLIs opt in with :func:`configure_logging`
(``--log-level``, ``--log-json``).

Two formats share the same records:

* human (default): ``2026-08-07 12:00:00 WARNING repro.runtime.pool:
  worker restarted | worker=1 cause=eof replays=1``
* JSON (``--log-json``): one object per line with ``ts``, ``level``,
  ``logger``, ``msg`` plus every field passed through :func:`event` —
  grep- and ``jq``-friendly, and what the fault-injection harness asserts
  against.

Worker restarts, circuit-breaker trips, and admission sheds all log with
worker/trace context so PR 8 recoveries are debuggable after the fact.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict, Optional

__all__ = ["JsonFormatter", "configure_logging", "event", "get_logger"]

#: Attribute name carrying structured fields on a LogRecord.
_FIELDS_ATTR = "repro_fields"


def get_logger(name: str) -> logging.Logger:
    """The stack's logger factory (namespaced under ``repro``)."""
    return logging.getLogger(name)


def event(logger: logging.Logger, level: int, msg: str, **fields: Any) -> None:
    """Log ``msg`` with structured ``fields`` attached to the record.

    Fields ride the record as an attribute, so the human formatter can
    render them as ``key=value`` pairs and :class:`JsonFormatter` can emit
    them as real JSON keys — one call site, both formats.
    """
    if logger.isEnabledFor(level):
        logger.log(level, msg, extra={_FIELDS_ATTR: fields})


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Serialize the record (ts/level/logger/msg + structured fields)."""
        payload: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class _HumanFormatter(logging.Formatter):
    """Default text format with ``key=value`` structured-field suffix."""

    def __init__(self):
        super().__init__("%(asctime)s %(levelname)s %(name)s: %(message)s")
        self.converter = time.localtime

    def format(self, record: logging.LogRecord) -> str:
        """Render the record, appending structured fields when present."""
        base = super().format(record)
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            suffix = " ".join(f"{key}={value}" for key, value in fields.items())
            return f"{base} | {suffix}"
        return base


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Optional[Any] = None,
) -> logging.Logger:
    """Attach a handler to the ``repro`` root logger (CLI entry points).

    Idempotent per process: an existing handler installed by a prior call
    is replaced, not stacked, so tests and the smoke drivers can
    reconfigure freely.  Returns the configured root logger.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter() if json_lines else _HumanFormatter())
    handler._repro_configured = True
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    root.propagate = False
    return root


# Library default: silent unless an application configures logging.
logging.getLogger("repro").addHandler(logging.NullHandler())
