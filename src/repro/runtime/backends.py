"""Execution backends for the serving engine.

A request can be served by four targets behind one interface:

* ``vrda`` — the real pipeline: run the compiled dataflow program on the
  functional executor, check it against the application's reference oracle,
  and model its latency with :class:`repro.sim.perf_model.VRDAPerformanceModel`
  (the paper's ``runtime = size / throughput + init``).
* ``cpu`` / ``gpu`` — the analytic Table V baseline models: no functional
  execution, only a modeled throughput/latency for the requested workload.
* ``aurochs`` — the Section VI-B(c) model: the vRDA's analytic throughput
  divided by the modeled Aurochs slowdown factors.

Backends report a :class:`BackendResult`; the engine turns results into
client responses and the scheduler uses ``modeled_runtime_s`` as the task
cost when sharding batches across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.base import AppInstance, AppSpec
from repro.baselines.aurochs import AurochsModel
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.core.columnar import resolve_executor
from repro.core.machine import DEFAULT_MACHINE, MachineConfig
from repro.dataflow.lowering import CompiledProgram
from repro.dataflow.resources import ResourceBreakdown, estimate_resources
from repro.errors import ReproError
from repro.sim.perf_model import ThroughputReport, VRDAPerformanceModel, WorkloadProfile


class BackendError(ReproError):
    """A backend could not serve the request it was handed."""


@dataclass
class BackendResult:
    """What one backend produced for one request."""

    backend: str
    #: Output-segment contents (functional backends only).
    outputs: Optional[List[int]] = None
    #: True/False when a reference oracle was checked, None otherwise.
    correct: Optional[bool] = None
    #: Modeled steady-state throughput in GB/s of application data.
    modeled_gbs: float = 0.0
    #: Modeled end-to-end latency: ``size / throughput + init``.
    modeled_runtime_s: float = 0.0
    #: Full bottleneck report (vRDA-modeled backends only).
    report: Optional[ThroughputReport] = None


@dataclass
class BackendRequestContext:
    """Everything a backend may need to serve one request."""

    spec: Optional[AppSpec]
    instance: Optional[AppInstance]
    program: Optional[CompiledProgram]
    args: Dict[str, int] = field(default_factory=dict)
    n_threads: int = 8
    #: True when the engine generated the instance itself; only then does
    #: the instance carry the context the reference oracle needs.
    generated: bool = False


class Backend:
    """One serving target; subclasses implement :meth:`execute`."""

    name = "base"
    #: Whether the engine must compile a program before dispatching here.
    needs_program = False

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4):
        self.machine = machine
        self.init_latency_s = init_latency_s

    def execute(self, ctx: BackendRequestContext) -> BackendResult:
        """Serve one request; raises :class:`BackendError` on a bad context."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def _require_spec(self, ctx: BackendRequestContext) -> AppSpec:
        if ctx.spec is None:
            raise BackendError(
                f"backend '{self.name}' is analytic and needs a registered "
                "application (raw-source requests must use 'vrda')")
        return ctx.spec

    def _workload_bytes(self, ctx: BackendRequestContext) -> float:
        if ctx.instance is not None and ctx.instance.total_bytes:
            return float(ctx.instance.total_bytes)
        if ctx.spec is not None:
            return float(ctx.spec.bytes_per_thread * ctx.n_threads)
        return float(ctx.n_threads)

    def _runtime_s(self, size_bytes: float, gbs: float) -> float:
        gbs = max(gbs, 1e-9)
        return size_bytes / (gbs * 1e9) + self.init_latency_s

    def _analytic_vrda_gbs(self, spec: AppSpec, n_threads: int) -> float:
        """Model the vRDA from Table III metadata alone (no execution)."""
        profile = WorkloadProfile(
            threads=n_threads,
            app_bytes_per_thread=spec.bytes_per_thread,
            dram_bulk_bytes_per_thread=spec.bytes_per_thread,
            dram_random_accesses_per_thread=0.0,
            iterations_per_thread=max(1.0, spec.avg_iterations_per_thread),
        )
        resources = ResourceBreakdown(
            app=spec.name,
            outer_parallelism=max(1, spec.outer_parallelism),
            lanes=self.machine.lanes * max(1, spec.outer_parallelism),
        )
        model = VRDAPerformanceModel(self.machine)
        return model.throughput(spec.name, profile, resources).throughput_gbs


class FunctionalVRDABackend(Backend):
    """Run the compiled program for real and attach the paper's perf model.

    ``executor`` selects the functional interpreter: ``"columnar"`` (the
    vectorized numpy backend), ``"token"`` (the per-token reference oracle),
    or ``None``/``"auto"`` (columnar when numpy is importable, else token).
    Both produce bit-identical results; see ``docs/executor.md``.
    """

    name = "vrda"
    needs_program = True

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4,
                 executor: Optional[str] = None):
        super().__init__(machine, init_latency_s)
        #: Resolved executor name ("columnar" or "token"); validated eagerly
        #: so a bad flag fails at construction, not on the first request.
        self.executor = resolve_executor(executor)

    def execute(self, ctx: BackendRequestContext) -> BackendResult:
        """Run ``ctx.program`` for real and model its throughput.

        Raises :class:`BackendError` without a compiled program/instance;
        executor errors (e.g. livelock guards) propagate as ``ReproError``.
        """
        if ctx.program is None:
            raise BackendError("vrda backend needs a compiled program")
        if ctx.instance is None:
            raise BackendError("vrda backend needs a problem instance")
        instance = ctx.instance
        # The serving path only consumes loop trip counts from the profile;
        # per-link histograms are skipped (the executor's cold fast path).
        executor = ctx.program.run(instance.memory, profile=True,
                                   link_stats=False, executor=self.executor,
                                   **ctx.args)

        outputs: Optional[List[int]] = None
        correct: Optional[bool] = None
        report: Optional[ThroughputReport] = None
        spec = ctx.spec
        if spec is not None:
            try:
                outputs = list(instance.memory.segment_data(spec.output_segment))
            except ReproError:
                outputs = None  # program declared no such output segment
            if spec.reference is not None and ctx.generated:
                expected = spec.reference(instance)
                correct = outputs is not None and outputs[:len(expected)] == expected
            iterations = sum(executor.profile.loop_iterations.values()) or 1
            profile = WorkloadProfile.from_run(
                instance.memory.stats,
                threads=ctx.n_threads,
                app_bytes_per_thread=spec.bytes_per_thread,
                iterations=max(1.0, iterations / max(1, ctx.n_threads)),
            )
            resources = estimate_resources(
                ctx.program, app_name=spec.name,
                replicate_factor=spec.replicate_factor, machine=self.machine)
            report = VRDAPerformanceModel(self.machine).throughput(
                spec.name, profile, resources)
        gbs = report.throughput_gbs if report else 1.0
        size = self._workload_bytes(ctx)
        return BackendResult(
            backend=self.name,
            outputs=outputs,
            correct=correct,
            modeled_gbs=gbs,
            modeled_runtime_s=self._runtime_s(size, gbs),
            report=report,
        )


class CPUBaselineBackend(Backend):
    """Analytic Xeon baseline (Table V CPU column)."""

    name = "cpu"

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4):
        super().__init__(machine, init_latency_s)
        self.model = CPUModel()

    def execute(self, ctx: BackendRequestContext) -> BackendResult:
        """Model the request analytically (needs a registered app)."""
        spec = self._require_spec(ctx)
        gbs = self.model.throughput_gbs(spec)
        size = self._workload_bytes(ctx)
        return BackendResult(backend=self.name, modeled_gbs=gbs,
                             modeled_runtime_s=self._runtime_s(size, gbs))


class GPUBaselineBackend(Backend):
    """Analytic V100 baseline (Table V GPU column)."""

    name = "gpu"

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4):
        super().__init__(machine, init_latency_s)
        self.model = GPUModel()

    def execute(self, ctx: BackendRequestContext) -> BackendResult:
        """Model the request analytically (needs a registered app)."""
        spec = self._require_spec(ctx)
        gbs = self.model.throughput_gbs(spec)
        size = self._workload_bytes(ctx)
        return BackendResult(backend=self.name, modeled_gbs=gbs,
                             modeled_runtime_s=self._runtime_s(size, gbs))


class AurochsBaselineBackend(Backend):
    """Analytic Aurochs model: the vRDA slowed by the Section VI-B(c) gap."""

    name = "aurochs"

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4):
        super().__init__(machine, init_latency_s)
        self.model = AurochsModel(machine)

    def execute(self, ctx: BackendRequestContext) -> BackendResult:
        """Model the request as the analytic vRDA slowed by the Aurochs gap."""
        spec = self._require_spec(ctx)
        revet_gbs = self._analytic_vrda_gbs(spec, ctx.n_threads)
        gbs = revet_gbs / max(1.0, self.model.speedup_of_revet())
        size = self._workload_bytes(ctx)
        return BackendResult(backend=self.name, modeled_gbs=gbs,
                             modeled_runtime_s=self._runtime_s(size, gbs))


class BackendRegistry:
    """Name-to-backend dispatch table used by the engine.

    ``executor`` is forwarded to :class:`FunctionalVRDABackend` (the only
    backend that runs programs); analytic baselines ignore it.
    """

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 init_latency_s: float = 1e-4,
                 executor: Optional[str] = None):
        self._backends: Dict[str, Backend] = {}
        self.register(FunctionalVRDABackend(machine, init_latency_s,
                                            executor=executor))
        for cls in (CPUBaselineBackend, GPUBaselineBackend,
                    AurochsBaselineBackend):
            self.register(cls(machine, init_latency_s))

    def register(self, backend: Backend) -> Backend:
        """Add (or replace) a backend under its ``name``; returns it."""
        self._backends[backend.name] = backend
        return backend

    def get(self, name: str) -> Backend:
        """Look up a backend; raises :class:`BackendError` for unknown names."""
        if name not in self._backends:
            raise BackendError(
                f"unknown backend '{name}'; choose from {sorted(self._backends)}")
        return self._backends[name]

    def names(self) -> List[str]:
        """Registered backend names, in registration order."""
        return list(self._backends.keys())
