"""Rate-aware admission control and the shared pool front door.

The serving stack measures how fast it drains work (per-worker EWMA service
rates from PR 3, plus the front door's own flush measurements) but, until
this module, accepted and queued work unboundedly: a client could park an
arbitrary backlog behind the pool lock and every later request would wait
behind it.  :class:`AdmissionController` turns the measured drain rate into
a *token budget* — the pool may hold at most ``drain_rps × headroom``
requests in flight (``headroom`` is literally "seconds of queued work") —
and sheds everything beyond it with a computed retry hint instead of
queueing it.

:class:`PoolService` is the front door both servers share: one
:class:`~repro.runtime.pool.WorkerPool`, one lock serializing flushes, one
admission controller, and one set of counters.  The NDJSON TCP server
(:mod:`repro.runtime.server`) and the HTTP gateway
(:mod:`repro.runtime.gateway.http`) each wrap the same ``PoolService``
instance, so both front-ends shed load identically — a 429 envelope on one
wire is a 429 status on the other, backed by the same token bucket.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.runtime.engine import Request
from repro.runtime.logs import event, get_logger
from repro.runtime.pool import PoolError, WorkerPool
from repro.runtime.telemetry import (
    MetricsRegistry,
    SlowRing,
    new_trace_id,
    render_prometheus,
)
from repro.sim.policies import ServiceRateEstimator, pool_drain_rps

_LOG = get_logger(__name__)


@dataclass
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.try_acquire` call."""

    admitted: bool
    requested: int
    inflight: int
    limit: int
    #: Suggested client wait before retrying, seconds (0.0 when admitted).
    retry_after_s: float = 0.0


@dataclass
class AdmissionSnapshot:
    """Controller counters for stats endpoints (JSON-ready)."""

    inflight: int
    limit: int
    drain_rps: float
    admitted: int
    rejected: int
    peak_inflight: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for stats endpoints."""
        return {
            "inflight": self.inflight,
            "limit": self.limit,
            "drain_rps": round(self.drain_rps, 2),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_inflight": self.peak_inflight,
        }


class AdmissionController:
    """Token-budget admission over the pool's measured drain rate.

    The budget is ``max_inflight`` when set explicitly, otherwise
    ``ceil(drain_rps × headroom)``: the pool may hold ``headroom`` seconds
    of work in flight before new arrivals are shed.  The drain estimate
    prefers the controller's own flush measurements (an EWMA folded via
    :meth:`observe_drain`, the same :class:`ServiceRateEstimator` the pool
    workers use), falls back to the sum of the workers' reported EWMA rates
    (:meth:`update_rates`), and bottoms out at ``default_drain_rps`` for a
    pool that has never served anything.

    ``retry_after_s`` on a rejection is the time the measured drain rate
    needs to clear the excess — the ``Retry-After`` the gateway puts on the
    wire — clamped to ``[min_retry_s, max_retry_s]``.

    Thread-safe: both servers' handler threads and the gateway's executor
    threads share one controller.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        headroom: float = 2.0,
        *,
        default_drain_rps: float = 100.0,
        min_limit: int = 1,
        min_retry_s: float = 0.05,
        max_retry_s: float = 10.0,
        alpha: float = 0.5,
    ):
        if max_inflight is not None and max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if headroom <= 0.0:
            raise ValueError("headroom must be positive (seconds of work)")
        self.max_inflight = max_inflight
        self.headroom = headroom
        self.default_drain_rps = default_drain_rps
        self.min_limit = max(0, min_limit)
        self.min_retry_s = min_retry_s
        self.max_retry_s = max_retry_s
        self._lock = threading.Lock()
        self._inflight = 0
        self._estimator = ServiceRateEstimator(alpha=alpha)
        self._worker_rates: List[float] = []
        self.admitted = 0
        self.rejected = 0
        self.peak_inflight = 0

    # -- measurement --------------------------------------------------------

    @property
    def drain_rps(self) -> float:
        """Best current estimate of pool-level completed requests/second."""
        if self._estimator.rate > 0.0:
            return self._estimator.rate
        return pool_drain_rps(self._worker_rates, default=self.default_drain_rps)

    @property
    def limit(self) -> int:
        """The current token budget (maximum admitted in-flight requests)."""
        if self.max_inflight is not None:
            return self.max_inflight
        return max(self.min_limit, math.ceil(self.drain_rps * self.headroom))

    @property
    def inflight(self) -> int:
        """Requests currently holding tokens (admitted, not yet released)."""
        return self._inflight

    def observe_drain(self, served: int, elapsed_s: float) -> None:
        """Fold one flush measurement (requests served / wall seconds)."""
        with self._lock:
            self._estimator.observe(served, elapsed_s)

    def update_rates(self, rates: Sequence[float]) -> None:
        """Install the workers' reported EWMA service rates (fallback)."""
        with self._lock:
            self._worker_rates = list(rates)

    # -- token accounting ---------------------------------------------------

    def try_acquire(self, n: int = 1) -> AdmissionDecision:
        """Admit ``n`` requests, or reject them with a retry hint."""
        with self._lock:
            limit = self.limit
            if self._inflight + n <= limit:
                self._inflight += n
                self.admitted += n
                self.peak_inflight = max(self.peak_inflight, self._inflight)
                return AdmissionDecision(
                    admitted=True,
                    requested=n,
                    inflight=self._inflight,
                    limit=limit,
                )
            self.rejected += n
            excess = self._inflight + n - limit
            retry = min(
                max(excess / max(self.drain_rps, 1e-9), self.min_retry_s),
                self.max_retry_s,
            )
            return AdmissionDecision(
                admitted=False,
                requested=n,
                inflight=self._inflight,
                limit=limit,
                retry_after_s=retry,
            )

    def release(self, n: int = 1) -> None:
        """Return ``n`` tokens after their flush completes; never raises."""
        with self._lock:
            self._inflight = max(0, self._inflight - n)

    def snapshot(self) -> AdmissionSnapshot:
        """Consistent copy of the counters (taken under the lock)."""
        with self._lock:
            return AdmissionSnapshot(
                inflight=self._inflight,
                limit=self.limit,
                drain_rps=self.drain_rps,
                admitted=self.admitted,
                rejected=self.rejected,
                peak_inflight=self.peak_inflight,
            )


@dataclass
class ServeResult:
    """One front-door serve call: per-request result dicts plus shed state."""

    results: List[Dict[str, Any]]
    shed: bool = False
    retry_after_s: float = 0.0
    #: Seconds this call waited for the pool lock (0.0 when shed/failed).
    queue_wait_s: float = 0.0


def overload_envelope(decision: AdmissionDecision) -> Dict[str, Any]:
    """The wire form of a shed request, shared by both front-ends.

    ``requested``/``limit`` let clients distinguish "over budget right now,
    retry later" from "this batch exceeds the whole budget, retrying the
    same size can never succeed — chunk it" (the client's backoff loop
    checks exactly that).
    """
    return {
        "ok": False,
        "error": (
            f"overloaded: {decision.inflight}/{decision.limit} requests in "
            f"flight; retry in {decision.retry_after_s:.3f}s"
        ),
        "code": 429,
        "retry_after_s": round(decision.retry_after_s, 3),
        "requested": decision.requested,
        "limit": decision.limit,
    }


class PoolService:
    """The shared front door: one pool, one lock, one admission controller.

    ``admission=None`` disables shedding entirely (the pre-gateway
    behaviour, kept for comparisons and for tests).  All serving goes
    through :meth:`serve_payloads`; the NDJSON server and the HTTP gateway
    only differ in how they frame its :class:`ServeResult`.
    """

    def __init__(
        self,
        pool: WorkerPool,
        admission: Optional[AdmissionController] = None,
        wait_samples: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        slow_ring_size: int = 32,
    ):
        self.pool = pool
        self.admission = admission
        self.pool_lock = threading.Lock()
        self.served = 0
        self.shed = 0
        #: Recent pool-lock queue waits, for the p99 the stats report.
        self._waits: deque = deque(maxlen=max(1, wait_samples))
        self._counter_lock = threading.Lock()
        self._failure_callbacks: List[Callable[[], None]] = []
        #: The front-door metric families; worker/pool families merge in at
        #: render time (see :meth:`metrics_text`).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_ring = SlowRing(capacity=slow_ring_size)
        self._m_requests = self.metrics.counter(
            "frontdoor_requests_total",
            "Requests through the shared front door, by endpoint and status.",
            ("endpoint", "status"),
        )
        self._m_latency = self.metrics.histogram(
            "frontdoor_request_seconds",
            "Front-door serve-call wall clock, by endpoint.",
            ("endpoint",),
        )
        self._m_queue_wait = self.metrics.histogram(
            "frontdoor_queue_wait_seconds",
            "Seconds an admitted serve call waited for the pool lock.",
        )
        self.metrics.add_collector(self._collect_metrics)

    def on_failure(self, callback: Callable[[], None]) -> None:
        """Register a callback for a fatal pool failure (server shutdown)."""
        self._failure_callbacks.append(callback)

    # -- serving ------------------------------------------------------------

    def serve_payloads(
        self, payloads: Sequence[Any], endpoint: str = "ndjson"
    ) -> ServeResult:
        """Serve one batch of JSON request payloads, order-preserving.

        Admission is all-or-nothing per call: either every payload gets a
        token (and malformed ones become error envelopes without poisoning
        the rest), or the whole call is shed with one retry hint.  Tokens
        are held from admission until the flush completes, so work waiting
        on the pool lock counts against the in-flight budget — that is the
        wire-level backpressure.

        ``endpoint`` labels this call's metrics (and trace spans) with the
        front door it came through — the NDJSON op or the HTTP route.
        """
        n = len(payloads)
        if n == 0:
            return ServeResult(results=[])
        started = time.perf_counter()
        if self.admission is not None:
            decision = self.admission.try_acquire(n)
            if not decision.admitted:
                with self._counter_lock:
                    self.shed += n
                self._m_requests.inc(n, endpoint=endpoint, status="shed")
                event(
                    _LOG,
                    logging.WARNING,
                    "admission shed",
                    endpoint=endpoint,
                    requested=n,
                    inflight=decision.inflight,
                    limit=decision.limit,
                    retry_after_s=round(decision.retry_after_s, 3),
                )
                return ServeResult(
                    results=[overload_envelope(decision) for _ in payloads],
                    shed=True,
                    retry_after_s=decision.retry_after_s,
                )
        try:
            return self._serve_admitted(payloads, endpoint, started)
        finally:
            if self.admission is not None:
                self.admission.release(n)

    def _serve_admitted(
        self, payloads: Sequence[Any], endpoint: str, started: float
    ) -> ServeResult:
        n = len(payloads)
        slots: List[tuple] = []
        queued_at = time.perf_counter()
        try:
            with self.pool_lock:
                wait = time.perf_counter() - queued_at
                for payload in payloads:
                    try:
                        if (
                            isinstance(payload, dict)
                            and payload.get("trace")
                            and not payload.get("trace_id")
                        ):
                            # Front-door minting: a traced request without a
                            # client-supplied id gets one here, so its spans
                            # are correlatable across layers.
                            payload = dict(payload, trace_id=new_trace_id())
                        slots.append(
                            ("id", self.pool.submit(Request.from_dict(payload)))
                        )
                    except (ReproError, TypeError, ValueError) as error:
                        slots.append(("error", str(error)))
                submitted = sum(1 for kind, _ in slots if kind == "id")
                flush_started = time.perf_counter()
                report = self.pool.flush()
                flush_elapsed = time.perf_counter() - flush_started
                if self.admission is not None:
                    # Only requests the pool actually served may feed the
                    # drain estimate: counting malformed payloads against a
                    # near-instant empty flush would inject absurd rps
                    # samples and inflate the admission budget.
                    if submitted > 0:
                        self.admission.observe_drain(submitted, flush_elapsed)
                    self.admission.update_rates(self.pool.measured_rates())
        except PoolError as error:
            # Transient worker loss never lands here — the pool masks it by
            # respawning and replaying.  A PoolError means the circuit
            # breaker tripped (or a respawn itself failed) and the pool
            # closed: a front door that can never serve again must tell its
            # servers to exit (cleanly) so a supervisor restarts them, not
            # linger as listening zombies.  Clients still get an error
            # envelope per request.
            for callback in self._failure_callbacks:
                callback()
            self._m_requests.inc(n, endpoint=endpoint, status="error")
            message = f"worker pool failed: {error}; server shutting down"
            return ServeResult(
                results=[{"ok": False, "error": message} for _ in payloads]
            )
        with self._counter_lock:
            self.served += n
            self._waits.append(wait)
        responses = {r.request_id: r for r in report.responses}
        results: List[Dict[str, Any]] = []
        for kind, value in slots:
            if kind == "id":
                results.append(responses[value].to_dict())
            else:
                results.append({"ok": False, "error": value})
        total_s = time.perf_counter() - started
        self._finish_telemetry(results, endpoint, wait, flush_elapsed, total_s)
        return ServeResult(results=results, queue_wait_s=wait)

    def _finish_telemetry(
        self,
        results: List[Dict[str, Any]],
        endpoint: str,
        wait: float,
        flush_s: float,
        total_s: float,
    ) -> None:
        """Per-call accounting: counters, latency, span enrichment, ring.

        Runs after the pool lock is released.  Traced results gain the
        front-door spans (queue-wait, flush, total) next to the engine's
        compile/execute spans; untraced results are untouched, preserving
        byte transparency.
        """
        errors = 0
        trace_id: Optional[str] = None
        for result in results:
            if not result.get("ok", False):
                errors += 1
            trace = result.get("trace")
            if trace is not None:
                trace["endpoint"] = endpoint
                trace["queue_wait_s"] = round(wait, 6)
                trace["flush_s"] = round(flush_s, 6)
                trace["total_s"] = round(total_s, 6)
                if trace_id is None:
                    trace_id = trace.get("trace_id")
        if errors < len(results):
            self._m_requests.inc(len(results) - errors, endpoint=endpoint, status="ok")
        if errors:
            self._m_requests.inc(errors, endpoint=endpoint, status="error")
        self._m_latency.observe(total_s, endpoint=endpoint)
        self._m_queue_wait.observe(wait)
        self.slow_ring.record(
            total_s,
            {
                "endpoint": endpoint,
                "requests": len(results),
                "errors": errors,
                "queue_wait_s": round(wait, 6),
                "flush_s": round(flush_s, 6),
                "trace_id": trace_id,
            },
        )

    # -- stats --------------------------------------------------------------

    def health_payload(self) -> Dict[str, Any]:
        """Liveness + degradation view, cheap enough for ``/healthz``.

        Reads only lock-free pool counters (never the pool lock), so health
        probes stay fast even while a long flush holds the pool.  ``ok`` is
        True as long as the pool can still serve — transient worker loss is
        *degraded*, not down: the pool respawned a worker inside the current
        breaker window and caches are rewarming, but traffic flows.  A pool
        that tripped the breaker shut the server down, so probes then fail
        at the connection level, not here.
        """
        pool = self.pool
        recent = getattr(pool, "recent_restarts", lambda: 0)()
        return {
            "ok": True,
            "degraded": recent > 0,
            "recent_restarts": recent,
            "worker_restarts": getattr(pool, "worker_restarts", 0),
            "replayed_batches": getattr(pool, "replayed_batches", 0),
        }

    def queue_wait_quantile(self, q: float) -> float:
        """The ``q``-quantile of recent pool-lock queue waits, seconds."""
        with self._counter_lock:  # appends race with stats reads otherwise
            waits = sorted(self._waits)
        if not waits:
            return 0.0
        index = min(len(waits) - 1, max(0, math.ceil(q * len(waits)) - 1))
        return waits[index]

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` wire envelope: counters, queue waits, pool view."""
        with self.pool_lock:
            pool_stats = self.pool.stats_row()
        payload: Dict[str, Any] = {
            "ok": True,
            "op": "stats",
            "served": self.served,
            "shed": self.shed,
            "queue_wait_p50_s": round(self.queue_wait_quantile(0.50), 6),
            "queue_wait_p99_s": round(self.queue_wait_quantile(0.99), 6),
            "health": self.health_payload(),
            "pool": pool_stats,
        }
        if self.admission is not None:
            payload["admission"] = self.admission.snapshot().to_dict()
        return payload

    # -- telemetry ----------------------------------------------------------

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Fold admission counters into metric families (at snapshot)."""
        if self.admission is None:
            return
        snap = self.admission.snapshot()
        registry.counter(
            "admission_admitted_total", "Requests granted an in-flight token."
        ).set_total(snap.admitted)
        registry.counter(
            "admission_shed_total", "Requests shed with a retry hint."
        ).set_total(snap.rejected)
        registry.gauge(
            "admission_inflight", "Requests currently holding tokens."
        ).set(snap.inflight)
        registry.gauge(
            "admission_limit", "Current in-flight token budget."
        ).set(snap.limit)
        registry.gauge(
            "admission_drain_rps", "Estimated pool drain rate, requests/s."
        ).set(snap.drain_rps)

    def metrics_text(self) -> str:
        """Prometheus text exposition across every layer of the stack.

        The single renderer both front doors share: merges this front
        door's registry with the pool's own and the latest per-worker
        engine snapshots, so one scrape covers admission, engine cache
        tiers, pool flush/restart, and per-endpoint latency.
        """
        snapshots = [self.metrics.snapshot()]
        pool_snapshots = getattr(self.pool, "metrics_snapshots", None)
        if pool_snapshots is not None:
            snapshots.extend(pool_snapshots())
        return render_prometheus(snapshots)

    def slow_payload(self) -> Dict[str, Any]:
        """The ``slow`` wire envelope: the top-K slowest front-door calls."""
        return self.slow_ring.payload()
