"""Asyncio HTTP/1.1 front door over the shared :class:`PoolService`.

Like the NDJSON server, the gateway hand-rolls its wire protocol on the
stdlib: an ``asyncio.start_server`` accept loop, a bounded request parser,
and keep-alive connections.  Endpoints:

* ``GET /healthz`` — liveness + degraded state (recent worker respawns),
  from lock-free pool counters — never waits on the pool lock.
* ``GET /v1/stats`` — served/shed counters, queue-wait percentiles, the
  admission snapshot, and the pool's per-worker cache stats.
* ``GET /metrics`` — Prometheus text exposition across the whole stack
  (front door, admission, pool, per-worker engines), rendered by the same
  :meth:`PoolService.metrics_text` the NDJSON ``metrics`` op uses.
* ``GET /v1/slow`` — the top-K slowest front-door calls with their span
  breakdowns (the server-side trace retention ring).
* ``POST /v1/request`` — one JSON request object, one JSON response.
* ``POST /v1/batch`` — ``{"requests": [...]}`` (or a bare list) through
  one pool flush; order-preserving, malformed entries become per-request
  error envelopes.
* ``POST /v1/stream`` — same input, chunked-transfer NDJSON output: the
  request list is served ``chunk`` requests per flush and each flush's
  responses are written as they complete, so the first response leaves the
  server while later ones are still executing.

Backpressure is enforced at both ends of a connection.  On the way in, the
shared :class:`~repro.runtime.gateway.admission.AdmissionController` sheds
work beyond the measured token budget with ``429`` + ``Retry-After`` (the
same budget the NDJSON server enforces).  On the way out, write buffers
are bounded and every write carries a deadline, so a slow reader is
dropped instead of pinning results in memory; idle connections are reaped
by a read deadline.  Pool flushes are blocking, so they run on the event
loop's default thread-pool executor — the asyncio side never blocks on the
pool lock.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.gateway.admission import PoolService
from repro.runtime.logs import event, get_logger
from repro.runtime.telemetry import MetricsRegistry
from repro.runtime.gateway.streaming import (
    ChunkedWriter,
    SlowReaderError,
    drain_write,
    iter_subbatches,
    ndjson_line,
)

#: Wire-visible protocol version, shared with the NDJSON front-end.
GATEWAY_VERSION = 1

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Routes and the methods they answer (for 405 vs 404 discrimination).
_ROUTES = {
    "/healthz": ("GET",),
    "/v1/stats": ("GET",),
    "/v1/slow": ("GET",),
    "/metrics": ("GET",),
    "/v1/request": ("POST",),
    "/v1/batch": ("POST",),
    "/v1/stream": ("POST",),
}

_LOG = get_logger(__name__)


class HttpError(Exception):
    """A request this server refuses, as an HTTP status + JSON detail."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _IdleTimeout(Exception):
    """The read deadline elapsed between or inside requests."""


class ParsedRequest:
    """One parsed HTTP request (method, path, headers, body)."""

    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json_body(self) -> Any:
        """Parse the body as JSON; raises a 400 :class:`HttpError` if invalid."""
        try:
            return json.loads(self.body or b"null")
        except json.JSONDecodeError as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")


def _response_bytes(
    status: int,
    payload: Dict[str, Any],
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload).encode("utf-8") + b"\n"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body


def _text_response_bytes(status: int, text: str, keep_alive: bool) -> bytes:
    """A plain-text response (the Prometheus exposition content type)."""
    body = text.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: text/plain; version=0.0.4; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body


def _stream_header_bytes(keep_alive: bool) -> bytes:
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: application/x-ndjson",
        "Transfer-Encoding: chunked",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"


class HttpGateway:
    """The asyncio HTTP front-end; runs its own event loop in a thread.

    Construction binds nothing — :meth:`start` (or :meth:`__enter__`)
    spawns the loop thread, binds the socket, and publishes the bound
    address as :attr:`http_host` / :attr:`http_port`.  One gateway serves
    exactly one :class:`PoolService`, usually the same instance a
    :class:`~repro.runtime.server.RuntimeServer` wraps.
    """

    def __init__(
        self,
        service: PoolService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout_s: Optional[float] = 60.0,
        write_timeout_s: float = 10.0,
        max_body_bytes: int = 4 * 1024 * 1024,
        write_buffer_limit: int = 256 * 1024,
        stream_chunk: int = 1,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.idle_timeout_s = idle_timeout_s
        self.write_timeout_s = write_timeout_s
        self.max_body_bytes = max_body_bytes
        self.write_buffer_limit = write_buffer_limit
        self.stream_chunk = max(1, stream_chunk)
        self.http_host: Optional[str] = None
        self.http_port: Optional[int] = None
        #: Monotonic counters, mutated only on the loop thread; reads from
        #: other threads see whole int values (stats are best-effort).
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "streamed_responses": 0,
            "shed": 0,
            "idle_reaped": 0,
            "slow_readers_dropped": 0,
            "bad_requests": 0,
            "internal_errors": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Future] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        # Gateway counters surface in /metrics via the shared service
        # registry; folded in at scrape time, never on the request path.
        self.service.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Fold the gateway's connection counters into ``gateway_*``."""
        events = registry.counter(
            "gateway_events_total",
            "HTTP gateway connection/request events, by kind.",
            ("kind",),
        )
        for kind, count in self.counters.items():
            events.set_total(count, kind=kind)

    # -- lifecycle ----------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """``host:port`` the gateway is (or will be) listening on."""
        return f"{self.http_host}:{self.http_port}"

    def start(self, timeout_s: float = 30.0) -> "HttpGateway":
        """Bind and serve on a daemon thread; returns once listening."""
        self._thread = threading.Thread(
            target=self._run_loop, name="http-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("HTTP gateway failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"HTTP gateway failed to bind: {self._startup_error}"
            )
        return self

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop the event loop and join the serving thread; idempotent."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            def _finish() -> None:
                if not stop.done():
                    stop.set_result(None)

            try:
                loop.call_soon_threadsafe(_finish)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "HttpGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if self._started.is_set():
                # Past startup, nothing reads _startup_error: a dying loop
                # would silently take the HTTP endpoint dark while the rest
                # of the process looks healthy.  Say so.
                event(
                    _LOG,
                    logging.ERROR,
                    "http-gateway event loop died",
                    error=repr(error),
                    endpoint=self.endpoint,
                )
            self._startup_error = error
        finally:
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = self._loop.create_future()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        address = server.sockets[0].getsockname()
        self.http_host, self.http_port = address[0], address[1]
        self._started.set()
        async with server:
            await self._stop

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(high=self.write_buffer_limit)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _IdleTimeout:
                    self.counters["idle_reaped"] += 1
                    break
                except HttpError as error:
                    self.counters["bad_requests"] += 1
                    await self._write(
                        writer,
                        _response_bytes(
                            error.status,
                            {"ok": False, "error": error.detail},
                            keep_alive=False,
                        ),
                    )
                    break
                if request is None:
                    break  # clean EOF between requests
                self.counters["requests"] += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                except HttpError as error:
                    await self._write(
                        writer,
                        _response_bytes(
                            error.status,
                            {"ok": False, "error": error.detail},
                            keep_alive=False,
                        ),
                    )
                    break
                except (SlowReaderError, ConnectionError):
                    raise
                except Exception as error:  # noqa: BLE001 - answer, don't drop
                    # An unexpected internal failure still owes the client a
                    # response; 500 then close (the connection state may be
                    # torn mid-stream, so keep-alive is off the table).
                    self.counters["internal_errors"] += 1
                    await self._write(
                        writer,
                        _response_bytes(
                            500,
                            {"ok": False, "error": f"internal error: {error}"},
                            keep_alive=False,
                        ),
                    )
                    break
                if not keep_alive:
                    break
        except SlowReaderError:
            # A graceful close would flush the bounded write buffer first,
            # which is exactly what a stalled client never drains: abort the
            # transport so the buffered results are freed immediately.
            self.counters["slow_readers_dropped"] += 1
            if writer.transport is not None:
                writer.transport.abort()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        try:
            return await asyncio.wait_for(reader.readline(), self.idle_timeout_s)
        except asyncio.TimeoutError:
            raise _IdleTimeout()
        except ValueError:
            raise HttpError(400, "header line too long")

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[ParsedRequest]:
        line = await self._read_line(reader)
        if not line:
            return None
        try:
            method, target, version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "malformed request line")
        if not version.startswith("HTTP/1."):
            raise HttpError(400, f"unsupported protocol {version}")
        headers: Dict[str, str] = {}
        while True:
            raw = await self._read_line(reader)
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise HttpError(400, "connection closed inside headers")
            if len(headers) >= 100:
                raise HttpError(400, "too many headers")
            try:
                name, _, value = raw.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise HttpError(400, "undecodable header")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise HttpError(400, "chunked request bodies are not supported")
        body = b""
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_header!r}")
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > self.max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.idle_timeout_s
                )
            except asyncio.TimeoutError:
                raise _IdleTimeout()
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed inside request body")
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            # HTTP/1.0 defaults to close; holding the socket open would hang
            # clients that delimit responses by connection close.
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        path = target.split("?", 1)[0]
        return ParsedRequest(method.upper(), path, headers, body, keep_alive)

    async def _write(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        await drain_write(writer, data, self.write_timeout_s)

    # -- request dispatch ---------------------------------------------------

    async def _dispatch(
        self, request: ParsedRequest, writer: asyncio.StreamWriter
    ) -> bool:
        methods = _ROUTES.get(request.path)
        if methods is None:
            raise HttpError(404, f"no such endpoint {request.path!r}")
        if request.method not in methods:
            raise HttpError(
                405, f"{request.path} answers {'/'.join(methods)} only"
            )
        if request.path == "/healthz":
            # Lock-free pool counters only: health probes must answer even
            # while a long flush holds the pool lock.
            payload = self.service.health_payload()
            payload["version"] = GATEWAY_VERSION
            await self._write(
                writer, _response_bytes(200, payload, request.keep_alive)
            )
            return request.keep_alive
        if request.path == "/v1/stats":
            stats = await self._in_executor(self.service.stats_payload)
            stats["gateway"] = dict(self.counters)
            stats["version"] = GATEWAY_VERSION
            await self._write(
                writer, _response_bytes(200, stats, request.keep_alive)
            )
            return request.keep_alive
        if request.path == "/metrics":
            # One renderer for both front doors: the NDJSON 'metrics' op
            # wraps the identical text in a JSON envelope.
            text = await self._in_executor(self.service.metrics_text)
            await self._write(
                writer, _text_response_bytes(200, text, request.keep_alive)
            )
            return request.keep_alive
        if request.path == "/v1/slow":
            payload = self.service.slow_payload()
            payload["version"] = GATEWAY_VERSION
            await self._write(
                writer, _response_bytes(200, payload, request.keep_alive)
            )
            return request.keep_alive
        if request.path == "/v1/request":
            return await self._serve_single(request, writer)
        if request.path == "/v1/batch":
            return await self._serve_batch(request, writer)
        return await self._serve_stream(request, writer)

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(None, fn, *args)

    @staticmethod
    def _request_list(body: Any) -> Tuple[List[Any], Dict[str, Any]]:
        """Accept ``{"requests": [...], ...}`` or a bare JSON list."""
        if isinstance(body, list):
            return body, {}
        if isinstance(body, dict):
            requests = body.get("requests")
            if isinstance(requests, list):
                return requests, body
        raise HttpError(
            400, "body must be a JSON list or an object with a 'requests' list"
        )

    def _overload_response(
        self, result, keep_alive: bool, extra: Optional[Dict[str, Any]] = None
    ) -> bytes:
        self.counters["shed"] += len(result.results)
        envelope = result.results[0]
        payload = {
            "ok": False,
            "error": envelope["error"],
            "code": 429,
            "retry_after_s": result.retry_after_s,
            "requested": envelope.get("requested"),
            "limit": envelope.get("limit"),
        }
        payload.update(extra or {})
        return _response_bytes(
            429,
            payload,
            keep_alive,
            extra_headers={"Retry-After": str(max(1, round(result.retry_after_s)))},
        )

    async def _serve_single(
        self, request: ParsedRequest, writer: asyncio.StreamWriter
    ) -> bool:
        payload = request.json_body()
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be one JSON request object")
        result = await self._in_executor(
            self.service.serve_payloads, [payload], "/v1/request"
        )
        if result.shed:
            await self._write(
                writer, self._overload_response(result, request.keep_alive)
            )
            return request.keep_alive
        await self._write(
            writer,
            _response_bytes(200, result.results[0], request.keep_alive),
        )
        return request.keep_alive

    async def _serve_batch(
        self, request: ParsedRequest, writer: asyncio.StreamWriter
    ) -> bool:
        requests, _ = self._request_list(request.json_body())
        result = await self._in_executor(
            self.service.serve_payloads, requests, "/v1/batch"
        )
        if result.shed:
            await self._write(
                writer,
                self._overload_response(
                    result, request.keep_alive, {"requests": len(requests)}
                ),
            )
            return request.keep_alive
        payload = {"ok": True, "responses": result.results}
        await self._write(
            writer, _response_bytes(200, payload, request.keep_alive)
        )
        return request.keep_alive

    async def _serve_stream(
        self, request: ParsedRequest, writer: asyncio.StreamWriter
    ) -> bool:
        requests, envelope = self._request_list(request.json_body())
        chunk = envelope.get("chunk", self.stream_chunk)
        if not isinstance(chunk, int) or chunk < 1:
            raise HttpError(400, "'chunk' must be a positive integer")
        stream = ChunkedWriter(
            writer,
            write_timeout_s=self.write_timeout_s,
            buffer_limit=self.write_buffer_limit,
        )
        await self._write(writer, _stream_header_bytes(request.keep_alive))
        # Each sub-batch is one pool flush; its responses go on the wire
        # before the next sub-batch executes.  Shed sub-batches stream 429
        # envelopes (with retry hints) without ending the response, so a
        # partially-overloaded stream still delivers what was admitted.
        try:
            for sub in iter_subbatches(requests, chunk):
                result = await self._in_executor(
                    self.service.serve_payloads, sub, "/v1/stream"
                )
                if result.shed:
                    self.counters["shed"] += len(result.results)
                for line in result.results:
                    await stream.write_chunk(ndjson_line(line))
                    self.counters["streamed_responses"] += 1
            await stream.finish()
        except (SlowReaderError, ConnectionError):
            raise
        except Exception:  # noqa: BLE001 - headers are already on the wire
            # A 500 response here would be parsed as a chunk-size line by the
            # client's chunked decoder; abort so it sees a clean truncation.
            self.counters["internal_errors"] += 1
            if writer.transport is not None:
                writer.transport.abort()
            return False
        return request.keep_alive
