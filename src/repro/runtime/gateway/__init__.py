"""``repro.runtime.gateway`` — the HTTP/streaming front door on the pool.

Three modules, one subsystem:

* :mod:`repro.runtime.gateway.admission` — the rate-aware
  :class:`AdmissionController` (token budget from measured drain rates)
  and the :class:`PoolService` front door both servers share.
* :mod:`repro.runtime.gateway.http` — the asyncio HTTP/1.1 server
  (``/v1/request``, ``/v1/batch``, ``/v1/stream``, ``/v1/stats``,
  ``/healthz``) with idle reaping and write deadlines.
* :mod:`repro.runtime.gateway.streaming` — chunked-transfer encoding with
  bounded buffers and slow-reader drop.

``http`` imports :mod:`repro.runtime.server` (for nothing today, but the
NDJSON server imports ``gateway.admission`` at module level), so the
package exports resolve lazily — importing ``repro.runtime.gateway``
must never force ``http`` while ``server`` is mid-import.
"""

import importlib

_LAZY_EXPORTS = {
    "AdmissionController": "repro.runtime.gateway.admission",
    "AdmissionDecision": "repro.runtime.gateway.admission",
    "AdmissionSnapshot": "repro.runtime.gateway.admission",
    "PoolService": "repro.runtime.gateway.admission",
    "ServeResult": "repro.runtime.gateway.admission",
    "overload_envelope": "repro.runtime.gateway.admission",
    "GATEWAY_VERSION": "repro.runtime.gateway.http",
    "HttpError": "repro.runtime.gateway.http",
    "HttpGateway": "repro.runtime.gateway.http",
    "ChunkedWriter": "repro.runtime.gateway.streaming",
    "SlowReaderError": "repro.runtime.gateway.streaming",
    "encode_chunk": "repro.runtime.gateway.streaming",
    "iter_subbatches": "repro.runtime.gateway.streaming",
    "ndjson_line": "repro.runtime.gateway.streaming",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        value = getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = sorted(_LAZY_EXPORTS)
