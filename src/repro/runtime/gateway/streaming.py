"""Chunked-transfer streaming with wire-level backpressure.

``POST /v1/stream`` answers with ``Transfer-Encoding: chunked`` and one
NDJSON line per served request, written as each sub-batch completes.  The
risk of streaming is the *slow reader*: a client that stops draining its
socket would otherwise pin every later response in the server's write
buffer forever.  :class:`ChunkedWriter` bounds that two ways:

* the transport's write buffer is capped (``buffer_limit``), so a stalled
  client makes ``drain()`` wait instead of the buffer growing without
  bound, and
* every chunk write carries a deadline (``write_timeout_s``); a drain that
  blocks past it raises :class:`SlowReaderError` and the gateway aborts
  the connection, freeing the buffered results.

:func:`iter_subbatches` is the incremental-flush splitter: a streamed
request list is served ``chunk`` requests per pool flush, which is what
lets the first response leave the server before the batch finishes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Iterator, List, Sequence

from repro.errors import ReproError

CRLF = b"\r\n"
#: Terminal chunk of a chunked-transfer body.
LAST_CHUNK = b"0\r\n\r\n"


class SlowReaderError(ReproError):
    """A client stopped draining its socket past the write deadline."""


async def drain_write(writer, data: bytes, write_timeout_s: float) -> None:
    """Write ``data`` and drain under a deadline (the one write primitive).

    Both plain responses and stream chunks go through this; a drain that
    blocks past the deadline (a stalled client behind a bounded transport
    buffer) raises :class:`SlowReaderError` so the caller can abort the
    connection instead of buffering without bound.
    """
    writer.write(data)
    try:
        await asyncio.wait_for(writer.drain(), write_timeout_s)
    except asyncio.TimeoutError as error:
        raise SlowReaderError(
            f"client did not drain its socket within {write_timeout_s:.1f}s; "
            f"dropping the connection"
        ) from error


def encode_chunk(data: bytes) -> bytes:
    """One chunked-transfer frame: hex size line, payload, CRLF."""
    return f"{len(data):x}".encode("ascii") + CRLF + data + CRLF


def ndjson_line(payload: Dict[str, Any]) -> bytes:
    """One response as an NDJSON line (the stream's chunk payload)."""
    return json.dumps(payload).encode("utf-8") + b"\n"


def iter_subbatches(items: Sequence[Any], chunk: int) -> Iterator[List[Any]]:
    """Split a request list into flush-sized sub-batches, order-preserving."""
    step = max(1, int(chunk))
    for start in range(0, len(items), step):
        yield list(items[start : start + step])


class ChunkedWriter:
    """Deadline-bounded chunked-transfer writer over an asyncio stream.

    The caller writes whole chunks; every write awaits ``drain()`` under
    ``write_timeout_s`` so a stalled client surfaces as
    :class:`SlowReaderError` instead of unbounded buffering.  The bounded
    transport buffer is set once at construction (idempotent with the
    per-connection limit the gateway already applies).
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        write_timeout_s: float = 10.0,
        buffer_limit: int = 256 * 1024,
    ):
        self._writer = writer
        self.write_timeout_s = write_timeout_s
        transport = getattr(writer, "transport", None)
        if transport is not None:
            transport.set_write_buffer_limits(high=buffer_limit)

    async def write_chunk(self, data: bytes) -> None:
        """Write one chunked-transfer frame under the write deadline."""
        if data:
            await drain_write(self._writer, encode_chunk(data), self.write_timeout_s)

    async def finish(self) -> None:
        """Write the terminal chunk that ends the streamed body."""
        await drain_write(self._writer, LAST_CHUNK, self.write_timeout_s)
