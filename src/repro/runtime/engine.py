"""The serving engine: requests in, batched cached execution, responses out.

``Engine`` is the front door of :mod:`repro.runtime`.  Clients submit
:class:`Request` objects naming either a registered Table III application or
raw Revet source; the engine

1. **coalesces** queued requests into :class:`Batch` es that share one
   compilation (same content-addressed program key) and one backend,
2. **compiles once per batch** through the :class:`ProgramCache` (so a warm
   server never re-runs the Figure-8 pipeline for a known program),
3. **executes** each request on its backend (functional executor or an
   analytic baseline model, see :mod:`repro.runtime.backends`), and
4. attaches the paper's modeled latency (``size / throughput + init``) to
   every :class:`Response` so the scheduler can shard work by cost.

Deterministic requests (a registered app with an engine-generated instance)
are additionally memoized in a response tier: identical ``(program, backend,
n_threads, seed, args)`` requests are served straight from the LRU without
re-executing, which is what makes a warm serving tier fast.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.base import AppInstance, AppSpec, REGISTRY
from repro.compiler import CompileOptions
from repro.core.machine import DEFAULT_MACHINE, MachineConfig
from repro.core.memory import MemorySystem
from repro.errors import ReproError
from repro.runtime.backends import BackendRegistry, BackendRequestContext
from repro.runtime.cache import CacheStats, LRUCache, ProgramCache
from repro.runtime.telemetry import MetricsRegistry
from repro.sim.perf_model import ThroughputReport


class EngineError(ReproError):
    """The engine could not form or execute a request."""


@dataclass
class Request:
    """One unit of client work.

    Exactly one of ``app`` (a name in :data:`repro.apps.REGISTRY`) or
    ``source`` (raw Revet text) must be set.  App requests with no explicit
    ``memory`` get a deterministic generated instance of ``n_threads``
    threads from ``seed``; raw-source requests must bring their own
    pre-staged :class:`MemorySystem` and scalar ``args``.
    """

    app: Optional[str] = None
    source: Optional[str] = None
    function: str = "main"
    args: Dict[str, int] = field(default_factory=dict)
    memory: Optional[MemorySystem] = None
    n_threads: int = 8
    seed: int = 0
    backend: str = "vrda"
    options: Optional[CompileOptions] = None
    #: Opt into a span breakdown on the response (byte-transparent when off).
    trace: bool = False
    #: Propagated trace id; minted at the front door when tracing without one.
    trace_id: Optional[str] = None

    def validate(self) -> None:
        """Check field consistency; raises :class:`EngineError` when invalid."""
        if (self.app is None) == (self.source is None):
            raise EngineError("a request names either 'app' or 'source'")
        if self.app is not None and self.memory is None and self.args:
            raise EngineError(
                "app requests with generated instances take their arguments "
                "from the generator; stage 'memory' explicitly to pass 'args'")

    def resolve(self) -> Tuple[Optional[AppSpec], str]:
        """Return ``(spec, source_text)`` for this request."""
        self.validate()
        if self.app is not None:
            try:
                spec = REGISTRY.get_servable(self.app)
            except KeyError as error:
                raise EngineError(str(error)) from error
            return spec, spec.source
        return None, self.source

    # -- wire form (the server/client NDJSON protocol) ----------------------

    #: Fields a JSON request payload may carry.  ``memory`` deliberately
    #: isn't one of them: staged memory images don't cross the wire.
    WIRE_FIELDS = ("app", "source", "function", "args", "n_threads", "seed",
                   "backend", "options", "trace", "trace_id")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; raises for requests with staged memory."""
        if self.memory is not None:
            raise EngineError("requests with staged 'memory' are not "
                              "wire-serializable")
        payload: Dict[str, Any] = {}
        for name in self.WIRE_FIELDS:
            value = getattr(self, name)
            if name == "options":
                value = asdict(value) if value is not None else None
            if name == "trace" and not value:
                continue  # untraced requests keep the pre-telemetry wire form
            if value not in (None, {}, ()):
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Request":
        """Build a request from a JSON payload, rejecting unknown fields."""
        if not isinstance(payload, dict):
            raise EngineError("request payload must be a JSON object")
        unknown = sorted(set(payload) - set(cls.WIRE_FIELDS))
        if unknown:
            raise EngineError(f"unknown request fields {unknown}; "
                              f"expected a subset of {list(cls.WIRE_FIELDS)}")
        fields = dict(payload)
        options = fields.pop("options", None)
        if options is not None:
            try:
                options = CompileOptions(**options)
            except TypeError as error:
                raise EngineError(f"bad compile options: {error}") from error
        request = cls(options=options, **fields)
        request.validate()
        return request


@dataclass
class Response:
    """One served request, in submission order."""

    request_id: int
    app: Optional[str]
    backend: str
    ok: bool
    error: Optional[str] = None
    #: Output-segment contents (functional backends on app requests).
    outputs: Optional[List[int]] = None
    #: Reference-oracle verdict when one was available.
    correct: Optional[bool] = None
    modeled_gbs: float = 0.0
    modeled_runtime_s: float = 0.0
    report: Optional[ThroughputReport] = None
    program_cache_hit: Optional[bool] = None
    result_cache_hit: bool = False
    batch_id: int = -1
    #: Span breakdown, present only when the request opted into tracing.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the server's response line).

        The full :class:`~repro.sim.perf_model.ThroughputReport` collapses
        to its rounded ``as_row`` dict so every field stays a JSON scalar.
        The ``trace`` key appears only for traced requests, keeping untraced
        responses byte-identical to a stack without telemetry.
        """
        payload = asdict(self)
        payload["report"] = self.report.as_row() if self.report else None
        if self.trace is None:
            del payload["trace"]
        return payload


@dataclass
class Batch:
    """Requests that share one compiled program and one backend."""

    batch_id: int
    program_key: Optional[str]
    backend: str
    entries: List[Tuple[int, Request]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class Engine:
    """Cached, batched request execution over the Revet compiler."""

    def __init__(self, program_cache: Optional[ProgramCache] = None,
                 backends: Optional[BackendRegistry] = None,
                 machine: MachineConfig = DEFAULT_MACHINE,
                 max_batch_size: int = 16,
                 result_cache_capacity: int = 512,
                 init_latency_s: float = 1e-4,
                 intra_batch_workers: int = 1,
                 executor: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        """Build a serving engine.

        Args:
            program_cache: content-addressed compiled-program tier; pass
                ``ProgramCache(capacity=0)`` to force a compile per batch.
            backends: dispatch table of serving targets; defaults to the
                four standard backends (``vrda``/``cpu``/``gpu``/``aurochs``).
                When provided, ``executor`` must be left unset — the registry
                already fixed its functional backend's interpreter.
            machine: hardware model handed to backends and the perf model.
            max_batch_size: cap on requests coalesced into one batch.
            result_cache_capacity: LRU entries in the response memo tier;
                0 disables result caching.
            init_latency_s: per-request init term of the modeled latency.
            intra_batch_workers: >1 runs a batch's cache-miss entries on a
                bounded thread pool (deterministic responses regardless).
            executor: functional interpreter for the ``vrda`` backend —
                ``"columnar"``, ``"token"``, or ``None``/``"auto"``
                (columnar when numpy is available).  Raises ``ValueError``
                for unknown names and ``RuntimeError`` for ``"columnar"``
                without numpy.
            metrics: telemetry registry to instrument into; defaults to a
                private per-engine registry (each pool worker child ships
                its own back with every flush reply).  Pass
                ``MetricsRegistry(enabled=False)`` to null out telemetry.

        Thread-safety: one engine may be driven from one thread;
        ``intra_batch_workers`` only parallelizes internally.
        """
        self.program_cache = (program_cache if program_cache is not None
                              else ProgramCache())
        if backends is not None and executor is not None:
            raise EngineError(
                "pass 'executor' or a prebuilt 'backends' registry, not both")
        self.backends = (backends if backends is not None
                         else BackendRegistry(machine, init_latency_s,
                                              executor=executor))
        self.max_batch_size = max(1, max_batch_size)
        self.intra_batch_workers = max(1, intra_batch_workers)
        self.result_cache = LRUCache(result_cache_capacity)
        self._queue: List[Tuple[int, Request]] = []
        self._failed: List[Response] = []
        self._next_request_id = 0
        self._next_batch_id = 0
        self.backend_counts: Dict[str, int] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Hot-path cost discipline: the engine only *times at batch level*
        # (two perf_counter calls per batch); every per-request counter is
        # derived at snapshot time from counters the engine already keeps.
        self._m_batches = self.metrics.counter(
            "engine_batches_total", "Coalesced batches executed.")
        self._m_compile_s = self.metrics.histogram(
            "engine_compile_seconds", "Per-batch program compile time.")
        self._m_batch_s = self.metrics.histogram(
            "engine_batch_execute_seconds", "Per-batch execute wall clock.")
        self.metrics.add_collector(self._collect_metrics)

    # -- submission ---------------------------------------------------------

    def submit(self, request: Request) -> int:
        """Queue one request; returns its id (also its response order)."""
        request.validate()
        request_id = self._next_request_id
        self._next_request_id += 1
        self._queue.append((request_id, request))
        return request_id

    def process(self, requests: List[Request]) -> List[Response]:
        """Submit and serve a whole trace; responses in submission order."""
        for request in requests:
            self.submit(request)
        return self.flush()

    # -- batching -----------------------------------------------------------

    def coalesce(self) -> List[Batch]:
        """Group the queue into program/backend batches of bounded size.

        Grouping preserves arrival order within a batch; response order is
        restored by request id after execution, so clients never observe
        the coalescing.
        """
        batches: List[Batch] = []
        open_batches: Dict[Tuple[Optional[str], str], Batch] = {}
        for request_id, request in self._queue:
            try:
                _, source = request.resolve()
                backend = self.backends.get(request.backend)
            except ReproError as error:
                self._failed.append(self._error_response(
                    request_id, request,
                    Batch(batch_id=-1, program_key=None,
                          backend=request.backend),
                    str(error)))
                continue
            key = (self.program_cache.key(source, request.function,
                                          request.options)
                   if backend.needs_program else None)
            slot = (key, request.backend)
            batch = open_batches.get(slot)
            if batch is None or len(batch) >= self.max_batch_size:
                batch = Batch(batch_id=self._next_batch_id, program_key=key,
                              backend=request.backend)
                self._next_batch_id += 1
                batches.append(batch)
                open_batches[slot] = batch
            batch.entries.append((request_id, request))
        self._queue = []
        return batches

    def drain_failed(self) -> List[Response]:
        """Take the error responses accumulated while coalescing.

        :meth:`flush` drains these itself; external dispatchers (the worker
        pool) that call :meth:`coalesce` directly must collect them here so
        malformed requests still produce ordered error responses.
        """
        failed, self._failed = self._failed, []
        return failed

    def flush(self) -> List[Response]:
        """Serve everything queued; returns responses in submission order."""
        responses: List[Response] = []
        for batch in self.coalesce():
            responses.extend(self.execute_batch(batch))
        responses.extend(self.drain_failed())
        responses.sort(key=lambda r: r.request_id)
        return responses

    # -- execution ----------------------------------------------------------

    def execute_batch(self, batch: Batch) -> List[Response]:
        """Serve one coalesced batch (compile once, then run every entry).

        Public because pool workers execute batches formed by a remote
        dispatcher; responses come back in batch-entry order.

        With ``intra_batch_workers > 1`` the entries that actually need
        execution run concurrently on a bounded thread pool.  Responses and
        cache behaviour stay deterministic regardless of the worker count:

        1. an *admission scan* in entry order decides each entry's fate —
           replay a result-cache hit, execute a miss, or defer a duplicate
           of an earlier miss in the same batch (sequential execution would
           have served it from the cache),
        2. the misses execute — generated-instance requests concurrently
           (state is private: each has its own instance, memory image, and
           executor; the compiled program is shared read-only), requests
           with client-staged memory serially (entries may share one
           mutable ``MemorySystem``), and
        3. an *accounting scan* in entry order does every cache write and
           counter update, and replays the deferred duplicates.
        """
        batch_started = time.perf_counter()
        backend = self.backends.get(batch.backend)
        program = None
        program_hit: Optional[bool] = None
        compile_s = 0.0
        if backend.needs_program and batch.entries:
            _, first = batch.entries[0]
            _, source = first.resolve()
            try:
                compile_started = time.perf_counter()
                program, program_hit = self.program_cache.get_or_compile(
                    source, first.function, first.options)
                compile_s = time.perf_counter() - compile_started
                self.program_cache.record_amortized_hits(len(batch.entries) - 1)
            except ReproError as error:
                return [self._error_response(request_id, request, batch,
                                             f"compile failed: {error}")
                        for request_id, request in batch.entries]
            if program_hit is False:
                self._m_compile_s.observe(compile_s)
        entries = batch.entries
        # Phase 1: admission scan (sequential, entry order).
        plans: List[Tuple[str, Any]] = []
        pending: set = set()
        run_positions: List[int] = []
        for position, (request_id, request) in enumerate(entries):
            fingerprint = self._result_fingerprint(request, batch)
            if fingerprint is not None:
                if fingerprint in pending:
                    plans.append(("await", fingerprint))
                    continue
                cached = self.result_cache.get(fingerprint)
                if cached is not None:
                    plans.append(("replay", self._replay(
                        cached, request_id, request, batch, program_hit,
                        compile_s)))
                    continue
                pending.add(fingerprint)
            plans.append(("run", fingerprint))
            run_positions.append(position)
        # Phase 2: execute the misses (concurrently when configured).
        # Requests with staged memory images may share one mutable
        # MemorySystem between entries, so only engine-generated instances
        # (private memory per request) are eligible for the thread pool.
        executed: Dict[int, Response] = {}
        fanned = [p for p in run_positions if entries[p][1].memory is None]
        serial = [p for p in run_positions if entries[p][1].memory is not None]
        fan_out = min(self.intra_batch_workers, len(fanned))
        if fan_out > 1:
            with ThreadPoolExecutor(max_workers=fan_out) as pool:
                futures = {
                    position: pool.submit(
                        self._execute_request, entries[position][0],
                        entries[position][1], batch, program, program_hit,
                        compile_s)
                    for position in fanned
                }
                for position, future in futures.items():
                    executed[position] = future.result()
        else:
            serial = run_positions
        for position in serial:
            request_id, request = entries[position]
            executed[position] = self._execute_request(
                request_id, request, batch, program, program_hit, compile_s)
        # Phase 3: accounting scan (sequential, entry order).
        responses: List[Response] = []
        for position, (kind, fingerprint) in enumerate(plans):
            request_id, request = entries[position]
            if kind == "replay":
                responses.append(fingerprint)  # the pre-built replay Response
                continue
            if kind == "await":
                cached = self.result_cache.get(fingerprint)
                if cached is not None:
                    responses.append(self._replay(
                        cached, request_id, request, batch, program_hit,
                        compile_s))
                    continue
                # The first occurrence failed and cached nothing; serve this
                # duplicate for real (what sequential execution would do).
                executed[position] = self._execute_request(
                    request_id, request, batch, program, program_hit,
                    compile_s)
            response = executed[position]
            if response.error is None:
                self.backend_counts[request.backend] = (
                    self.backend_counts.get(request.backend, 0) + 1)
                if fingerprint is not None:
                    # Cached entries never retain a trace: a later untraced
                    # request replaying this fingerprint must get a response
                    # byte-identical to an uncached untraced serve.
                    self.result_cache.put(fingerprint, replace(
                        response,
                        trace=None,
                        outputs=(list(response.outputs)
                                 if response.outputs is not None else None),
                        report=(replace(response.report)
                                if response.report is not None else None)))
            responses.append(response)
        self._m_batches.inc()
        self._m_batch_s.observe(time.perf_counter() - batch_started)
        return responses

    def _replay(self, cached: Response, request_id: int, request: Request,
                batch: Batch, program_hit: Optional[bool],
                compile_s: float = 0.0) -> Response:
        """A result-cache hit as a fresh Response (no shared mutable state).

        The trace is rebuilt from the *current* request (cached entries
        store ``trace=None``), so cache sharing between traced and untraced
        requests never leaks span data across them.
        """
        self.backend_counts[request.backend] = (
            self.backend_counts.get(request.backend, 0) + 1)
        return replace(cached, request_id=request_id,
                       batch_id=batch.batch_id, result_cache_hit=True,
                       program_cache_hit=program_hit,
                       trace=self._trace_span(request, compile_s, 0.0, True),
                       outputs=(list(cached.outputs)
                                if cached.outputs is not None else None),
                       report=(replace(cached.report)
                               if cached.report is not None else None))

    @staticmethod
    def _trace_span(request: Request, compile_s: float, execute_s: float,
                    replayed: bool) -> Optional[Dict[str, Any]]:
        """Engine-side spans for a traced request; None when not tracing."""
        if not request.trace:
            return None
        return {
            "trace_id": request.trace_id,
            "compile_s": round(compile_s, 6),
            "execute_s": round(execute_s, 6),
            "result_cache_hit": replayed,
        }

    def _execute_request(self, request_id: int, request: Request, batch: Batch,
                         program, program_hit: Optional[bool],
                         compile_s: float = 0.0) -> Response:
        """Run one request on its backend; thread-safe (no engine state)."""
        started = time.perf_counter() if request.trace else 0.0
        try:
            spec, _ = request.resolve()
            instance = self._instance_for(request, spec)
            ctx = BackendRequestContext(
                spec=spec,
                instance=instance,
                program=program,
                args=dict(instance.args) if instance is not None else {},
                n_threads=request.n_threads,
                generated=instance is not None and request.memory is None,
            )
            result = self.backends.get(request.backend).execute(ctx)
        except ReproError as error:
            return self._error_response(request_id, request, batch, str(error))
        execute_s = time.perf_counter() - started if request.trace else 0.0
        return Response(
            request_id=request_id,
            app=request.app,
            backend=request.backend,
            ok=result.correct is not False,
            outputs=result.outputs,
            correct=result.correct,
            modeled_gbs=result.modeled_gbs,
            modeled_runtime_s=result.modeled_runtime_s,
            report=result.report,
            program_cache_hit=program_hit,
            result_cache_hit=False,
            batch_id=batch.batch_id,
            trace=self._trace_span(request, compile_s, execute_s, False),
        )

    def _instance_for(self, request: Request,
                      spec: Optional[AppSpec]) -> Optional[AppInstance]:
        if request.memory is not None:
            return AppInstance(memory=request.memory, args=dict(request.args))
        backend = self.backends.get(request.backend)
        if not backend.needs_program:
            return None  # analytic models cost by spec metadata alone
        if spec is not None:
            try:
                return spec.make_instance(request.n_threads, request.seed)
            except KeyError as error:
                raise EngineError(str(error)) from error
        raise EngineError(
            "raw-source requests must provide a pre-staged 'memory'")

    def _result_fingerprint(self, request: Request, batch: Batch):
        """Memoization key for deterministic requests; None if uncacheable."""
        if self.result_cache.capacity <= 0:
            return None
        if request.memory is not None or request.app is None:
            return None  # externally staged state is not replayable
        return (batch.program_key, request.app, request.backend,
                request.n_threads, request.seed,
                tuple(sorted(request.args.items())))

    def _error_response(self, request_id: int, request: Request, batch: Batch,
                        message: str) -> Response:
        return Response(request_id=request_id, app=request.app,
                        backend=request.backend, ok=False, error=message,
                        batch_id=batch.batch_id,
                        trace=self._trace_span(request, 0.0, 0.0, False))

    # -- stats --------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests submitted but not yet coalesced into batches."""
        return len(self._queue)

    @property
    def program_cache_stats(self) -> CacheStats:
        """Counters for the content-addressed compilation tier."""
        return self.program_cache.stats

    @property
    def result_cache_stats(self) -> CacheStats:
        """Counters for the memoized-response tier."""
        return self.result_cache.stats

    @property
    def executor(self) -> str:
        """Resolved functional-interpreter name ("columnar" or "token")."""
        try:
            return getattr(self.backends.get("vrda"), "executor", "token")
        except ReproError:
            return "token"  # registry without a functional backend

    def stats_row(self) -> Dict[str, object]:
        """One flat dict of cache/backend counters (for logs and tests)."""
        return {
            "program_cache": self.program_cache_stats.as_dict(),
            "result_cache": self.result_cache_stats.as_dict(),
            "backend_counts": dict(self.backend_counts),
            "intra_batch_workers": self.intra_batch_workers,
            "executor": self.executor,
        }

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Fold existing engine counters into metric families (at snapshot).

        Runs only when the registry is scraped or snapshotted, so the warm
        serve path (tens of microseconds per request) pays nothing for the
        per-request counters below.
        """
        requests = registry.counter(
            "engine_requests_total", "Requests served, by backend.",
            ("backend",))
        for backend, count in self.backend_counts.items():
            requests.set_total(count, backend=backend)
        executors = registry.counter(
            "engine_executor_requests_total",
            "Functional-backend requests, by resolved executor.",
            ("executor",))
        executors.set_total(self.backend_counts.get("vrda", 0),
                            executor=self.executor)
        lookups = registry.counter(
            "engine_cache_lookups_total",
            "Cache-tier lookups, by tier and outcome.", ("tier", "outcome"))
        evictions = registry.counter(
            "engine_cache_evictions_total", "Cache-tier evictions.", ("tier",))
        for tier, stats in (("program", self.program_cache_stats),
                            ("result", self.result_cache_stats)):
            lookups.set_total(stats.hits, tier=tier, outcome="hit")
            lookups.set_total(stats.misses, tier=tier, outcome="miss")
            if stats.disk_hits:
                lookups.set_total(stats.disk_hits, tier=tier,
                                  outcome="disk_hit")
            evictions.set_total(stats.evictions, tier=tier)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """This engine's registry snapshot (mergeable across workers)."""
        return self.metrics.snapshot()
