"""Fault-injection harness for the self-healing worker pool.

A :class:`FaultPlan` is a picklable description of the faults a test,
benchmark, or chaos run wants injected into pool workers: kill a worker
after its n-th batch, hang it mid-flush, delay or drop one pipe reply, or
corrupt an on-disk program-cache entry.  The plan travels inside
:class:`~repro.runtime.pool.WorkerConfig`, so process workers inherit it
across the spawn boundary exactly like every other config field, and the
``--fault-plan`` dev flag on ``python -m repro.runtime`` and
``python -m repro.runtime.server`` threads it in from the command line.

Workers arm their share of the plan through a :class:`FaultInjector`
(built by ``WorkerConfig.build_injector``), which the batch loop consults
at batch boundaries and just before each flush reply.  Faults are one-shot
by default: a respawned worker comes back with the already-fired faults
stripped (``FaultPlan.respawn_plan``), so a single injected kill exercises
exactly one recovery.  ``repeat: true`` keeps a fault armed across
respawns — that is how the circuit-breaker path is driven to exhaustion.

Fault kinds
-----------

``kill``
    The worker dies (``os._exit(1)`` in process mode, an
    :class:`InjectedFault` in inline mode) once ``after_batches`` batches
    have completed — at the next batch boundary or just before the flush
    reply, whichever comes first.
``hang``
    The worker sleeps ``delay_s`` seconds (an hour when 0) at the same
    trigger points, stalling its flush past the pool's deadline.  Inline
    workers cannot stall the caller, so inline ``hang`` behaves as a kill.
``delay-reply`` / ``drop-reply``
    Process-mode pipe faults: the flush reply is sent ``delay_s`` seconds
    late, or not at all (the parent sees the worker as hung).  Inline
    workers have no pipe; these kinds are ignored there.
``corrupt-cache``
    Overwrites one entry of the worker's on-disk program cache with
    garbage, exercising the crash-safe load path (corruption is a miss,
    never an error).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError

#: Every fault kind a plan may carry, in documentation order.
FAULT_KINDS = ("kill", "hang", "delay-reply", "drop-reply", "corrupt-cache")

#: Sleep used for an unbounded ``hang`` (long enough that the pool's
#: deadline always fires first; the respawn kills the sleeper).
_HANG_FOREVER_S = 3600.0


class FaultPlanError(ReproError):
    """A fault plan was malformed (unknown kind, bad field, bad JSON)."""


class InjectedFault(Exception):
    """An injected fault fired inside an inline worker.

    Process workers die for real (``os._exit``); inline workers raise this
    instead so the pool can run the same detect/respawn/replay path
    deterministically in tests and CI.
    """

    def __init__(self, kind: str, worker: int):
        super().__init__(f"injected {kind} on worker {worker}")
        self.kind = kind
        self.worker = worker


@dataclass(frozen=True)
class Fault:
    """One injectable fault, bound to one worker index.

    ``after_batches`` is the cumulative batch count (within one worker
    process generation) after which the fault is due; 0 means "before the
    first batch".  ``delay_s`` parameterizes ``hang`` and ``delay-reply``.
    One-shot by default; ``repeat`` keeps the fault armed after a respawn.
    """

    kind: str
    worker: int
    after_batches: int = 0
    delay_s: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        """Validate the fault eagerly so bad plans fail at parse time."""
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.worker < 0:
            raise FaultPlanError("fault 'worker' must be a worker index >= 0")
        if self.after_batches < 0:
            raise FaultPlanError("fault 'after_batches' must be >= 0")
        if self.delay_s < 0.0:
            raise FaultPlanError("fault 'delay_s' must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``--fault-plan`` wire syntax)."""
        payload: Dict[str, Any] = {"kind": self.kind, "worker": self.worker}
        if self.after_batches:
            payload["after_batches"] = self.after_batches
        if self.delay_s:
            payload["delay_s"] = self.delay_s
        if self.repeat:
            payload["repeat"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Fault":
        """Build one fault from a JSON object, rejecting unknown fields."""
        if not isinstance(payload, dict):
            raise FaultPlanError("each fault must be a JSON object")
        allowed = {"kind", "worker", "after_batches", "delay_s", "repeat"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise FaultPlanError(
                f"unknown fault fields {unknown}; expected a subset of "
                f"{sorted(allowed)}"
            )
        if "kind" not in payload or "worker" not in payload:
            raise FaultPlanError("a fault needs at least 'kind' and 'worker'")
        try:
            return cls(
                kind=str(payload["kind"]),
                worker=int(payload["worker"]),
                after_batches=int(payload.get("after_batches", 0)),
                delay_s=float(payload.get("delay_s", 0.0)),
                repeat=bool(payload.get("repeat", False)),
            )
        except (TypeError, ValueError) as error:
            raise FaultPlanError(f"bad fault field: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of faults to inject into a pool."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def from_spec(cls, spec: Union[Sequence[Any], Dict[str, Any]]) -> "FaultPlan":
        """Build a plan from a JSON-shaped spec.

        Accepts either a bare list of fault objects or an envelope
        ``{"faults": [...]}``.
        """
        if isinstance(spec, dict):
            spec = spec.get("faults")
        if not isinstance(spec, (list, tuple)):
            raise FaultPlanError(
                "a fault plan is a JSON list of faults (or an object with a "
                "'faults' list)"
            )
        return cls(faults=tuple(Fault.from_dict(entry) for entry in spec))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text (the ``--fault-plan`` flag value)."""
        try:
            return cls.from_spec(json.loads(text))
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form, round-trippable through ``from_spec``."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    def for_worker(self, index: int) -> List[Fault]:
        """The faults bound to one worker index, in plan order."""
        return [fault for fault in self.faults if fault.worker == index]

    def respawn_plan(self, index: int) -> "Optional[FaultPlan]":
        """The plan a respawned worker ``index`` should come back with.

        One-shot faults for that worker are dropped (its previous process
        generation consumed them); ``repeat`` faults and other workers'
        faults survive.  Returns ``None`` when nothing is left, so the
        respawned worker skips injector setup entirely.
        """
        kept = tuple(
            fault
            for fault in self.faults
            if fault.worker != index or fault.repeat
        )
        return FaultPlan(faults=kept) if kept else None


def load_fault_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Parse a ``--fault-plan`` argument: inline JSON or ``@path`` to a file."""
    if spec is None or not spec.strip():
        return None
    text = spec
    if spec.startswith("@"):
        path = Path(spec[1:])
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path}: {error}")
    plan = FaultPlan.from_json(text)
    return plan if plan else None


class FaultInjector:
    """Worker-side arm of one :class:`FaultPlan`.

    One injector lives per worker *process generation*: the batch loop
    calls :meth:`on_batch_start` / :meth:`on_batch_done` around every
    batch, and process workers call :meth:`before_reply` just before each
    flush reply goes down the pipe.  Fired one-shot faults are remembered
    so they trigger exactly once per generation.
    """

    def __init__(
        self,
        plan: FaultPlan,
        worker: int,
        inline: bool,
        disk_dir: "Optional[str | Path]" = None,
    ):
        self.worker = worker
        self.inline = inline
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._armed = plan.for_worker(worker)
        self._fired: set = set()
        self.batches_done = 0

    def _due(self, kinds: Tuple[str, ...]) -> List[Tuple[int, Fault]]:
        return [
            (slot, fault)
            for slot, fault in enumerate(self._armed)
            if fault.kind in kinds
            and slot not in self._fired
            and self.batches_done >= fault.after_batches
        ]

    def _mark(self, slot: int, fault: Fault) -> None:
        if not fault.repeat:
            self._fired.add(slot)

    def _crash(self) -> None:
        """Fire any due kill/hang fault; may never return."""
        for slot, fault in self._due(("kill", "hang")):
            self._mark(slot, fault)
            if fault.kind == "hang" and not self.inline:
                time.sleep(fault.delay_s or _HANG_FOREVER_S)
                continue  # a bounded hang resumes service afterwards
            if self.inline:
                # Inline workers cannot die or stall the caller: both kinds
                # surface as a crash the pool recovers from.
                raise InjectedFault(fault.kind, self.worker)
            os._exit(1)

    def on_batch_start(self) -> None:
        """Batch-boundary hook: due kill/hang faults fire here."""
        self._crash()

    def on_batch_done(self) -> None:
        """Post-batch hook: advances the batch count, corrupts caches."""
        self.batches_done += 1
        for slot, fault in self._due(("corrupt-cache",)):
            self._mark(slot, fault)
            self._corrupt_cache_entry()

    def before_reply(self) -> bool:
        """Pre-reply hook; returns False when the reply must be dropped.

        Due kill/hang faults fire here too, so ``after_batches`` equal to
        the flush's batch count means "die mid-flush, after the work but
        before the reply" — the replay-forcing case.
        """
        self._crash()
        dropped = False
        for slot, fault in self._due(("drop-reply",)):
            self._mark(slot, fault)
            dropped = True
        for slot, fault in self._due(("delay-reply",)):
            self._mark(slot, fault)
            time.sleep(fault.delay_s)
        return not dropped

    def _corrupt_cache_entry(self) -> None:
        """Overwrite the first on-disk cache entry with garbage bytes."""
        if self.disk_dir is None:
            return
        entries = sorted(self.disk_dir.glob("*.pkl"))
        if entries:
            entries[0].write_bytes(b"\x00corrupted-by-fault-injection")
