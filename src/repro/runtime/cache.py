"""Content-addressed caches for the serving engine.

Every entry point in the seed repo recompiled its program from source on
every run.  :class:`ProgramCache` removes that cost for a serving workload:
compiled programs are keyed on ``sha256(source) + function +
CompileOptions.cache_key()`` so two textually identical programs compiled
with the same knobs share one :class:`~repro.dataflow.lowering.CompiledProgram`.

Two tiers:

* an in-memory LRU (:class:`LRUCache`) bounded by entry count, and
* an optional on-disk pickle tier that survives process restarts.  Disk
  writes are best-effort: a program that fails to pickle simply stays
  memory-only.

:class:`LRUCache` is generic and also backs the engine's memoized-response
tier (see :mod:`repro.runtime.engine`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.compiler import CompileOptions, compile_source
from repro.dataflow.lowering import CompiledProgram


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without recomputation (0.0 when idle).

        Disk hits count as hits: the caller skipped the compile pipeline.
        """
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form (the wire/benchmark representation)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "hit_rate": round(self.hit_rate, 4),
        }

    def as_dict(self) -> Dict[str, float]:
        """Alias of :meth:`to_dict` (historical name used by benchmarks)."""
        return self.to_dict()

    def snapshot(self) -> "CacheStats":
        """An independent copy, safe to ship across a process boundary."""
        return replace(self)

    @classmethod
    def merged(cls, stats: Iterable["CacheStats"]) -> "CacheStats":
        """Aggregate counters across cache tiers (e.g. one per pool worker)."""
        total = cls()
        for entry in stats:
            total.hits += entry.hits
            total.misses += entry.misses
            total.evictions += entry.evictions
            total.disk_hits += entry.disk_hits
            total.disk_writes += entry.disk_writes
        return total


class LRUCache:
    """A bounded mapping with least-recently-used eviction and stats.

    ``capacity <= 0`` disables storage entirely (every lookup misses), which
    is how the benchmarks model a cold serving tier.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None`` on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: Any, value: Any) -> None:
        """Insert/refresh an entry, evicting the least-recent past capacity."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def keys(self):
        """Current keys, LRU order (least recently used first)."""
        return list(self._entries.keys())


def source_fingerprint(source: str) -> str:
    """Stable content hash of one Revet source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def program_key(source: str, function: str = "main",
                options: Optional[CompileOptions] = None) -> str:
    """Content address of one (source, entry function, options) compilation."""
    options = options or CompileOptions()
    tag = f"{function}|{options.cache_key()}"
    return hashlib.sha256(
        (source_fingerprint(source) + "|" + tag).encode("utf-8")
    ).hexdigest()


class ProgramCache:
    """Memoizes the full Figure-8 compile pipeline behind a content address.

    ``get_or_compile`` is the only entry point the engine needs: it returns
    the compiled program plus whether the request was served from cache.
    """

    def __init__(self, capacity: int = 64,
                 disk_dir: "Optional[str | Path]" = None):
        self._memory = LRUCache(capacity)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    @property
    def stats(self) -> CacheStats:
        """Counters for the memory tier (disk hits/writes included)."""
        return self._memory.stats

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory

    def resident_keys(self) -> List[str]:
        """Memory-tier content keys, LRU order (oldest first).

        This is the residency report a pool worker sends back to the
        dispatcher so :class:`repro.sim.policies.CacheAffinityPolicy` can
        route the next round of batches to warm caches.
        """
        return self._memory.keys()

    @staticmethod
    def key(source: str, function: str = "main",
            options: Optional[CompileOptions] = None) -> str:
        """Content address for one compilation (see :func:`program_key`)."""
        return program_key(source, function, options)

    def get_or_compile(self, source: str, function: str = "main",
                       options: Optional[CompileOptions] = None
                       ) -> Tuple[CompiledProgram, bool]:
        """Return ``(program, cache_hit)`` for one compilation request."""
        key = self.key(source, function, options)
        program = self._memory.get(key)
        if program is not None:
            return program, True
        program = self._load_disk(key)
        if program is not None:
            self._memory.stats.hits += 1
            self._memory.stats.misses -= 1  # the lookup was ultimately served
            self._memory.stats.disk_hits += 1
            self._memory.put(key, program)
            return program, True
        program = compile_source(source, function=function, options=options)
        self._memory.put(key, program)
        self._store_disk(key, program)
        return program, False

    def record_amortized_hits(self, count: int) -> None:
        """Count requests served by a compilation shared within one batch.

        The engine compiles once per batch; every additional request in the
        batch skipped the pipeline just as a cache hit would, so hit-rate
        accounting treats it as one.  A disabled cache (capacity <= 0)
        records nothing: its stats must read 0% so cold-tier measurements
        stay honest.
        """
        if count > 0 and self._memory.capacity > 0:
            self._memory.stats.hits += count

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier; ``disk=True`` also unlinks pickle entries."""
        self._memory.clear()
        if disk and self.disk_dir is not None:
            for path in self.disk_dir.glob("*.pkl"):
                path.unlink()
            for path in self.disk_dir.glob("*.pkl.tmp-*"):
                path.unlink()

    # -- disk tier ----------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        return self.disk_dir / f"{key}.pkl" if self.disk_dir is not None else None

    def _load_disk(self, key: str) -> Optional[CompiledProgram]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Corrupt entry (truncated write, bad bytes, stale format): a
            # miss, never an error.  Unlink it so the recompiled program can
            # be stored cleanly instead of hitting the same garbage forever.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_disk(self, key: str, program: CompiledProgram) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        # Crash-safe write: pickle into a same-directory temp file, then
        # atomically rename over the final path.  A worker killed mid-write
        # can leave a stray temp file but never a truncated entry.
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(program, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self._memory.stats.disk_writes += 1
        except Exception:
            # Unpicklable program: memory tier still serves it.
            try:
                tmp.unlink()
            except OSError:
                pass
