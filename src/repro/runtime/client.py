"""Client for the runtime server's NDJSON protocol, plus the CI smoke drivers.

:class:`RuntimeClient` is the programmatic side of
:mod:`repro.runtime.server`: one TCP connection, one JSON object per line,
blocking round-trips — now with a connect timeout (and bounded connect
retries), a read timeout on every round-trip, and bounded exponential
backoff that honors the server's ``retry_after_s`` hint when the front
door sheds load with a 429 envelope.

``python -m repro.runtime.client --smoke`` is the end-to-end self-test CI
runs on every Python version: it spawns a server subprocess on a free
port, drives a synthetic trace through ``batch`` round-trips, checks every
response, and asserts the server shuts down cleanly (exit code 0) on the
``shutdown`` op.  ``--smoke-http`` does the same through the HTTP gateway:
plain requests, a chunked ``/v1/stream`` (asserting the first response
arrives before the last), and a deterministic 429 + ``Retry-After``
exercise against the admission budget.  ``--smoke-metrics`` is the
telemetry exercise: traced traffic over an injected worker fault, then a
``GET /metrics`` scrape cross-checked against ``/v1/stats``.

The client also keeps its own counters — round-trip latency quantiles,
reconnects, 429 sheds, and backoff time — exposed without a server
round-trip via :meth:`RuntimeClient.local_stats` (and folded into
:meth:`RuntimeClient.stats` under the ``"client"`` key).
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runtime.telemetry import Histogram

LISTENING_PREFIX = "runtime-server listening on "
HTTP_LISTENING_PREFIX = "runtime-server http listening on "


class ClientError(ReproError):
    """The server connection failed or returned an unreadable reply."""


class OverloadedError(ClientError):
    """The server kept shedding (429) past the client's retry budget."""

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ConnectionLostError(ClientError):
    """The connection dropped mid-round-trip (reset, EOF, broken pipe).

    Distinct from a plain :class:`ClientError` so callers — and
    :meth:`RuntimeClient.request` itself — can tell "the server is gone or
    restarting, reconnect and retry" apart from "the reply was garbage" or
    "the operation timed out" (where the request may still be executing and
    a blind retry is not safe for non-idempotent work).
    """


class RuntimeClient:
    """Blocking NDJSON client for one :class:`RuntimeServer` connection.

    ``timeout`` bounds every read/write on the established connection;
    ``connect_timeout``/``connect_retries`` bound connection establishment
    (retried with ``backoff_s`` doubling per attempt — a freshly spawned
    server may not be accepting yet).  ``max_retries_429`` is how many
    times :meth:`request`/:meth:`batch` re-send after an overload envelope,
    sleeping the server's ``retry_after_s`` hint (clamped to
    ``max_backoff_s``) between attempts; 0 surfaces the envelope directly.
    ``reconnect_retries`` bounds how many times :meth:`request` reconnects
    and re-sends after the connection drops mid-round-trip (idempotent
    single requests only); 0 surfaces :class:`ConnectionLostError`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        *,
        connect_timeout: Optional[float] = 10.0,
        connect_retries: int = 0,
        max_retries_429: int = 0,
        reconnect_retries: int = 1,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries_429 = max_retries_429
        self.reconnect_retries = max(0, reconnect_retries)
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._sleep = sleep
        self._connect_timeout = connect_timeout
        self._connect_retries = max(0, connect_retries)
        # Client-side observability: load generators (and the future
        # autoscaler) read these via local_stats()/stats() without any
        # server round-trip of their own.
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, float] = {
            "roundtrips": 0,
            "errors": 0,
            "reconnects": 0,
            "sheds_429": 0,
            "backoff_sleeps": 0,
            "backoff_s_total": 0.0,
        }
        self._latency = Histogram(
            "client_roundtrip_seconds",
            "Client-observed round-trip wall clock (successful replies).",
        )
        self._connect()

    def _count(self, name: str, amount: float = 1.0) -> None:
        with self._stats_lock:
            self._counters[name] += amount

    def _connect(self) -> None:
        """(Re-)establish the connection with bounded, backed-off retries."""
        attempts = self._connect_retries + 1
        delay = max(self.backoff_s, 1e-3)
        last_error: Optional[OSError] = None
        for attempt in range(attempts):
            try:
                self._socket = socket.create_connection(
                    (self.host, self.port), timeout=self._connect_timeout
                )
                break
            except OSError as error:
                last_error = error
                if attempt + 1 < attempts:
                    self._sleep(delay)
                    delay = min(delay * 2, self.max_backoff_s)
        else:
            raise ClientError(
                f"cannot connect to {self.host}:{self.port}: {last_error}"
            )
        #: Established: every read/write is bounded by the op timeout.
        self._socket.settimeout(self.timeout)
        self._file = self._socket.makefile("rwb")

    def close(self) -> None:
        """Close the connection; safe to call twice, never raises."""
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "RuntimeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one JSON line, block for one JSON line back."""
        started = time.perf_counter()
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except TimeoutError as error:
            # Timeouts are NOT connection loss: the request may still be
            # executing server-side, so no automatic retry.
            self._count("errors")
            raise ClientError(
                f"server round-trip failed after {self.timeout}s: {error}"
            )
        except OSError as error:
            self._count("errors")
            raise ConnectionLostError(f"connection lost mid-round-trip: {error}")
        if not line:
            self._count("errors")
            raise ConnectionLostError("server closed the connection")
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as error:
            self._count("errors")
            raise ClientError(f"unreadable server reply: {error}")
        self._latency.observe(time.perf_counter() - started)
        self._count("roundtrips")
        return reply

    def _roundtrip_with_backoff(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Round-trip, retrying overload envelopes per the server's hint."""
        delay = max(self.backoff_s, 1e-3)
        reply = self.roundtrip(payload)
        for _ in range(self.max_retries_429):
            if reply.get("code") != 429:
                return reply
            self._count("sheds_429")
            requested = reply.get("requested")
            limit = reply.get("limit")
            if requested is not None and limit is not None and requested > limit:
                # The batch exceeds the whole budget: retrying the same
                # size can never be admitted, even on an idle pool.  The
                # caller must chunk it, so surface the envelope directly.
                return reply
            hint = float(reply.get("retry_after_s") or 0.0)
            pause = min(max(hint, delay), self.max_backoff_s)
            self._count("backoff_sleeps")
            self._count("backoff_s_total", pause)
            self._sleep(pause)
            delay = min(delay * 2, self.max_backoff_s)
            reply = self.roundtrip(payload)
        if reply.get("code") == 429:
            self._count("sheds_429")
        return reply

    # -- protocol ops -------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness round-trip; returns the server's version envelope."""
        return self.roundtrip({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Fetch served/shed counters and per-worker cache stats.

        The server's envelope is augmented with a ``"client"`` section —
        :meth:`local_stats` — so one call shows both sides of the wire.
        """
        reply = self.roundtrip({"op": "stats"})
        if isinstance(reply, dict):
            reply["client"] = self.local_stats()
        return reply

    def local_stats(self) -> Dict[str, Any]:
        """This client's own counters; no server round-trip involved.

        Round-trip latency quantiles come from the same log-spaced bucket
        histogram the server uses, so client- and server-side latency are
        directly comparable.
        """
        with self._stats_lock:
            counters = dict(self._counters)
        child = self._latency.snapshot_values().get((), None)
        count = child["count"] if child else 0
        mean = child["sum"] / count if count else 0.0
        return {
            "roundtrips": int(counters["roundtrips"]),
            "errors": int(counters["errors"]),
            "reconnects": int(counters["reconnects"]),
            "sheds_429": int(counters["sheds_429"]),
            "backoff_sleeps": int(counters["backoff_sleeps"]),
            "backoff_s_total": round(counters["backoff_s_total"], 6),
            "latency": {
                "count": count,
                "mean_s": round(mean, 6),
                "p50_s": round(self._latency.quantile(0.5), 6),
                "p95_s": round(self._latency.quantile(0.95), 6),
                "p99_s": round(self._latency.quantile(0.99), 6),
            },
        }

    def request(self, **fields: Any) -> Dict[str, Any]:
        """Serve one request, e.g. ``client.request(app="strlen", seed=1)``.

        Single requests are idempotent (re-serving one yields the same
        response, at worst re-billing a cache hit), so a connection lost
        mid-round-trip is healed transparently: reconnect, re-send, up to
        ``reconnect_retries`` times with the same bounded backoff the 429
        path uses.  Batches are not retried this way — re-flushing a big
        batch after a mid-flight drop is the caller's call.
        """
        payload = {"op": "request"}
        payload.update(fields)
        delay = max(self.backoff_s, 1e-3)
        for _ in range(self.reconnect_retries):
            try:
                return self._roundtrip_with_backoff(payload)
            except ConnectionLostError:
                self.close()
                self._sleep(delay)
                delay = min(delay * 2, self.max_backoff_s)
                self._connect()
                self._count("reconnects")
        return self._roundtrip_with_backoff(payload)

    def batch(self, requests: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Serve many requests through one pool flush; order is preserved.

        Raises :class:`OverloadedError` when the server sheds the batch and
        the 429 retry budget is exhausted.
        """
        reply = self._roundtrip_with_backoff(
            {"op": "batch", "requests": list(requests)}
        )
        if not reply.get("ok"):
            if reply.get("code") == 429:
                raise OverloadedError(
                    f"batch shed: {reply.get('error')}",
                    retry_after_s=float(reply.get("retry_after_s") or 0.0),
                )
            raise ClientError(f"batch failed: {reply.get('error')}")
        return reply["responses"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to exit cleanly; returns its acknowledgement."""
        return self.roundtrip({"op": "shutdown"})


def spawn_server(
    extra_args: Optional[Sequence[str]] = None,
    startup_timeout: float = 60.0,
    expect_http: bool = False,
):
    """Start ``python -m repro.runtime.server`` and wait for its endpoint.

    Returns ``(process, host, port)``, or ``(process, host, port,
    http_host, http_port)`` with ``expect_http=True`` (the caller must then
    pass ``--http-port`` in ``extra_args``).  The caller owns the process
    and should drive a ``shutdown`` op (or kill it) when done.
    """
    command = [sys.executable, "-u", "-m", "repro.runtime.server", "--port", "0"]
    command += list(extra_args or [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # readline() has no timeout of its own; a reader thread bounds the wait
    # so a server that hangs before announcing its endpoint fails fast.
    expected = [LISTENING_PREFIX] + ([HTTP_LISTENING_PREFIX] if expect_http else [])
    box: Dict[int, str] = {}

    def _read_endpoints() -> None:
        for index in range(len(expected)):
            box[index] = process.stdout.readline()

    reader = threading.Thread(target=_read_endpoints, daemon=True)
    reader.start()
    reader.join(startup_timeout)

    def _parse(index: int, prefix: str) -> Tuple[str, int]:
        line = box.get(index)
        if line is None or not line.startswith(prefix):
            process.kill()
            what = "timed out" if line is None else f"got {line!r}"
            raise ClientError(f"server failed to start ({what})")
        host, _, port = line.removeprefix(prefix).strip().rpartition(":")
        return host, int(port)

    host, port = _parse(0, LISTENING_PREFIX)
    if not expect_http:
        return process, host, port
    http_host, http_port = _parse(1, HTTP_LISTENING_PREFIX)
    return process, host, port, http_host, http_port


def _smoke(args: argparse.Namespace) -> int:
    """Spawn a server, drive a trace through it, assert a clean shutdown."""
    from repro.runtime.trace import TraceConfig, synthetic_trace

    trace = TraceConfig(
        size=args.requests,
        apps=[name.strip() for name in args.apps.split(",") if name.strip()],
        backend_mix={"vrda": 1.0},
        distinct_shapes=2,
        n_threads=2,
        seed=11,
    )
    payloads = [request.to_dict() for request in synthetic_trace(trace)]
    server_args = ["--workers", str(args.workers)]
    server_args += ["--pool-mode", args.pool_mode]
    server_args += ["--policy", args.policy]
    if args.fault_plan:
        # Chaos smoke: the server's pool must mask the injected faults —
        # every response below still has to come back ok.
        server_args += ["--fault-plan", args.fault_plan]
    process, host, port = spawn_server(server_args)
    try:
        with RuntimeClient(host, port, connect_retries=3) as client:
            assert client.ping().get("ok"), "ping failed"
            served: List[Dict[str, Any]] = []
            for start in range(0, len(payloads), args.chunk):
                served += client.batch(payloads[start : start + args.chunk])
            bad = [r for r in served if not r.get("ok")]
            if len(served) != len(payloads) or bad:
                print(
                    f"smoke FAILED: {len(bad)} bad of {len(served)} responses:"
                    f" {bad[:3]}",
                    file=sys.stderr,
                )
                return 1
            stats = client.stats()
            hit_rate = stats["pool"]["program_cache"]["hit_rate"]
            client.shutdown()
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    if returncode != 0:
        print(f"smoke FAILED: server exited {returncode}", file=sys.stderr)
        return 1
    print(
        f"smoke ok: {len(served)} requests over {args.pool_mode} pool "
        f"({args.workers} workers, policy {args.policy}, "
        f"program-cache hit rate {100 * hit_rate:.1f}%), clean shutdown"
    )
    return 0


def _http_json(
    connection, method: str, path: str, payload: Optional[Any] = None
) -> Tuple[int, Dict[str, str], Any]:
    """One stdlib ``http.client`` round-trip with a JSON body/reply."""
    body = None if payload is None else json.dumps(payload)
    connection.request(
        method, path, body=body, headers={"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    headers = {k.lower(): v for k, v in response.getheaders()}
    raw = response.read()
    return response.status, headers, json.loads(raw) if raw else None


def _smoke_http(args: argparse.Namespace) -> int:
    """Spawn a gateway server and run a mixed request/stream/429 exercise."""
    import http.client

    from repro.runtime.trace import TraceConfig, synthetic_trace

    budget = 16
    server_args = [
        "--workers",
        str(args.workers),
        "--pool-mode",
        args.pool_mode,
        "--policy",
        args.policy,
        "--http-port",
        "0",
        "--max-inflight",
        str(budget),
    ]
    trace = TraceConfig(
        size=args.requests,
        apps=[name.strip() for name in args.apps.split(",") if name.strip()],
        backend_mix={"vrda": 1.0},
        distinct_shapes=2,
        n_threads=2,
        seed=13,
    )
    payloads = [request.to_dict() for request in synthetic_trace(trace)]
    process, host, port, http_host, http_port = spawn_server(
        server_args, expect_http=True
    )
    try:
        connection = http.client.HTTPConnection(http_host, http_port, timeout=60)
        status, _, health = _http_json(connection, "GET", "/healthz")
        assert status == 200 and health["ok"], f"healthz failed: {health}"
        # Plain requests and a batch within the admission budget.
        status, _, reply = _http_json(connection, "POST", "/v1/request", payloads[0])
        assert status == 200 and reply["ok"], f"/v1/request failed: {reply}"
        chunk = min(args.chunk, budget)
        served = 0
        for start in range(0, len(payloads), chunk):
            status, _, reply = _http_json(
                connection,
                "POST",
                "/v1/batch",
                {"requests": payloads[start : start + chunk]},
            )
            assert status == 200 and reply["ok"], f"/v1/batch failed: {reply}"
            bad = [r for r in reply["responses"] if not r.get("ok")]
            assert not bad, f"batch served bad responses: {bad[:3]}"
            served += len(reply["responses"])
        # Streaming: responses must arrive incrementally (first before last).
        stream_n = min(6, len(payloads))
        connection.request(
            "POST",
            "/v1/stream",
            body=json.dumps({"requests": payloads[:stream_n], "chunk": 1}),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 200, f"/v1/stream status {response.status}"
        lines: List[Dict[str, Any]] = []
        while True:
            line = response.readline()
            if not line:
                break
            lines.append(json.loads(line))
        assert len(lines) == stream_n, f"streamed {len(lines)}/{stream_n}"
        assert all(r.get("ok") for r in lines), "streamed a bad response"
        # A batch beyond the fixed budget must shed with 429 + Retry-After.
        status, headers, reply = _http_json(
            connection,
            "POST",
            "/v1/batch",
            {"requests": [payloads[0]] * (budget + 8)},
        )
        assert status == 429, f"oversized batch got {status}, wanted 429"
        assert "retry-after" in headers, "429 without a Retry-After header"
        assert reply["code"] == 429 and reply["retry_after_s"] > 0
        status, _, stats = _http_json(connection, "GET", "/v1/stats")
        assert status == 200 and stats["admission"]["rejected"] >= budget + 8
        assert stats["gateway"]["streamed_responses"] >= stream_n
        connection.close()
        with RuntimeClient(host, port, connect_retries=3) as client:
            client.shutdown()
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    if returncode != 0:
        print(f"http smoke FAILED: server exited {returncode}", file=sys.stderr)
        return 1
    print(
        f"http smoke ok: {served} batched + {stream_n} streamed requests over "
        f"{args.pool_mode} pool ({args.workers} workers), 429 shed at "
        f"budget {budget}, clean shutdown"
    )
    return 0


def _metric_value(text: str, name: str) -> float:
    """Sum one family's sample values out of Prometheus text exposition."""
    total = 0.0
    found = False
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name) :]
        if rest[:1] not in (" ", "{"):
            continue  # a longer family name sharing this prefix
        found = True
        total += float(line.rsplit(" ", 1)[1])
    if not found:
        raise AssertionError(f"metric family {name} missing from /metrics")
    return total


_REQUIRED_FAMILIES = (
    "admission_admitted_total",
    "admission_shed_total",
    "engine_batches_total",
    "engine_cache_lookups_total",
    "engine_requests_total",
    "frontdoor_queue_wait_seconds_count",
    "frontdoor_request_seconds_count",
    "frontdoor_requests_total",
    "gateway_events_total",
    "pool_flush_seconds_count",
    "pool_flushes_total",
    "pool_replayed_batches_total",
    "pool_worker_restarts_total",
)


def _smoke_metrics(args: argparse.Namespace) -> int:
    """Telemetry smoke: mixed + faulted traffic, then scrape and cross-check.

    Spawns a gateway server with one injected worker kill, drives traced
    and untraced traffic plus a deliberate shed, then asserts (a) every
    required metric family is present on ``GET /metrics``, (b) counter
    values are consistent with ``/v1/stats``, (c) the NDJSON ``metrics``
    op renders the same families, and (d) ``/v1/slow`` retained spans.
    """
    import http.client

    from repro.runtime.trace import TraceConfig, synthetic_trace

    budget = 16
    fault_plan = args.fault_plan or (
        '[{"kind": "kill", "worker": 0, "after_batches": 1}]'
    )
    server_args = [
        "--workers",
        str(args.workers),
        "--pool-mode",
        args.pool_mode,
        "--policy",
        args.policy,
        "--http-port",
        "0",
        "--max-inflight",
        str(budget),
        "--fault-plan",
        fault_plan,
    ]
    trace = TraceConfig(
        size=args.requests,
        apps=[name.strip() for name in args.apps.split(",") if name.strip()],
        backend_mix={"vrda": 1.0},
        distinct_shapes=2,
        n_threads=2,
        seed=17,
    )
    payloads = [request.to_dict() for request in synthetic_trace(trace)]
    process, host, port, http_host, http_port = spawn_server(
        server_args, expect_http=True
    )
    try:
        with RuntimeClient(host, port, connect_retries=3) as client:
            # Mixed traffic: every odd request opts into tracing.  The
            # injected kill fires mid-run and the pool must mask it.
            chunk = min(args.chunk, budget)
            served: List[Dict[str, Any]] = []
            for start in range(0, len(payloads), chunk):
                group = [
                    dict(p, trace=True) if i % 2 else dict(p)
                    for i, p in enumerate(payloads[start : start + chunk])
                ]
                served += client.batch(group)
            bad = [r for r in served if not r.get("ok")]
            assert not bad, f"faulted run served bad responses: {bad[:3]}"
            traced = [r for r in served if "trace" in r]
            untraced = [r for r in served if "trace" not in r]
            assert traced and all(r["trace"]["trace_id"] for r in traced)
            assert untraced, "untraced requests must not grow a trace field"
            # A batch beyond the budget must shed, so shed counters move.
            reply = client.roundtrip(
                {"op": "batch", "requests": [payloads[0]] * (budget + 8)}
            )
            assert reply.get("code") == 429, f"expected a shed, got {reply}"
            metrics_reply = client.roundtrip({"op": "metrics"})
            assert metrics_reply["ok"], f"metrics op failed: {metrics_reply}"
            ndjson_text = metrics_reply["text"]
            slow_reply = client.roundtrip({"op": "slow"})
            assert slow_reply["ok"] and slow_reply["recorded"] > 0
            connection = http.client.HTTPConnection(http_host, http_port, timeout=60)
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            content_type = response.getheader("Content-Type", "")
            text = response.read().decode("utf-8")
            assert response.status == 200, f"/metrics status {response.status}"
            assert content_type.startswith("text/plain; version=0.0.4")
            for family in _REQUIRED_FAMILIES:
                _metric_value(text, family)
                _metric_value(ndjson_text, family)
            status, _, stats = _http_json(connection, "GET", "/v1/stats")
            assert status == 200 and stats["ok"]
            restarts = _metric_value(text, "pool_worker_restarts_total")
            assert restarts == stats["pool"]["faults"]["worker_restarts"] >= 1
            assert _metric_value(text, "admission_shed_total") == (
                stats["admission"]["rejected"]
            )
            assert _metric_value(text, "admission_admitted_total") == (
                stats["admission"]["admitted"]
            )
            assert _metric_value(text, "frontdoor_requests_total") >= len(served)
            connection.close()
            local = client.local_stats()
            assert local["roundtrips"] >= len(payloads) // chunk
            assert local["latency"]["count"] == local["roundtrips"]
            client.shutdown()
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    if returncode != 0:
        print(f"metrics smoke FAILED: server exited {returncode}", file=sys.stderr)
        return 1
    print(
        f"metrics smoke ok: {len(served)} requests ({len(traced)} traced) over "
        f"{args.pool_mode} pool ({args.workers} workers), "
        f"{int(restarts)} masked restart(s), "
        f"{len(_REQUIRED_FAMILIES)} metric families scraped and consistent "
        f"with /v1/stats, clean shutdown"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the client CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.client",
        description="Drive the runtime server: one-off requests or CI smoke.",
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="spawn a server subprocess and run the end-to-end self-test",
    )
    parser.add_argument(
        "--smoke-http",
        action="store_true",
        help="spawn a server with the HTTP gateway and run the mixed "
        "request/stream/429 self-test",
    )
    parser.add_argument(
        "--smoke-metrics",
        action="store_true",
        help="spawn a gateway server with one injected worker fault, drive "
        "traced traffic, scrape /metrics, and cross-check it against "
        "/v1/stats",
    )
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument(
        "--chunk",
        type=int,
        default=10,
        help="requests per batch round-trip in smoke mode",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--pool-mode", type=str, default="inline")
    parser.add_argument("--policy", type=str, default="cache-affinity")
    parser.add_argument("--apps", type=str, default="hash-table,search,murmur3")
    parser.add_argument(
        "--app",
        type=str,
        default=None,
        help="serve one request against a running server",
    )
    parser.add_argument("--n-threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", type=str, default="vrda")
    parser.add_argument(
        "--retries-429",
        type=int,
        default=0,
        help="times to retry a shed (429) request, honoring the server's "
        "retry_after_s hint with bounded exponential backoff",
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="smoke mode only: forward this fault plan to the spawned "
        "server; the pool must mask every injected fault for the smoke "
        "to pass",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the client CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        return _smoke(args)
    if args.smoke_http:
        return _smoke_http(args)
    if args.smoke_metrics:
        return _smoke_metrics(args)
    if args.app is None:
        print(
            "nothing to do: pass --smoke, --smoke-http, or --port plus --app",
            file=sys.stderr,
        )
        return 2
    with RuntimeClient(
        args.host, args.port, max_retries_429=args.retries_429
    ) as client:
        response = client.request(
            app=args.app,
            n_threads=args.n_threads,
            seed=args.seed,
            backend=args.backend,
        )
    print(json.dumps(response, indent=2))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    raise SystemExit(main())
