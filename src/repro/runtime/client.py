"""Client for the runtime server's NDJSON protocol, plus the CI smoke driver.

:class:`RuntimeClient` is the programmatic side of
:mod:`repro.runtime.server`: one TCP connection, one JSON object per line,
blocking round-trips.  ``python -m repro.runtime.client --smoke`` is the
end-to-end self-test CI runs on every Python version: it spawns a server
subprocess on a free port, drives a synthetic trace through ``batch``
round-trips, checks every response, and asserts the server shuts down
cleanly (exit code 0) on the ``shutdown`` op.
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

LISTENING_PREFIX = "runtime-server listening on "


class ClientError(ReproError):
    """The server connection failed or returned an unreadable reply."""


class RuntimeClient:
    """Blocking NDJSON client for one :class:`RuntimeServer` connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.host = host
        self.port = port
        try:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ClientError(f"cannot connect to {host}:{port}: {error}")
        self._file = self._socket.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "RuntimeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one JSON line, block for one JSON line back."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ClientError("server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise ClientError(f"unreadable server reply: {error}")

    # -- protocol ops -------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.roundtrip({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.roundtrip({"op": "stats"})

    def request(self, **fields: Any) -> Dict[str, Any]:
        """Serve one request, e.g. ``client.request(app="strlen", seed=1)``."""
        payload = {"op": "request"}
        payload.update(fields)
        return self.roundtrip(payload)

    def batch(self, requests: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Serve many requests through one pool flush; order is preserved."""
        reply = self.roundtrip({"op": "batch", "requests": list(requests)})
        if not reply.get("ok"):
            raise ClientError(f"batch failed: {reply.get('error')}")
        return reply["responses"]

    def shutdown(self) -> Dict[str, Any]:
        return self.roundtrip({"op": "shutdown"})


def spawn_server(
    extra_args: Optional[Sequence[str]] = None, startup_timeout: float = 60.0
):
    """Start ``python -m repro.runtime.server`` and wait for its endpoint.

    Returns ``(process, host, port)``; the caller owns the process and
    should drive a ``shutdown`` op (or kill it) when done.
    """
    command = [sys.executable, "-u", "-m", "repro.runtime.server", "--port", "0"]
    command += list(extra_args or [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # readline() has no timeout of its own; a reader thread bounds the wait
    # so a server that hangs before announcing its endpoint fails fast.
    box: Dict[str, str] = {}

    def _read_endpoint() -> None:
        box["line"] = process.stdout.readline()

    reader = threading.Thread(target=_read_endpoint, daemon=True)
    reader.start()
    reader.join(startup_timeout)
    line = box.get("line")
    if line is None or not line.startswith(LISTENING_PREFIX):
        process.kill()
        what = "timed out" if line is None else f"got {line!r}"
        raise ClientError(f"server failed to start ({what})")
    host, _, port = line.removeprefix(LISTENING_PREFIX).strip().rpartition(":")
    return process, host, int(port)


def _smoke(args: argparse.Namespace) -> int:
    """Spawn a server, drive a trace through it, assert a clean shutdown."""
    from repro.runtime.trace import TraceConfig, synthetic_trace

    trace = TraceConfig(
        size=args.requests,
        apps=[name.strip() for name in args.apps.split(",") if name.strip()],
        backend_mix={"vrda": 1.0},
        distinct_shapes=2,
        n_threads=2,
        seed=11,
    )
    payloads = [request.to_dict() for request in synthetic_trace(trace)]
    server_args = ["--workers", str(args.workers)]
    server_args += ["--pool-mode", args.pool_mode]
    server_args += ["--policy", args.policy]
    process, host, port = spawn_server(server_args)
    try:
        with RuntimeClient(host, port) as client:
            assert client.ping().get("ok"), "ping failed"
            served: List[Dict[str, Any]] = []
            for start in range(0, len(payloads), args.chunk):
                served += client.batch(payloads[start : start + args.chunk])
            bad = [r for r in served if not r.get("ok")]
            if len(served) != len(payloads) or bad:
                print(
                    f"smoke FAILED: {len(bad)} bad of {len(served)} responses:"
                    f" {bad[:3]}",
                    file=sys.stderr,
                )
                return 1
            stats = client.stats()
            hit_rate = stats["pool"]["program_cache"]["hit_rate"]
            client.shutdown()
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    if returncode != 0:
        print(f"smoke FAILED: server exited {returncode}", file=sys.stderr)
        return 1
    print(
        f"smoke ok: {len(served)} requests over {args.pool_mode} pool "
        f"({args.workers} workers, policy {args.policy}, "
        f"program-cache hit rate {100 * hit_rate:.1f}%), clean shutdown"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.client",
        description="Drive the runtime server: one-off requests or CI smoke.",
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="spawn a server subprocess and run the end-to-end self-test",
    )
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument(
        "--chunk",
        type=int,
        default=10,
        help="requests per batch round-trip in smoke mode",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--pool-mode", type=str, default="inline")
    parser.add_argument("--policy", type=str, default="cache-affinity")
    parser.add_argument("--apps", type=str, default="hash-table,search,murmur3")
    parser.add_argument(
        "--app",
        type=str,
        default=None,
        help="serve one request against a running server",
    )
    parser.add_argument("--n-threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", type=str, default="vrda")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        return _smoke(args)
    if args.app is None:
        print("nothing to do: pass --smoke, or --port plus --app", file=sys.stderr)
        return 2
    with RuntimeClient(args.host, args.port) as client:
        response = client.request(
            app=args.app,
            n_threads=args.n_threads,
            seed=args.seed,
            backend=args.backend,
        )
    print(json.dumps(response, indent=2))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    raise SystemExit(main())
