"""Revet reproduction: a language and compiler for dataflow threads.

The public API is organized in layers:

* :mod:`repro.core` — the dataflow-threads machine model (SLTF streams,
  streaming primitives, structured dataflow graphs, functional executor).
* :mod:`repro.lang` / :mod:`repro.frontend` — the Revet language and its
  lowering into the IR.
* :mod:`repro.ir` / :mod:`repro.passes` / :mod:`repro.dataflow` — the
  MLIR-style IR, optimization passes, and control-flow-to-dataflow lowering.
* :mod:`repro.sim` — the cycle-level vRDA performance model and the shared
  work-admission policies.
* :mod:`repro.apps`, :mod:`repro.baselines`, :mod:`repro.eval` — the paper's
  applications, baselines, and experiment harness.
* :mod:`repro.runtime` — the cached, batched, multi-worker serving engine
  layered over the compiler and executor.
"""

from repro import errors

__version__ = "0.1.0"

__all__ = ["errors", "__version__"]
