"""Aurochs baseline model (Section VI-B(c)).

Aurochs is the original dataflow-threads machine; most Revet applications
cannot run on it because it lacks per-thread SRAM.  The paper's one shared
benchmark is tree traversal, where Revet is >11x faster because:

* Aurochs has no thread-local storage, so ~10 live variables (the query
  rectangle, counters, and node state) are duplicated through the pipeline
  and recirculated through the network on every iteration;
* Aurochs has no nested ``foreach``, so the 15-comparison node test cannot be
  vectorized across lanes — one comparison per lane-cycle instead of a whole
  node per cycle (a 16-ary node per 64 B DRAM read);
* Aurochs detects loop completion with a timeout rather than barriers, which
  adds idle cycles at every wavefront.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import DEFAULT_MACHINE, MachineConfig


@dataclass
class AurochsComparison:
    """Modelled slowdown factors of Aurochs relative to Revet for kD-tree."""

    live_value_duplication: float
    lost_node_vectorization: float
    timeout_overhead: float

    @property
    def total_slowdown(self) -> float:
        return (self.live_value_duplication * self.lost_node_vectorization
                * self.timeout_overhead)


class AurochsModel:
    """Estimates the Aurochs/Revet gap for the tree-traversal benchmark."""

    def __init__(self, machine: MachineConfig = DEFAULT_MACHINE,
                 live_values: int = 10, comparisons_per_node: int = 15,
                 timeout_cycles: int = 64, avg_body_cycles: int = 24):
        self.machine = machine
        self.live_values = live_values
        self.comparisons_per_node = comparisons_per_node
        self.timeout_cycles = timeout_cycles
        self.avg_body_cycles = avg_body_cycles

    def comparison(self) -> AurochsComparison:
        # Revet keeps live values in per-thread SRAM: only the thread pointer
        # recirculates.  Aurochs recirculates every live value, multiplying
        # network traffic on the loop's critical link.
        duplication = (1 + self.live_values) / 2.0
        # Revet's nested foreach evaluates all node comparisons across lanes
        # in one pipeline pass; Aurochs evaluates them one lane-slot at a time
        # but still overlaps some work in its pipeline stages.
        vectorization = self.comparisons_per_node / self.machine.stages
        # Timeout-based loop termination idles the loop head between wavefronts.
        timeout = 1 + self.timeout_cycles / (self.avg_body_cycles * 8)
        return AurochsComparison(
            live_value_duplication=duplication,
            lost_node_vectorization=vectorization,
            timeout_overhead=timeout,
        )

    def speedup_of_revet(self) -> float:
        """How much faster Revet's kD-tree is than the Aurochs implementation."""
        return self.comparison().total_slowdown
