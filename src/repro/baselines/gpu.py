"""V100 GPU baseline model (Section VI-A(b), Table V).

The paper attributes the GPU's behaviour on these workloads to three
mechanisms, which this analytical model captures:

* threads stream bytes sequentially from *different* records, so accesses to
  cached memory do not coalesce: the L1 can only check a few tags per cycle
  per SM, capping per-SM gather throughput (murmur3, search);
* when per-thread records are tiny (~13 B for isipv4/ip2int), neighbouring
  threads' records share cache lines, so coalescing partially recovers;
* tree traversal (kD-tree) needs one kernel launch per level because CUDA
  has neither ``fork`` nor efficient recursion, so launch overhead and low
  per-level parallelism dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppSpec


@dataclass(frozen=True)
class GPUConfig:
    """Nvidia V100 parameters (SXM2, as in the paper's p3.2xlarge)."""

    sms: int = 80
    clock_ghz: float = 1.38
    mem_bandwidth_gbs: float = 900.0
    l1_tag_checks_per_cycle: int = 4     # independent lines serviced per SM/cycle
    cache_line_bytes: int = 128
    warp_size: int = 32
    kernel_launch_us: float = 8.0
    area_mm2: float = 815.0


class GPUModel:
    """Analytical throughput model for the Table V GPU column."""

    def __init__(self, config: GPUConfig = GPUConfig()):
        self.config = config

    def throughput_gbs(self, spec: AppSpec) -> float:
        cfg = self.config
        bytes_per_thread = spec.bytes_per_thread

        if "fork" in spec.key_features or spec.name == "kD-tree":
            return self._multi_kernel_traversal(spec)

        # Memory-bandwidth bound (perfect streaming).
        bounds = [cfg.mem_bandwidth_gbs]

        # Divergent-compute bound: byte-at-a-time data-dependent loops keep a
        # warp alive until its slowest thread finishes, and branchy parsing
        # costs many instructions per byte.
        inst_per_byte = max(2.0, 1.4 * spec.avg_iterations_per_thread
                            / max(1.0, bytes_per_thread / 4.0))
        divergence = 2.5 if any("while" in f for f in spec.key_features) else 1.0
        if bytes_per_thread <= 16:
            inst_per_byte *= 2.0  # per-record launch/index overhead dominates
        bounds.append(cfg.sms * cfg.warp_size * cfg.clock_ghz
                      / (inst_per_byte * divergence))

        # L1 tag-check bound: when each thread streams its own record, warp
        # accesses hit 32 distinct cache lines and the L1 services only a few
        # tag checks per cycle (with an empirical efficiency factor folding in
        # MIO queueing), so gather throughput collapses for >=32 B records.
        if bytes_per_thread >= 32:
            l1_efficiency = 0.125
            gather_bound = (cfg.sms * cfg.l1_tag_checks_per_cycle * 4.0
                            * cfg.clock_ghz * l1_efficiency)
            words_per_thread = max(1.0, bytes_per_thread / 4.0)
            work_factor = max(1.0, spec.avg_iterations_per_thread / words_per_thread)
            bounds.append(gather_bound / work_factor)
        return min(bounds)

    def _multi_kernel_traversal(self, spec: AppSpec) -> float:
        cfg = self.config
        # One kernel per tree level; each level materializes frontier nodes to
        # DRAM, and early levels expose almost no parallelism.
        levels = 12
        launch_s = levels * cfg.kernel_launch_us * 1e-6
        threads = 1_000_000
        useful_bytes = threads * spec.bytes_per_thread
        materialized_bytes = useful_bytes * 6  # frontier writes + re-reads
        transfer_s = materialized_bytes / (cfg.mem_bandwidth_gbs * 1e9) * levels / 4
        return useful_bytes / (launch_s * threads / 4096 + transfer_s) / 1e9
