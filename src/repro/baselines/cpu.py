"""Xeon CPU baseline model (Section VI-A(b), Table V's CPU column).

A 64-thread Ice Lake Xeon with 205 GB/s of DDR4: throughput is the smaller
of the DRAM streaming bound and an instruction-throughput bound derived from
the per-byte work of each kernel (branchy byte-at-a-time parsing costs
several instructions per byte; hashing and lookup are lighter per byte but
latency-bound on random accesses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppSpec


@dataclass(frozen=True)
class CPUConfig:
    """3rd-generation Xeon Platinum (m6i.16xlarge) parameters."""

    threads: int = 64
    clock_ghz: float = 3.5
    ipc: float = 3.0
    mem_bandwidth_gbs: float = 205.0
    random_access_penalty_ns: float = 70.0


class CPUModel:
    """Analytical throughput model for the Table V CPU column."""

    def __init__(self, config: CPUConfig = CPUConfig()):
        self.config = config

    def instructions_per_byte(self, spec: AppSpec) -> float:
        """Approximate dynamic instruction cost per byte of application data."""
        iters_per_byte = spec.avg_iterations_per_thread / max(1, spec.bytes_per_thread)
        if "nested while" in spec.key_features:
            return 18.0 * max(iters_per_byte, 0.25)
        if spec.name in ("isipv4", "ip2int"):
            return 22.0  # byte-at-a-time branchy parsing
        if spec.name in ("huff-enc", "huff-dec"):
            return 20.0 * max(iters_per_byte, 0.25)
        return 8.0 * max(iters_per_byte, 0.25)

    def throughput_gbs(self, spec: AppSpec) -> float:
        cfg = self.config
        bandwidth_bound = cfg.mem_bandwidth_gbs
        inst_per_byte = self.instructions_per_byte(spec)
        compute_bound = (cfg.threads * cfg.clock_ghz * cfg.ipc) / inst_per_byte
        bounds = [bandwidth_bound, compute_bound]
        if spec.name in ("hash-table", "kD-tree"):
            # Pointer-chasing: each thread stalls on DRAM latency per probe.
            accesses_per_byte = max(0.05, spec.avg_iterations_per_thread
                                    / max(1, spec.bytes_per_thread))
            latency_bound = (cfg.threads
                             / (accesses_per_byte * cfg.random_access_penalty_ns)) * 1.0
            bounds.append(latency_bound)
        return min(bounds)
