"""Baseline models: V100 GPU, Xeon CPU, and the Aurochs vRDA."""

from repro.baselines.gpu import GPUConfig, GPUModel
from repro.baselines.cpu import CPUConfig, CPUModel
from repro.baselines.aurochs import AurochsComparison, AurochsModel

__all__ = ["GPUConfig", "GPUModel", "CPUConfig", "CPUModel",
           "AurochsComparison", "AurochsModel"]
