"""isipv4: DFA-style validation of dotted-quad strings (Table III row 1)."""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

RECORD_BYTES = 16

SOURCE = """
DRAM<char> input;
DRAM<int> out;

void main(int count) {
  foreach (count) { int i =>
    int base = i * 16;
    ReadIt<16> it(input, base);
    int value = 0;
    int digits = 0;
    int dots = 0;
    int valid = 1;
    int c = 1;
    while (c != 0) {
      c = *it;
      it++;
      if (c != 0) {
        if (c >= 48 && c <= 57) {
          value = value * 10 + (c - 48);
          digits = digits + 1;
          if (value > 255 || digits > 3) { valid = 0; }
        } else {
          if (c == 46) {
            if (digits == 0) { valid = 0; }
            dots = dots + 1;
            value = 0;
            digits = 0;
          } else {
            valid = 0;
          }
        }
      }
    };
    if (dots != 3 || digits == 0) { valid = 0; }
    out[i] = valid;
  };
}
"""


def _record(text: str) -> bytes:
    data = text.encode()[: RECORD_BYTES - 1]
    return data + b"\0" * (RECORD_BYTES - len(data))


def generate(count: int, seed: int = 0) -> AppInstance:
    rng = seeded_rng(seed)
    records = []
    texts = []
    for _ in range(count):
        if rng.random() < 0.9:
            text = ".".join(str(rng.randint(0, 255)) for _ in range(4))
        else:
            text = "INVALID"
        texts.append(text)
        records.append(_record(text))
    memory = MemorySystem()
    memory.load_bytes("input", b"".join(records))
    memory.dram_alloc("out", size=count)
    return AppInstance(memory=memory, args={"count": count},
                       context={"texts": texts},
                       total_bytes=count * (RECORD_BYTES + 4))


def reference(instance: AppInstance):
    results = []
    for text in instance.context["texts"]:
        value = digits = dots = 0
        valid = 1
        for ch in text:
            if ch.isdigit():
                value = value * 10 + (ord(ch) - 48)
                digits += 1
                if value > 255 or digits > 3:
                    valid = 0
            elif ch == ".":
                if digits == 0:
                    valid = 0
                dots += 1
                value = 0
                digits = 0
            else:
                valid = 0
        if dots != 3 or digits == 0:
            valid = 0
        results.append(valid)
    return results


SPEC = REGISTRY.register(AppSpec(
    name="isipv4",
    description="DFA regex: validate IPv4 dotted-quad strings",
    source=SOURCE,
    key_features=["replicate", "ReadIt", "while"],
    bytes_per_thread=13,
    avg_iterations_per_thread=14.0,
    paper_revet_gbs=443.0,
    paper_gpu_gbs=121.0,
    paper_cpu_gbs=7.3,
    outer_parallelism=27,
    generate=generate,
    reference=reference,
    replicate_factor=2,
))
