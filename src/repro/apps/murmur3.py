"""murmur3: MurmurHash3 (x86, 32-bit) over 64-byte blobs (Table III)."""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

WORDS_PER_BLOB = 16  # 64 bytes

SOURCE = """
DRAM<int> input;
DRAM<int> out;

void main(int count) {
  foreach (count) { int i =>
    int base = i * 16;
    ReadIt<16> it(input, base);
    int h = 0;
    int j = 0;
    while (j < 16) {
      int k = *it;
      it++;
      k = (k * 0xcc9e2d51) & 0xffffffff;
      k = ((k << 15) | (k >> 17)) & 0xffffffff;
      k = (k * 0x1b873593) & 0xffffffff;
      h = h ^ k;
      h = ((h << 13) | (h >> 19)) & 0xffffffff;
      h = (h * 5 + 0xe6546b64) & 0xffffffff;
      j++;
    };
    h = h ^ 64;
    h = h ^ (h >> 16);
    h = (h * 0x85ebca6b) & 0xffffffff;
    h = h ^ (h >> 13);
    h = (h * 0xc2b2ae35) & 0xffffffff;
    h = h ^ (h >> 16);
    out[i] = h;
  };
}
"""

MASK = 0xFFFFFFFF


def murmur3_block(words, seed: int = 0) -> int:
    """Reference MurmurHash3 x86_32 over a 16-word (64-byte) block."""
    h = seed
    for k in words:
        k = (k * 0xCC9E2D51) & MASK
        k = ((k << 15) | (k >> 17)) & MASK
        k = (k * 0x1B873593) & MASK
        h ^= k
        h = ((h << 13) | (h >> 19)) & MASK
        h = (h * 5 + 0xE6546B64) & MASK
    h ^= 64
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & MASK
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & MASK
    h ^= h >> 16
    return h


def generate(count: int, seed: int = 0) -> AppInstance:
    rng = seeded_rng(seed)
    words = [rng.randint(0, MASK) for _ in range(count * WORDS_PER_BLOB)]
    memory = MemorySystem()
    memory.dram_alloc("input", data=words)
    memory.dram_alloc("out", size=count)
    return AppInstance(memory=memory, args={"count": count},
                       context={"words": words},
                       total_bytes=count * (WORDS_PER_BLOB * 4 + 4))


def reference(instance: AppInstance):
    words = instance.context["words"]
    return [
        murmur3_block(words[i * WORDS_PER_BLOB:(i + 1) * WORDS_PER_BLOB])
        for i in range(len(words) // WORDS_PER_BLOB)
    ]


SPEC = REGISTRY.register(AppSpec(
    name="murmur3",
    description="MurmurHash3 data hashing over 64 B blobs",
    source=SOURCE,
    key_features=["ReadIt", "while"],
    bytes_per_thread=64,
    avg_iterations_per_thread=16.0,
    paper_revet_gbs=628.0,
    paper_gpu_gbs=218.0,
    paper_cpu_gbs=122.2,
    outer_parallelism=14,
    generate=generate,
    reference=reference,
))
