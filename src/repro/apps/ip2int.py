"""ip2int: parse dotted-quad IPv4 strings into 32-bit integers (Table III)."""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

RECORD_BYTES = 16

SOURCE = """
DRAM<char> input;
DRAM<int> out;

void main(int count) {
  foreach (count) { int i =>
    int base = i * 16;
    ReadIt<16> it(input, base);
    int value = 0;
    int result = 0;
    int c = 1;
    while (c != 0) {
      c = *it;
      it++;
      if (c >= 48 && c <= 57) {
        value = value * 10 + (c - 48);
      } else {
        if (c == 46) {
          result = result * 256 + value;
          value = 0;
        }
      }
    };
    result = result * 256 + value;
    out[i] = result;
  };
}
"""


def generate(count: int, seed: int = 0) -> AppInstance:
    rng = seeded_rng(seed)
    addresses = [[rng.randint(0, 255) for _ in range(4)] for _ in range(count)]
    records = []
    for quad in addresses:
        text = ".".join(map(str, quad)).encode()
        records.append(text + b"\0" * (RECORD_BYTES - len(text)))
    memory = MemorySystem()
    memory.load_bytes("input", b"".join(records))
    memory.dram_alloc("out", size=count)
    return AppInstance(memory=memory, args={"count": count},
                       context={"addresses": addresses},
                       total_bytes=count * (RECORD_BYTES + 4))


def reference(instance: AppInstance):
    return [
        (a << 24) | (b << 16) | (c << 8) | d
        for a, b, c, d in instance.context["addresses"]
    ]


SPEC = REGISTRY.register(AppSpec(
    name="ip2int",
    description="Parse IPv4 addresses into integers",
    source=SOURCE,
    key_features=["replicate", "ReadIt", "while"],
    bytes_per_thread=13,
    avg_iterations_per_thread=14.0,
    paper_revet_gbs=508.0,
    paper_gpu_gbs=381.0,
    paper_cpu_gbs=9.1,
    outer_parallelism=30,
    generate=generate,
    reference=reference,
    replicate_factor=2,
))
