"""huff-enc / huff-dec: canonical Huffman coding (Table III rows 6-7).

The code table is a canonical prefix code over 64 symbols with a maximum
length of 16 bits, built from a geometric symbol distribution.  Each thread
encodes (or decodes) one fixed-size block of symbols into (or from) its own
region of the packed bitstream, so threads are independent.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

NUM_SYMBOLS = 64
MAX_LEN = 16
SYMBOLS_PER_THREAD = 64
WORDS_PER_THREAD = 48  # worst case: 64 symbols * <=16 bits < 48 * 32 bits

ENCODE_SOURCE = """
DRAM<int> symbols_in;
DRAM<int> code;
DRAM<int> length;
DRAM<int> bits_out;
DRAM<int> out;

void main(int count, int per_thread, int words_per_thread) {
  foreach (count) { int t =>
    int acc = 0;
    int nbits = 0;
    int outw = t * words_per_thread;
    int n = 0;
    while (n < per_thread) {
      int s = symbols_in[t * per_thread + n];
      int c = code[s];
      int l = length[s];
      acc = (acc << l) | c;
      nbits = nbits + l;
      if (nbits >= 32) {
        int extra = nbits - 32;
        bits_out[outw] = (acc >> extra) & 0xffffffff;
        acc = acc & ((1 << extra) - 1);
        outw = outw + 1;
        nbits = extra;
      }
      n = n + 1;
    };
    if (nbits > 0) {
      bits_out[outw] = (acc << (32 - nbits)) & 0xffffffff;
      outw = outw + 1;
    }
    out[t] = outw - t * words_per_thread;
  };
}
"""

DECODE_SOURCE = """
DRAM<int> bits;
DRAM<int> first_code;
DRAM<int> first_index;
DRAM<int> counts;
DRAM<int> symbols;
DRAM<int> out;

void main(int count, int per_thread, int words_per_thread) {
  foreach (count) { int t =>
    int bitpos = t * words_per_thread * 32;
    int n = 0;
    while (n < per_thread) {
      int code = 0;
      int len = 0;
      int found = 0;
      while (found == 0) {
        int word = bits[bitpos / 32];
        int bit = (word >> (31 - (bitpos % 32))) & 1;
        code = code * 2 + bit;
        len = len + 1;
        bitpos = bitpos + 1;
        int offset = code - first_code[len];
        if (offset >= 0 && offset < counts[len]) {
          out[t * per_thread + n] = symbols[first_index[len] + offset];
          found = 1;
        }
      };
      n = n + 1;
    };
  };
}
"""


def build_canonical_code(weights: List[int]) -> Tuple[List[int], List[int]]:
    """Build canonical Huffman (code, length) tables from symbol weights."""
    heap = [(w, i, (i,)) for i, w in enumerate(weights)]
    heapq.heapify(heap)
    lengths = [0] * len(weights)
    if len(heap) == 1:
        lengths[0] = 1
    while len(heap) > 1:
        wa, _, syms_a = heapq.heappop(heap)
        wb, _, syms_b = heapq.heappop(heap)
        for s in syms_a + syms_b:
            lengths[s] += 1
        heapq.heappush(heap, (wa + wb, min(syms_a + syms_b), syms_a + syms_b))
    # Canonical code assignment: sort by (length, symbol).
    order = sorted(range(len(weights)), key=lambda s: (lengths[s], s))
    codes = [0] * len(weights)
    code = 0
    prev_len = 0
    for sym in order:
        code <<= lengths[sym] - prev_len
        codes[sym] = code
        prev_len = lengths[sym]
        code += 1
    return codes, lengths


def build_decode_tables(codes: List[int], lengths: List[int]):
    """first_code / first_index / counts per length, plus canonical symbols."""
    order = sorted(range(len(codes)), key=lambda s: (lengths[s], s))
    counts = [0] * (MAX_LEN + 1)
    for s in order:
        counts[lengths[s]] += 1
    first_code = [0] * (MAX_LEN + 1)
    first_index = [0] * (MAX_LEN + 1)
    code = 0
    index = 0
    for ln in range(1, MAX_LEN + 1):
        code <<= 1
        first_code[ln] = code
        first_index[ln] = index
        code += counts[ln]
        index += counts[ln]
    return first_code, first_index, counts, order


def encode_reference(symbols: List[int], codes: List[int], lengths: List[int],
                     words_per_thread: int) -> Tuple[List[int], int]:
    """Encode one thread's block exactly as the kernel does."""
    words = []
    acc = 0
    nbits = 0
    for s in symbols:
        acc = (acc << lengths[s]) | codes[s]
        nbits += lengths[s]
        if nbits >= 32:
            extra = nbits - 32
            words.append((acc >> extra) & 0xFFFFFFFF)
            acc &= (1 << extra) - 1
            nbits = extra
    if nbits > 0:
        words.append((acc << (32 - nbits)) & 0xFFFFFFFF)
    used = len(words)
    words = words + [0] * (words_per_thread - len(words))
    return words, used


def _generate_symbols(rng, count: int) -> List[int]:
    symbols = []
    for _ in range(count):
        value = min(NUM_SYMBOLS - 1, int(rng.expovariate(1 / 8.0)))
        symbols.append(value)
    return symbols


def _weights(symbols: List[int]) -> List[int]:
    weights = [1] * NUM_SYMBOLS
    for s in symbols:
        weights[s] += 1
    return weights


def generate_encode(count: int, seed: int = 0) -> AppInstance:
    rng = seeded_rng(seed)
    symbols = _generate_symbols(rng, count * SYMBOLS_PER_THREAD)
    codes, lengths = build_canonical_code(_weights(symbols))
    memory = MemorySystem()
    memory.dram_alloc("symbols_in", data=symbols)
    memory.dram_alloc("code", data=codes)
    memory.dram_alloc("length", data=lengths)
    memory.dram_alloc("bits_out", size=count * WORDS_PER_THREAD)
    memory.dram_alloc("out", size=count)
    return AppInstance(
        memory=memory,
        args={"count": count, "per_thread": SYMBOLS_PER_THREAD,
              "words_per_thread": WORDS_PER_THREAD},
        context={"symbols": symbols, "codes": codes, "lengths": lengths},
        total_bytes=count * SYMBOLS_PER_THREAD * 4,
    )


def reference_encode(instance: AppInstance):
    symbols = instance.context["symbols"]
    codes, lengths = instance.context["codes"], instance.context["lengths"]
    count = len(symbols) // SYMBOLS_PER_THREAD
    used = []
    for t in range(count):
        block = symbols[t * SYMBOLS_PER_THREAD:(t + 1) * SYMBOLS_PER_THREAD]
        _, words_used = encode_reference(block, codes, lengths, WORDS_PER_THREAD)
        used.append(words_used)
    return used


def generate_decode(count: int, seed: int = 0) -> AppInstance:
    rng = seeded_rng(seed)
    symbols = _generate_symbols(rng, count * SYMBOLS_PER_THREAD)
    codes, lengths = build_canonical_code(_weights(symbols))
    first_code, first_index, counts, order = build_decode_tables(codes, lengths)
    bitstream = []
    for t in range(count):
        block = symbols[t * SYMBOLS_PER_THREAD:(t + 1) * SYMBOLS_PER_THREAD]
        words, _ = encode_reference(block, codes, lengths, WORDS_PER_THREAD)
        bitstream.extend(words)
    memory = MemorySystem()
    memory.dram_alloc("bits", data=bitstream)
    memory.dram_alloc("first_code", data=first_code)
    memory.dram_alloc("first_index", data=first_index)
    memory.dram_alloc("counts", data=counts)
    memory.dram_alloc("symbols", data=order)
    memory.dram_alloc("out", size=count * SYMBOLS_PER_THREAD)
    return AppInstance(
        memory=memory,
        args={"count": count, "per_thread": SYMBOLS_PER_THREAD,
              "words_per_thread": WORDS_PER_THREAD},
        context={"symbols": symbols},
        total_bytes=count * SYMBOLS_PER_THREAD * 4,
    )


def reference_decode(instance: AppInstance):
    return list(instance.context["symbols"])


ENCODE_SPEC = REGISTRY.register(AppSpec(
    name="huff-enc",
    description="Huffman compression, 64 codes with 16-bit maximum length",
    source=ENCODE_SOURCE,
    key_features=["ManualWriteIt", "while"],
    bytes_per_thread=256,
    avg_iterations_per_thread=SYMBOLS_PER_THREAD,
    paper_revet_gbs=409.0,
    paper_gpu_gbs=172.0,
    paper_cpu_gbs=35.0,
    outer_parallelism=9,
    generate=generate_encode,
    reference=reference_encode,
))

DECODE_SPEC = REGISTRY.register(AppSpec(
    name="huff-dec",
    description="Huffman decompression, 64 codes with 16-bit maximum length",
    source=DECODE_SOURCE,
    key_features=["ReadIt", "nested while"],
    bytes_per_thread=256,
    avg_iterations_per_thread=SYMBOLS_PER_THREAD * 6,
    paper_revet_gbs=380.0,
    paper_gpu_gbs=97.0,
    paper_cpu_gbs=19.0,
    outer_parallelism=9,
    generate=generate_decode,
    reference=reference_decode,
))
