"""kD-tree: count points inside query rectangles (Table III row 8).

The tree is stored in DRAM as node arrays (split dimension, split value,
children, and leaf point ranges).  Each thread answers one rectangle query by
traversing the tree with an explicit per-thread SRAM stack — the
data-structure-traversal workload the paper uses to compare against Aurochs
and the GPU.  (The paper's implementation spawns children with ``fork``; the
explicit stack exercises the same data-dependent traversal on our machine
model, and ``fork`` is exercised separately by the hierarchy-elimination path
— see DESIGN.md.)
"""

from __future__ import annotations

from typing import List

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

LEAF_SIZE = 8

SOURCE = """
DRAM<int> node_dim;
DRAM<int> node_split;
DRAM<int> node_left;
DRAM<int> node_right;
DRAM<int> node_start;
DRAM<int> node_count;
DRAM<int> px;
DRAM<int> py;
DRAM<int> queries;
DRAM<int> out;

void main(int count) {
  foreach (count) { int q =>
    int xmin = queries[q * 4];
    int xmax = queries[q * 4 + 1];
    int ymin = queries[q * 4 + 2];
    int ymax = queries[q * 4 + 3];
    SRAM<64> stack;
    stack[0] = 0;
    int sp = 1;
    int found = 0;
    while (sp > 0) {
      sp = sp - 1;
      int node = stack[sp];
      int l = node_left[node];
      if (l < 0) {
        int s = node_start[node];
        int c = node_count[node];
        int k = 0;
        while (k < c) {
          int x = px[s + k];
          int y = py[s + k];
          if (x >= xmin && x <= xmax && y >= ymin && y <= ymax) {
            found = found + 1;
          }
          k = k + 1;
        };
      } else {
        int d = node_dim[node];
        int split = node_split[node];
        int lo = xmin;
        int hi = xmax;
        if (d == 1) { lo = ymin; hi = ymax; }
        if (lo <= split) {
          stack[sp] = l;
          sp = sp + 1;
        }
        if (hi > split) {
          stack[sp] = node_right[node];
          sp = sp + 1;
        }
      }
    };
    out[q] = found;
  };
}
"""


class _TreeBuilder:
    """Builds a 2-D k-d tree over integer points into flat node arrays."""

    def __init__(self):
        self.dim: List[int] = []
        self.split: List[int] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.start: List[int] = []
        self.count: List[int] = []
        self.px: List[int] = []
        self.py: List[int] = []

    def build(self, points: List[tuple], depth: int = 0) -> int:
        node = len(self.dim)
        for array in (self.dim, self.split, self.left, self.right, self.start,
                      self.count):
            array.append(0)
        if len(points) <= LEAF_SIZE:
            self.left[node] = -1
            self.right[node] = -1
            self.start[node] = len(self.px)
            self.count[node] = len(points)
            for x, y in points:
                self.px.append(x)
                self.py.append(y)
            return node
        axis = depth % 2
        ordered = sorted(points, key=lambda p: p[axis])
        median = len(ordered) // 2
        split_value = ordered[median - 1][axis]
        low = [p for p in ordered if p[axis] <= split_value]
        high = [p for p in ordered if p[axis] > split_value]
        if not high:  # all coordinates equal: fall back to a leaf
            self.left[node] = -1
            self.right[node] = -1
            self.start[node] = len(self.px)
            self.count[node] = len(points)
            for x, y in points:
                self.px.append(x)
                self.py.append(y)
            return node
        self.dim[node] = axis
        self.split[node] = split_value
        self.left[node] = self.build(low, depth + 1)
        self.right[node] = self.build(high, depth + 1)
        return node


def generate(count: int, seed: int = 0, num_points: int = 512,
             coord_range: int = 1000, query_span: int = 120) -> AppInstance:
    rng = seeded_rng(seed)
    points = [(rng.randint(0, coord_range), rng.randint(0, coord_range))
              for _ in range(num_points)]
    builder = _TreeBuilder()
    builder.build(points)
    queries = []
    flat_queries = []
    for _ in range(count):
        x0 = rng.randint(0, coord_range - query_span)
        y0 = rng.randint(0, coord_range - query_span)
        rect = (x0, x0 + query_span, y0, y0 + query_span)
        queries.append(rect)
        flat_queries.extend(rect)
    memory = MemorySystem()
    memory.dram_alloc("node_dim", data=builder.dim)
    memory.dram_alloc("node_split", data=builder.split)
    memory.dram_alloc("node_left", data=builder.left)
    memory.dram_alloc("node_right", data=builder.right)
    memory.dram_alloc("node_start", data=builder.start)
    memory.dram_alloc("node_count", data=builder.count)
    memory.dram_alloc("px", data=builder.px)
    memory.dram_alloc("py", data=builder.py)
    memory.dram_alloc("queries", data=flat_queries)
    memory.dram_alloc("out", size=count)
    return AppInstance(
        memory=memory,
        args={"count": count},
        context={"points": points, "queries": queries},
        total_bytes=count * 64,
    )


def reference(instance: AppInstance):
    points = instance.context["points"]
    results = []
    for xmin, xmax, ymin, ymax in instance.context["queries"]:
        results.append(sum(1 for x, y in points
                           if xmin <= x <= xmax and ymin <= y <= ymax))
    return results


SPEC = REGISTRY.register(AppSpec(
    name="kD-tree",
    description="Count points inside rectangles via k-d tree traversal",
    source=SOURCE,
    key_features=["fork", "SRAM stack", "nested while"],
    bytes_per_thread=64,
    avg_iterations_per_thread=24.0,
    paper_revet_gbs=52.0,
    paper_gpu_gbs=1.5,
    paper_cpu_gbs=3.4,
    outer_parallelism=5,
    generate=generate,
    reference=reference,
))
