"""strlen: the paper's running example (Figure 7), kept as a ninth app.

It is not part of the Table III evaluation set but exercises the full
feature stack (views, iterators, nested foreach, replicate, and the
hierarchy-elimination pragma), so the examples and tests use it heavily.
"""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

TILE = 8

SOURCE = """
DRAM<char> input;
DRAM<int> offsets;
DRAM<int> lengths;

void main(int count) {
  foreach (count by 8) { int outer =>
    ReadView<8> in_view(offsets, outer);
    WriteView<8> out_view(lengths, outer);
    foreach (8) { int idx =>
      pragma(eliminate_hierarchy);
      int len = 0;
      int off = in_view[idx];
      replicate (4) {
        ReadIt<16> it(input, off);
        while (*it) {
          len = len + 1;
          it++;
        };
      };
      out_view[idx] = len;
    };
  };
}
"""


def generate(count: int, seed: int = 0, max_length: int = 40) -> AppInstance:
    rng = seeded_rng(seed)
    count = max(TILE, (count // TILE) * TILE or TILE)
    strings = []
    blob = bytearray()
    offsets = []
    for _ in range(count):
        length = rng.randint(0, max_length)
        text = bytes(rng.randint(97, 122) for _ in range(length))
        offsets.append(len(blob))
        blob.extend(text + b"\0")
        strings.append(text)
    memory = MemorySystem()
    memory.load_bytes("input", bytes(blob))
    memory.dram_alloc("offsets", data=offsets)
    memory.dram_alloc("lengths", size=count)
    return AppInstance(
        memory=memory,
        args={"count": count},
        context={"strings": strings},
        total_bytes=len(blob) + count * 8,
    )


def reference(instance: AppInstance):
    return [len(s) for s in instance.context["strings"]]


SPEC = REGISTRY.register(AppSpec(
    name="strlen",
    description="Figure 7 running example: parallel strlen over packed strings",
    source=SOURCE,
    key_features=["ReadView", "WriteView", "ReadIt", "replicate",
                  "eliminate_hierarchy"],
    bytes_per_thread=20,
    avg_iterations_per_thread=20.0,
    paper_revet_gbs=0.0,
    paper_gpu_gbs=0.0,
    paper_cpu_gbs=0.0,
    outer_parallelism=8,
    generate=generate,
    reference=reference,
    output_segment="lengths",
    replicate_factor=4,
))
