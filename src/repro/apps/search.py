"""search: exact-match substring search with Boyer-Moore-Horspool skips.

Each thread scans one 256-byte chunk of text for the pattern, matching
backwards from the end of the window and skipping ahead using the
bad-character table — the nested data-dependent ``while`` loops the paper
highlights (Section VI-B(b)).
"""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

CHUNK_BYTES = 256

SOURCE = """
DRAM<char> text;
DRAM<char> pattern;
DRAM<int> skip;
DRAM<int> out;

void main(int count, int m) {
  foreach (count) { int i =>
    int base = i * 256;
    int pos = 0;
    int matches = 0;
    while (pos <= 256 - m) {
      int j = m - 1;
      int mismatch = 0;
      while (j >= 0 && mismatch == 0) {
        int a = text[base + pos + j];
        int b = pattern[j];
        if (a != b) { mismatch = 1; } else { j = j - 1; }
      };
      if (mismatch == 0) {
        matches = matches + 1;
        pos = pos + 1;
      } else {
        int last = text[base + pos + m - 1];
        pos = pos + skip[last];
      }
    };
    out[i] = matches;
  };
}
"""


def build_skip_table(pattern: bytes):
    """Horspool bad-character table: skip distance per trailing byte."""
    m = len(pattern)
    table = [m] * 256
    for i in range(m - 1):
        table[pattern[i]] = m - 1 - i
    return table


def generate(count: int, seed: int = 0, pattern: bytes = b"moby dick") -> AppInstance:
    rng = seeded_rng(seed)
    alphabet = b"abcdefghij klmnopqrstuvwxyz"
    chunks = []
    for _ in range(count):
        chunk = bytearray(rng.choice(alphabet) for _ in range(CHUNK_BYTES))
        for _ in range(rng.randint(0, 3)):
            offset = rng.randint(0, CHUNK_BYTES - len(pattern))
            chunk[offset : offset + len(pattern)] = pattern
        chunks.append(bytes(chunk))
    memory = MemorySystem()
    memory.load_bytes("text", b"".join(chunks))
    memory.load_bytes("pattern", pattern)
    memory.dram_alloc("skip", data=build_skip_table(pattern))
    memory.dram_alloc("out", size=count)
    return AppInstance(
        memory=memory,
        args={"count": count, "m": len(pattern)},
        context={"chunks": chunks, "pattern": pattern},
        total_bytes=count * (CHUNK_BYTES + 4),
    )


def reference(instance: AppInstance):
    pattern = instance.context["pattern"]
    results = []
    for chunk in instance.context["chunks"]:
        count = 0
        pos = 0
        while pos <= len(chunk) - len(pattern):
            if chunk[pos : pos + len(pattern)] == pattern:
                count += 1
            pos += 1
        results.append(count)
    return results


SPEC = REGISTRY.register(AppSpec(
    name="search",
    description="Exact-match search over 256 B chunks (Boyer-Moore style)",
    source=SOURCE,
    key_features=["PeekReadIt", "nested while"],
    bytes_per_thread=256,
    avg_iterations_per_thread=60.0,
    paper_revet_gbs=481.0,
    paper_gpu_gbs=51.0,
    paper_cpu_gbs=120.6,
    outer_parallelism=8,
    generate=generate,
    reference=reference,
))
