"""The Table III application suite (plus the strlen running example)."""

from repro.apps.base import AppInstance, AppSpec, AppRegistry, REGISTRY, check_app, run_app

# Importing each application module registers its AppSpec with REGISTRY as a
# side effect; the names themselves are never referenced again.
from repro.apps import (  # noqa: F401
    hash_table,
    huffman,
    ip2int,
    isipv4,
    kdtree,
    murmur3,
    search,
    strlen,
)

#: The eight applications evaluated in the paper (Table III order).
TABLE3_APPS = ["isipv4", "ip2int", "murmur3", "hash-table", "search",
               "huff-dec", "huff-enc", "kD-tree"]

__all__ = [
    "AppInstance",
    "AppSpec",
    "AppRegistry",
    "REGISTRY",
    "TABLE3_APPS",
    "check_app",
    "run_app",
]
