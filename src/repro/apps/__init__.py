"""The Table III application suite (plus the strlen running example)."""

from repro.apps.base import AppInstance, AppSpec, AppRegistry, REGISTRY, check_app, run_app
from repro.apps import isipv4, ip2int, murmur3, hash_table, search, huffman, kdtree, strlen

#: The eight applications evaluated in the paper (Table III order).
TABLE3_APPS = ["isipv4", "ip2int", "murmur3", "hash-table", "search",
               "huff-dec", "huff-enc", "kD-tree"]

__all__ = [
    "AppInstance",
    "AppSpec",
    "AppRegistry",
    "REGISTRY",
    "TABLE3_APPS",
    "check_app",
    "run_app",
]
