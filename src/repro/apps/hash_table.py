"""hash-table: open-addressed hash-table lookups (Table III)."""

from __future__ import annotations

from repro.apps.base import AppInstance, AppSpec, REGISTRY, seeded_rng
from repro.core.memory import MemorySystem

HASH_MULT = 0x9E3779B1

SOURCE = """
DRAM<int> keys;
DRAM<int> values;
DRAM<int> queries;
DRAM<int> out;

void main(int count, int mask) {
  foreach (count) { int i =>
    int q = queries[i];
    int slot = (q * 0x9E3779B1) & mask;
    int result = 0 - 1;
    int probing = 1;
    while (probing == 1) {
      int k = keys[slot];
      if (k == q) {
        result = values[slot];
        probing = 0;
      } else {
        if (k == 0) {
          probing = 0;
        } else {
          slot = (slot + 1) & mask;
        }
      }
    };
    out[i] = result;
  };
}
"""


def _build_table(rng, table_size: int, load: float):
    keys = [0] * table_size
    values = [0] * table_size
    mask = table_size - 1
    inserted = {}
    target = int(table_size * load)
    while len(inserted) < target:
        key = rng.randint(1, 1 << 30)
        if key in inserted:
            continue
        value = rng.randint(1, 1 << 30)
        slot = (key * HASH_MULT) & mask
        while keys[slot] != 0:
            slot = (slot + 1) & mask
        keys[slot] = key
        values[slot] = value
        inserted[key] = value
    return keys, values, inserted


def generate(count: int, seed: int = 0, table_size: int = 1024,
             load: float = 0.25) -> AppInstance:
    rng = seeded_rng(seed)
    keys, values, inserted = _build_table(rng, table_size, load)
    present = list(inserted.keys())
    queries = []
    for _ in range(count):
        if present and rng.random() < 0.5:
            queries.append(rng.choice(present))
        else:
            queries.append(rng.randint(1, 1 << 30))
    memory = MemorySystem()
    memory.dram_alloc("keys", data=keys)
    memory.dram_alloc("values", data=values)
    memory.dram_alloc("queries", data=queries)
    memory.dram_alloc("out", size=count)
    return AppInstance(
        memory=memory,
        args={"count": count, "mask": table_size - 1},
        context={"queries": queries, "inserted": inserted},
        total_bytes=count * 16,
    )


def reference(instance: AppInstance):
    inserted = instance.context["inserted"]
    # A query either hits (returns the stored value) or probes to an empty
    # slot (returns -1); linear probing guarantees this matches the kernel.
    return [inserted.get(q, -1) for q in instance.context["queries"]]


SPEC = REGISTRY.register(AppSpec(
    name="hash-table",
    description="Hash-table lookup with int32 keys/values at 25% load",
    source=SOURCE,
    key_features=["ReadIt", "while", "data-dependent probing"],
    bytes_per_thread=16,
    avg_iterations_per_thread=1.3,
    paper_revet_gbs=42.0,
    paper_gpu_gbs=40.0,
    paper_cpu_gbs=7.4,
    outer_parallelism=16,
    generate=generate,
    reference=reference,
))
