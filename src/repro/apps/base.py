"""Application framework: the Table III benchmark suite.

Each application provides:

* its Revet source (compiled by :func:`repro.compiler.compile_source`),
* an input generator producing a :class:`repro.core.memory.MemorySystem`,
* a pure-Python reference implementation used as the correctness oracle,
* metadata used by the evaluation harness (per-thread data size, key
  features, and the baseline-model parameters from Table III/V).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.compiler import CompileOptions, compile_source
from repro.core.memory import MemorySystem
from repro.dataflow.lowering import CompiledProgram


@dataclass
class AppSpec:
    """Static description of one benchmark application."""

    name: str
    description: str
    source: str
    key_features: List[str]
    #: Bytes of DRAM data touched per thread (Table III "Per-Thread" column).
    bytes_per_thread: int
    #: Average dynamic inner-loop iterations per thread (drives the models).
    avg_iterations_per_thread: float
    #: Paper-reported throughputs (GB/s) used for shape comparison only.
    paper_revet_gbs: float
    paper_gpu_gbs: float
    paper_cpu_gbs: float
    #: Outer-parallel streams used in Table IV ("Parallelization Outer").
    outer_parallelism: int
    #: Generate inputs: returns (memory, program kwargs, context dict).
    generate: Callable[[int, int], "AppInstance"] = None
    #: Reference implementation: operates on the same memory, returns the
    #: expected contents of the output segment.
    reference: Callable[["AppInstance"], List[int]] = None
    #: Name of the DRAM segment holding the program's output.
    output_segment: str = "out"
    #: Bytes processed per "element" when reporting throughput.
    replicate_factor: int = 1
    #: Whether the serving engine (:mod:`repro.runtime`) may accept requests
    #: for this app by name.  Servable apps need a deterministic ``generate``.
    servable: bool = True

    def compile(self, options: Optional[CompileOptions] = None) -> CompiledProgram:
        return compile_source(self.source, options=options)

    def make_instance(self, n_threads: int, seed: int = 0) -> "AppInstance":
        """Generate one deterministic problem instance (serving entry point)."""
        if self.generate is None:
            raise KeyError(f"app '{self.name}' has no input generator")
        return self.generate(n_threads, seed)


@dataclass
class AppInstance:
    """One generated problem instance."""

    memory: MemorySystem
    args: Dict[str, int]
    context: Dict[str, object] = field(default_factory=dict)
    total_bytes: int = 0


class AppRegistry:
    """Global registry of Table III applications."""

    def __init__(self):
        self._apps: Dict[str, AppSpec] = {}

    def register(self, spec: AppSpec) -> AppSpec:
        self._apps[spec.name] = spec
        return spec

    def get(self, name: str) -> AppSpec:
        return self._apps[name]

    def get_servable(self, name: str) -> AppSpec:
        """Resolve a serving-engine request target by app name."""
        if name not in self._apps:
            raise KeyError(
                f"unknown app '{name}'; servable apps: {self.servable_names()}")
        spec = self._apps[name]
        if not spec.servable or spec.generate is None:
            raise KeyError(f"app '{name}' is not servable")
        return spec

    def names(self) -> List[str]:
        return list(self._apps.keys())

    def servable_names(self) -> List[str]:
        """Apps the serving engine accepts by name."""
        return [name for name, spec in self._apps.items()
                if spec.servable and spec.generate is not None]

    def all(self) -> List[AppSpec]:
        return list(self._apps.values())


REGISTRY = AppRegistry()


def seeded_rng(seed: int) -> random.Random:
    """Deterministic RNG for input generation."""
    return random.Random(seed)


def run_app(spec: AppSpec, instance: AppInstance,
            options: Optional[CompileOptions] = None, profile: bool = False):
    """Compile and execute one application instance; returns executor/streams."""
    program = spec.compile(options)
    return program.run(instance.memory, profile=profile, **instance.args)


def check_app(spec: AppSpec, n_threads: int = 8, seed: int = 0,
              options: Optional[CompileOptions] = None) -> bool:
    """Run a small instance and compare against the reference oracle."""
    instance = spec.generate(n_threads, seed)
    expected = spec.reference(instance)
    run_app(spec, instance, options=options)
    actual = instance.memory.segment_data(spec.output_segment)[: len(expected)]
    return actual == expected
