"""Exception hierarchy for the Revet reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SLTFError(ReproError):
    """Malformed SLTF stream or invalid barrier usage."""


class PrimitiveError(ReproError):
    """A streaming primitive was used with invalid inputs."""


class GraphError(ReproError):
    """Invalid dataflow graph construction or execution."""


class MachineError(ReproError):
    """Invalid machine-model configuration or resource mapping."""


class LexError(ReproError):
    """Lexical error in Revet source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Syntax error in Revet source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Type or semantic error in a Revet program."""


class IRError(ReproError):
    """Malformed IR (verification failure, bad builder usage)."""


class PassError(ReproError):
    """A compiler pass failed or was misconfigured."""


class LoweringError(ReproError):
    """Control-flow to dataflow lowering failed."""


class PlacementError(ReproError):
    """The placed graph exceeds machine resources."""


class SimulationError(ReproError):
    """Cycle-level simulation error (deadlock, invalid configuration)."""
