"""AST node definitions for the Revet language.

Every node carries its source line for diagnostics.  Statements and
expressions are plain dataclasses; the tree produced by the parser is
immutable by convention (the lowering never mutates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# -- types -------------------------------------------------------------------

#: Scalar type names accepted in declarations and parameters.
SCALAR_TYPES = {"int": 32, "uint": 32, "int8": 8, "int16": 16, "char": 8,
                "bool": 1, "void": 0}

VIEW_KINDS = {"ReadView", "WriteView", "ModifyView"}
ITERATOR_KINDS = {"ReadIt", "PeekReadIt", "WriteIt", "ManualWriteIt"}


@dataclass(frozen=True)
class TypeName:
    """A scalar type reference (``int``, ``char``, ...)."""

    name: str

    @property
    def width(self) -> int:
        return SCALAR_TYPES[self.name]


# -- expressions ----------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class BinaryOp(Expr):
    op: str = "+"
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnaryOp(Expr):
    op: str = "-"  # '-', '!', '~', '*' (deref of an iterator)
    operand: Optional[Expr] = None


@dataclass
class IndexExpr(Expr):
    """``base[index]`` where base is an SRAM, view, or DRAM symbol."""

    base: str = ""
    index: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    """Intrinsic calls: ``fork(n)``, ``peek(it, k)``, ``min(a, b)``, ..."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class TernaryExpr(Expr):
    cond: Optional[Expr] = None
    then_value: Optional[Expr] = None
    else_value: Optional[Expr] = None


# -- statements ---------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type: TypeName = TypeName("int")
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class SramDecl(Stmt):
    """``SRAM<size> name;`` — an explicitly managed scratchpad buffer."""

    size: int = 0
    name: str = ""


@dataclass
class ViewDecl(Stmt):
    """``ReadView<size> name(dram, base);`` and friends (Table I)."""

    kind: str = "ReadView"
    size: int = 0
    name: str = ""
    dram: str = ""
    base: Optional[Expr] = None


@dataclass
class IteratorDecl(Stmt):
    """``ReadIt<tile> name(dram, seek);`` and friends (Table I)."""

    kind: str = "ReadIt"
    tile: int = 0
    name: str = ""
    dram: str = ""
    seek: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a variable, index, or deref."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="  # '=', '+=', '-=', ...


@dataclass
class IncrDecr(Stmt):
    """``x++`` / ``x--`` / ``it++`` (iterator advance)."""

    target: Optional[Expr] = None
    delta: int = 1


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_block: Optional[Block] = None
    else_block: Optional[Block] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class ForeachStmt(Stmt):
    """``foreach (count by step) { type name => body }``."""

    count: Optional[Expr] = None
    step: Optional[Expr] = None
    index_type: TypeName = TypeName("int")
    index_name: str = "i"
    body: Optional[Block] = None


@dataclass
class ReplicateStmt(Stmt):
    factor: int = 1
    body: Optional[Block] = None


@dataclass
class PragmaStmt(Stmt):
    name: str = ""


@dataclass
class ExitStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class FlushStmt(Stmt):
    """``flush(it);`` — manual flush of a ManualWriteIt."""

    iterator: str = ""


# -- top level -------------------------------------------------------------------------


@dataclass
class DramDecl:
    """``DRAM<char> input;`` — a global DRAM tensor."""

    element: TypeName = TypeName("int")
    name: str = ""
    line: int = 0


@dataclass
class Param:
    type: TypeName = TypeName("int")
    name: str = ""


@dataclass
class Function:
    return_type: TypeName = TypeName("void")
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    line: int = 0


@dataclass
class Program:
    drams: List[DramDecl] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
