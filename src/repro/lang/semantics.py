"""Semantic analysis for Revet programs.

Checks performed before lowering:

* symbol resolution: every referenced name is a declared variable, SRAM
  buffer, view, iterator, DRAM global, parameter, or intrinsic;
* duplicate declarations within one scope;
* views/iterators reference declared DRAM globals;
* read/write capability checks per Table I (e.g. a ``ReadIt`` cannot be the
  target of a store, a ``WriteView`` cannot be read);
* structural rules: ``exit()`` only inside a parallel region, ``fork`` only
  inside a parallel region, ``replicate`` factors are positive, foreach
  bodies do not ``return``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast

#: Intrinsic functions usable in expressions.
INTRINSICS = {"fork", "min", "max", "abs", "peek"}

#: Which adapters may be read / written (paper Table I).
ADAPTER_READABLE = {"ReadView", "ModifyView", "ReadIt", "PeekReadIt", "SRAM"}
ADAPTER_WRITABLE = {"WriteView", "ModifyView", "WriteIt", "ManualWriteIt", "SRAM"}


@dataclass
class Symbol:
    """One declared name and its kind."""

    name: str
    kind: str  # 'scalar', 'sram', 'view', 'iterator', 'dram', 'param'
    detail: str = ""  # adapter kind for views/iterators, type name for scalars


@dataclass
class Scope:
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    parent: Optional["Scope"] = None

    def declare(self, symbol: Symbol, line: int = 0) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"line {line}: redeclaration of '{symbol.name}'")
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


@dataclass
class AnalysisResult:
    """Summary information gathered during analysis (used by the lowering)."""

    dram_names: Set[str] = field(default_factory=set)
    functions: Set[str] = field(default_factory=set)
    uses_fork: bool = False
    uses_exit: bool = False
    max_foreach_depth: int = 0
    pragmas: List[str] = field(default_factory=list)


class SemanticChecker:
    """Validates a parsed program; raises :class:`SemanticError` on problems."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.result = AnalysisResult()

    def check(self) -> AnalysisResult:
        globals_scope = Scope()
        for dram in self.program.drams:
            globals_scope.declare(
                Symbol(dram.name, "dram", dram.element.name), dram.line
            )
            self.result.dram_names.add(dram.name)
        if not self.program.functions:
            raise SemanticError("program has no functions")
        for fn in self.program.functions:
            self.result.functions.add(fn.name)
        for fn in self.program.functions:
            self._check_function(fn, globals_scope)
        return self.result

    # -- functions and statements ------------------------------------------------

    def _check_function(self, fn: ast.Function, globals_scope: Scope) -> None:
        scope = Scope(parent=globals_scope)
        for param in fn.params:
            scope.declare(Symbol(param.name, "param", param.type.name), fn.line)
        self._check_block(fn.body, scope, parallel_depth=0)

    def _check_block(self, block: ast.Block, scope: Scope, parallel_depth: int) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt, scope, parallel_depth)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope, depth: int) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope, depth)
            scope.declare(Symbol(stmt.name, "scalar", stmt.type.name), stmt.line)
        elif isinstance(stmt, ast.SramDecl):
            if stmt.size <= 0:
                raise SemanticError(f"line {stmt.line}: SRAM size must be positive")
            scope.declare(Symbol(stmt.name, "sram", "SRAM"), stmt.line)
        elif isinstance(stmt, ast.ViewDecl):
            self._check_dram(stmt.dram, stmt.line, scope)
            self._check_expr(stmt.base, scope, depth)
            scope.declare(Symbol(stmt.name, "view", stmt.kind), stmt.line)
        elif isinstance(stmt, ast.IteratorDecl):
            self._check_dram(stmt.dram, stmt.line, scope)
            self._check_expr(stmt.seek, scope, depth)
            scope.declare(Symbol(stmt.name, "iterator", stmt.kind), stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope, depth)
        elif isinstance(stmt, ast.IncrDecr):
            self._check_incr(stmt, scope, depth)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, depth)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond, scope, depth)
            self._check_block(stmt.then_block, Scope(parent=scope), depth)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block, Scope(parent=scope), depth)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_expr(stmt.cond, scope, depth)
            self._check_block(stmt.body, Scope(parent=scope), depth)
        elif isinstance(stmt, ast.ForeachStmt):
            self._check_expr(stmt.count, scope, depth)
            if stmt.step is not None:
                self._check_expr(stmt.step, scope, depth)
            self.result.max_foreach_depth = max(self.result.max_foreach_depth, depth + 1)
            inner = Scope(parent=scope)
            inner.declare(Symbol(stmt.index_name, "scalar", stmt.index_type.name), stmt.line)
            self._check_block(stmt.body, inner, depth + 1)
        elif isinstance(stmt, ast.ReplicateStmt):
            if stmt.factor < 1:
                raise SemanticError(f"line {stmt.line}: replicate factor must be >= 1")
            self._check_block(stmt.body, Scope(parent=scope), depth)
        elif isinstance(stmt, ast.PragmaStmt):
            self.result.pragmas.append(stmt.name)
        elif isinstance(stmt, ast.ExitStmt):
            if depth == 0:
                raise SemanticError(
                    f"line {stmt.line}: exit() is only allowed inside a parallel region"
                )
            self.result.uses_exit = True
        elif isinstance(stmt, ast.ReturnStmt):
            if depth > 0:
                raise SemanticError(
                    f"line {stmt.line}: return is not allowed inside foreach bodies; "
                    "yield values from a thread by assigning to a WriteView"
                )
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, depth)
        elif isinstance(stmt, ast.FlushStmt):
            symbol = scope.lookup(stmt.iterator)
            if symbol is None or symbol.kind != "iterator":
                raise SemanticError(
                    f"line {stmt.line}: flush() expects an iterator, got '{stmt.iterator}'"
                )
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, Scope(parent=scope), depth)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"line {stmt.line}: unsupported statement {type(stmt).__name__}")

    def _check_assign(self, stmt: ast.Assign, scope: Scope, depth: int) -> None:
        self._check_expr(stmt.value, scope, depth)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            symbol = scope.lookup(target.name)
            if symbol is None:
                raise SemanticError(f"line {stmt.line}: assignment to undeclared '{target.name}'")
            if symbol.kind not in ("scalar", "param"):
                raise SemanticError(
                    f"line {stmt.line}: cannot assign to {symbol.kind} '{target.name}' directly"
                )
        elif isinstance(target, ast.IndexExpr):
            symbol = self._lookup_indexable(target.base, stmt.line, scope)
            if symbol.kind in ("view", "sram") and symbol.detail not in ADAPTER_WRITABLE:
                raise SemanticError(
                    f"line {stmt.line}: '{target.base}' ({symbol.detail}) is not writable"
                )
            self._check_expr(target.index, scope, depth)
        elif isinstance(target, ast.UnaryOp) and target.op == "*":
            symbol = self._iterator_of(target, stmt.line, scope)
            if symbol.detail not in ADAPTER_WRITABLE:
                raise SemanticError(
                    f"line {stmt.line}: iterator '{symbol.name}' ({symbol.detail}) is read-only"
                )
        else:
            raise SemanticError(f"line {stmt.line}: invalid assignment target")

    def _check_incr(self, stmt: ast.IncrDecr, scope: Scope, depth: int) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            symbol = scope.lookup(target.name)
            if symbol is None:
                raise SemanticError(f"line {stmt.line}: '{target.name}' is not declared")
            if symbol.kind not in ("scalar", "param", "iterator"):
                raise SemanticError(
                    f"line {stmt.line}: '++' is not supported on {symbol.kind} '{target.name}'"
                )
        else:
            raise SemanticError(f"line {stmt.line}: '++' target must be a name")

    # -- expressions -------------------------------------------------------------------

    def _check_expr(self, expr: Optional[ast.Expr], scope: Scope, depth: int) -> None:
        if expr is None:
            raise SemanticError("internal error: missing expression")
        if isinstance(expr, (ast.IntLiteral, ast.BoolLiteral, ast.StringLiteral)):
            return
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemanticError(f"line {expr.line}: use of undeclared '{expr.name}'")
            return
        if isinstance(expr, ast.BinaryOp):
            self._check_expr(expr.lhs, scope, depth)
            self._check_expr(expr.rhs, scope, depth)
            return
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "*":
                self._iterator_of(expr, expr.line, scope, require_readable=True)
                return
            self._check_expr(expr.operand, scope, depth)
            return
        if isinstance(expr, ast.IndexExpr):
            symbol = self._lookup_indexable(expr.base, expr.line, scope)
            if symbol.kind in ("view", "sram") and symbol.detail not in ADAPTER_READABLE:
                raise SemanticError(
                    f"line {expr.line}: '{expr.base}' ({symbol.detail}) is not readable"
                )
            self._check_expr(expr.index, scope, depth)
            return
        if isinstance(expr, ast.TernaryExpr):
            self._check_expr(expr.cond, scope, depth)
            self._check_expr(expr.then_value, scope, depth)
            self._check_expr(expr.else_value, scope, depth)
            return
        if isinstance(expr, ast.CallExpr):
            if expr.callee == "fork":
                if depth == 0:
                    raise SemanticError(
                        f"line {expr.line}: fork() is only allowed inside a parallel region"
                    )
                self.result.uses_fork = True
            elif expr.callee == "peek":
                if not expr.args or not isinstance(expr.args[0], ast.VarRef):
                    raise SemanticError(
                        f"line {expr.line}: peek() expects an iterator as its first argument"
                    )
                symbol = scope.lookup(expr.args[0].name)
                if symbol is None or symbol.kind != "iterator":
                    raise SemanticError(
                        f"line {expr.line}: peek() expects an iterator as its first argument"
                    )
                for arg in expr.args[1:]:
                    self._check_expr(arg, scope, depth)
                return
            elif expr.callee not in INTRINSICS and expr.callee not in self.result.functions:
                raise SemanticError(f"line {expr.line}: unknown function '{expr.callee}'")
            for arg in expr.args:
                self._check_expr(arg, scope, depth)
            return
        raise SemanticError(f"line {expr.line}: unsupported expression {type(expr).__name__}")

    # -- helpers -------------------------------------------------------------------------

    def _check_dram(self, name: str, line: int, scope: Scope) -> None:
        symbol = scope.lookup(name)
        if symbol is None or symbol.kind != "dram":
            raise SemanticError(f"line {line}: '{name}' is not a declared DRAM tensor")

    def _lookup_indexable(self, name: str, line: int, scope: Scope) -> Symbol:
        symbol = scope.lookup(name)
        if symbol is None:
            raise SemanticError(f"line {line}: use of undeclared '{name}'")
        if symbol.kind not in ("sram", "view", "dram"):
            raise SemanticError(
                f"line {line}: '{name}' is not indexable (kind: {symbol.kind})"
            )
        return symbol

    def _iterator_of(self, expr: ast.UnaryOp, line: int, scope: Scope,
                     require_readable: bool = False) -> Symbol:
        operand = expr.operand
        if not isinstance(operand, ast.VarRef):
            raise SemanticError(f"line {line}: '*' expects an iterator name")
        symbol = scope.lookup(operand.name)
        if symbol is None or symbol.kind != "iterator":
            raise SemanticError(f"line {line}: '{operand.name}' is not an iterator")
        if require_readable and symbol.detail not in ADAPTER_READABLE:
            raise SemanticError(
                f"line {line}: iterator '{operand.name}' ({symbol.detail}) is write-only"
            )
        return symbol


def check(program: ast.Program) -> AnalysisResult:
    """Run semantic analysis on a parsed program."""
    return SemanticChecker(program).check()
