"""The Revet language front end: lexer, parser, AST, semantic analysis."""

from repro.lang.ast_nodes import Program
from repro.lang.lexer import Lexer, Token, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.semantics import AnalysisResult, SemanticChecker, check

__all__ = [
    "Program",
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse",
    "AnalysisResult",
    "SemanticChecker",
    "check",
]
