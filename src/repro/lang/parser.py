"""Recursive-descent parser for the Revet language."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import ITERATOR_KINDS, SCALAR_TYPES, VIEW_KINDS
from repro.lang.lexer import Token, tokenize

#: Binary operator precedence levels (higher binds tighter).
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value=None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        if not self._check(kind, value):
            token = self._peek()
            expected = value if value is not None else kind
            raise ParseError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- top level ---------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check("eof"):
            if self._check("keyword", "DRAM"):
                program.drams.append(self._parse_dram_decl())
            elif self._check("keyword") and self._peek().value in SCALAR_TYPES:
                program.functions.append(self._parse_function())
            else:
                raise self._error(
                    f"expected a DRAM declaration or function, found {self._peek().value!r}"
                )
        return program

    def _parse_dram_decl(self) -> ast.DramDecl:
        start = self._expect("keyword", "DRAM")
        self._expect("op", "<")
        element = self._parse_type()
        self._expect("op", ">")
        name = self._expect("ident").value
        decl = ast.DramDecl(element=element, name=name, line=start.line)
        self._expect("op", ";")
        # Allow several declarations on one line: DRAM<int> a; DRAM<int> b;
        return decl

    def _parse_type(self) -> ast.TypeName:
        token = self._expect("keyword")
        if token.value not in SCALAR_TYPES:
            raise ParseError(f"unknown type '{token.value}'", token.line, token.column)
        return ast.TypeName(token.value)

    def _parse_function(self) -> ast.Function:
        return_type = self._parse_type()
        name_tok = self._expect("ident")
        self._expect("op", "(")
        params: List[ast.Param] = []
        while not self._check("op", ")"):
            ptype = self._parse_type()
            pname = self._expect("ident").value
            params.append(ast.Param(type=ptype, name=pname))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.Function(
            return_type=return_type,
            name=name_tok.value,
            params=params,
            body=body,
            line=name_tok.line,
        )

    # -- statements ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect("op", "}")
        return ast.Block(line=start.line, statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "keyword":
            kw = token.value
            if kw in SCALAR_TYPES:
                return self._parse_var_decl()
            if kw == "SRAM":
                return self._parse_sram_decl()
            if kw in VIEW_KINDS:
                return self._parse_view_decl()
            if kw in ITERATOR_KINDS:
                return self._parse_iterator_decl()
            if kw == "if":
                return self._parse_if()
            if kw == "while":
                return self._parse_while()
            if kw == "foreach":
                return self._parse_foreach()
            if kw == "replicate":
                return self._parse_replicate()
            if kw == "pragma":
                return self._parse_pragma()
            if kw == "exit":
                return self._parse_exit()
            if kw == "return":
                return self._parse_return()
        if token.kind == "ident" and token.value == "flush":
            return self._parse_flush()
        return self._parse_expression_statement()

    def _parse_var_decl(self) -> ast.VarDecl:
        type_name = self._parse_type()
        name_tok = self._expect("ident")
        init = None
        if self._accept("op", "="):
            init = self._parse_expression()
        self._expect("op", ";")
        return ast.VarDecl(line=name_tok.line, type=type_name, name=name_tok.value, init=init)

    def _parse_sram_decl(self) -> ast.SramDecl:
        start = self._expect("keyword", "SRAM")
        self._expect("op", "<")
        size = self._expect("int").value
        self._expect("op", ">")
        name = self._expect("ident").value
        self._expect("op", ";")
        return ast.SramDecl(line=start.line, size=size, name=name)

    def _parse_view_decl(self) -> ast.ViewDecl:
        kind_tok = self._advance()
        self._expect("op", "<")
        size = self._expect("int").value
        self._expect("op", ">")
        name = self._expect("ident").value
        self._expect("op", "(")
        dram = self._expect("ident").value
        self._expect("op", ",")
        base = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.ViewDecl(
            line=kind_tok.line, kind=kind_tok.value, size=size, name=name,
            dram=dram, base=base,
        )

    def _parse_iterator_decl(self) -> ast.IteratorDecl:
        kind_tok = self._advance()
        self._expect("op", "<")
        tile = self._expect("int").value
        self._expect("op", ">")
        name = self._expect("ident").value
        self._expect("op", "(")
        dram = self._expect("ident").value
        self._expect("op", ",")
        seek = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.IteratorDecl(
            line=kind_tok.line, kind=kind_tok.value, tile=tile, name=name,
            dram=dram, seek=seek,
        )

    def _parse_if(self) -> ast.IfStmt:
        start = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then_block = self._parse_block()
        else_block = None
        if self._accept("keyword", "else"):
            if self._check("keyword", "if"):
                nested = self._parse_if()
                else_block = ast.Block(line=nested.line, statements=[nested])
            else:
                else_block = self._parse_block()
        self._accept("op", ";")
        return ast.IfStmt(line=start.line, cond=cond, then_block=then_block,
                          else_block=else_block)

    def _parse_while(self) -> ast.WhileStmt:
        start = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_block()
        self._accept("op", ";")
        return ast.WhileStmt(line=start.line, cond=cond, body=body)

    def _parse_foreach(self) -> ast.ForeachStmt:
        start = self._expect("keyword", "foreach")
        self._expect("op", "(")
        count = self._parse_expression()
        step: Optional[ast.Expr] = None
        if self._accept("keyword", "by"):
            step = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", "{")
        index_type = self._parse_type()
        index_name = self._expect("ident").value
        self._expect("op", "=>")
        statements: List[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated foreach body")
            statements.append(self._parse_statement())
        self._expect("op", "}")
        self._accept("op", ";")
        body = ast.Block(line=start.line, statements=statements)
        return ast.ForeachStmt(
            line=start.line, count=count, step=step, index_type=index_type,
            index_name=index_name, body=body,
        )

    def _parse_replicate(self) -> ast.ReplicateStmt:
        start = self._expect("keyword", "replicate")
        self._expect("op", "(")
        factor = self._expect("int").value
        self._expect("op", ")")
        body = self._parse_block()
        self._accept("op", ";")
        return ast.ReplicateStmt(line=start.line, factor=factor, body=body)

    def _parse_pragma(self) -> ast.PragmaStmt:
        start = self._expect("keyword", "pragma")
        self._expect("op", "(")
        name = self._expect("ident").value
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.PragmaStmt(line=start.line, name=name)

    def _parse_exit(self) -> ast.ExitStmt:
        start = self._expect("keyword", "exit")
        self._expect("op", "(")
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.ExitStmt(line=start.line)

    def _parse_return(self) -> ast.ReturnStmt:
        start = self._expect("keyword", "return")
        value = None
        if not self._check("op", ";"):
            value = self._parse_expression()
        self._expect("op", ";")
        return ast.ReturnStmt(line=start.line, value=value)

    def _parse_flush(self) -> ast.FlushStmt:
        start = self._expect("ident")  # 'flush'
        self._expect("op", "(")
        iterator = self._expect("ident").value
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.FlushStmt(line=start.line, iterator=iterator)

    def _parse_expression_statement(self) -> ast.Stmt:
        start = self._peek()
        target = self._parse_expression()
        if self._check("op") and self._peek().value in ASSIGN_OPS:
            op = self._advance().value
            value = self._parse_expression()
            self._expect("op", ";")
            return ast.Assign(line=start.line, target=target, value=value, op=op)
        if self._check("op", "++") or self._check("op", "--"):
            delta = 1 if self._advance().value == "++" else -1
            self._expect("op", ";")
            return ast.IncrDecr(line=start.line, target=target, delta=delta)
        self._expect("op", ";")
        return ast.ExprStmt(line=start.line, expr=target)

    # -- expressions -------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            then_value = self._parse_expression()
            self._expect("op", ":")
            else_value = self._parse_expression()
            return ast.TernaryExpr(line=cond.line, cond=cond, then_value=then_value,
                                   else_value=else_value)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op" or token.value not in PRECEDENCE:
                return lhs
            prec = PRECEDENCE[token.value]
            if prec < min_prec:
                return lhs
            op = self._advance().value
            rhs = self._parse_binary(prec + 1)
            lhs = ast.BinaryOp(line=token.line, op=op, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.value in ("-", "!", "~", "*"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op=token.value, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("op", "["):
                if not isinstance(expr, ast.VarRef):
                    raise self._error("indexing is only supported on named buffers")
                self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.IndexExpr(line=expr.line, base=expr.name, index=index)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(line=token.line, value=token.value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            self._advance()
            return ast.BoolLiteral(line=token.line, value=token.value == "true")
        if token.kind == "keyword" and token.value == "fork":
            self._advance()
            self._expect("op", "(")
            arg = self._parse_expression()
            self._expect("op", ")")
            return ast.CallExpr(line=token.line, callee="fork", args=[arg])
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[ast.Expr] = []
                while not self._check("op", ")"):
                    args.append(self._parse_expression())
                    if not self._accept("op", ","):
                        break
                self._expect("op", ")")
                return ast.CallExpr(line=token.line, callee=token.value, args=args)
            return ast.VarRef(line=token.line, name=token.value)
        if self._accept("op", "("):
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {token.value!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse Revet source text into an AST."""
    return Parser(tokenize(source)).parse_program()
