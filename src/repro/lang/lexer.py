"""Lexer for the Revet language (paper Section IV, Figure 7 syntax)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

KEYWORDS = {
    "int",
    "int8",
    "int16",
    "uint",
    "char",
    "bool",
    "void",
    "if",
    "else",
    "while",
    "foreach",
    "replicate",
    "fork",
    "exit",
    "return",
    "by",
    "pragma",
    "DRAM",
    "SRAM",
    "ReadView",
    "WriteView",
    "ModifyView",
    "ReadIt",
    "PeekReadIt",
    "WriteIt",
    "ManualWriteIt",
    "true",
    "false",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_CHAR_OPS = [
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
]

SINGLE_CHAR_OPS = set("+-*/%<>=!&|^~(){}[],;:?.")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # 'int', 'char', 'string', 'ident', 'keyword', 'op', 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts Revet source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens

    # -- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token("eof", None, line, column)
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        if ch == '"':
            return self._lex_string(line, column)

        for op in MULTI_CHAR_OPS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            return Token("op", ch, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token("int", int(self.source[start : self.pos], 16), line, column)
        while self._peek().isdigit():
            self._advance()
        return Token("int", int(self.source[start : self.pos]), line, column)

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            escapes = {"n": "\n", "t": "\t", "0": "\0", "'": "'", "\\": "\\"}
            ch = escapes.get(self._peek())
            if ch is None:
                raise LexError(f"unknown escape \\{self._peek()}", line, column)
        self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", line, column)
        self._advance()
        return Token("int", ord(ch), line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()
        chars: List[str] = []
        while self._peek() != '"':
            if not self._peek():
                raise LexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "\\":
                escapes = {"n": "\n", "t": "\t", "0": "\0", '"': '"', "\\": "\\"}
                nxt = self._advance()
                if nxt not in escapes:
                    raise LexError(f"unknown escape \\{nxt}", line, column)
                ch = escapes[nxt]
            chars.append(ch)
        self._advance()
        return Token("string", "".join(chars), line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenize Revet source text."""
    return Lexer(source).tokenize()
