"""Front-end lowering: Revet AST to the mixed scf/revet IR."""

from repro.frontend.lowering import (
    FrontendLowering,
    compile_source_to_ir,
    lower_program,
)

__all__ = ["FrontendLowering", "compile_source_to_ir", "lower_program"]
