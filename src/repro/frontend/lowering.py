"""AST to IR lowering ("Parse & Convert Types" in Figure 8).

The lowering produces a module mixing the ``scf``, ``arith``, ``memref`` and
``revet`` dialects:

* mutable local variables become SSA values; variables assigned inside
  ``if``/``while``/``replicate`` regions become region results or
  loop-carried values (structured mem2reg),
* views and iterators stay as high-level ``revet`` ops (they are lowered to
  physical memory by the pass pipeline),
* ``foreach``/``replicate``/``fork``/``exit`` become their ``revet`` ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import LoweringError
from repro.ir import Builder, I1, IntType, Module, Operation, Value
from repro.ir.dialects import arith, func, memref, revet, scf
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.semantics import check

#: Revet binary operators mapped to arith ops (comparisons handled apart).
BINOP_MAP = {
    "+": "addi",
    "-": "subi",
    "*": "muli",
    "/": "divsi",
    "%": "remsi",
    "&": "andi",
    "|": "ori",
    "^": "xori",
    "<<": "shli",
    ">>": "shrui",
}

CMP_MAP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}


@dataclass
class SymbolEntry:
    """One name visible during lowering."""

    kind: str  # 'scalar', 'sram', 'view', 'iterator', 'dram'
    value: Optional[Value] = None
    detail: str = ""       # adapter kind or scalar type name
    width: int = 32


class SymbolTable:
    """A chained mutable-variable environment used for structured mem2reg."""

    def __init__(self, parent: Optional["SymbolTable"] = None):
        self.parent = parent
        self.entries: Dict[str, SymbolEntry] = {}

    def declare(self, name: str, entry: SymbolEntry) -> None:
        self.entries[name] = entry

    def lookup(self, name: str) -> Optional[SymbolEntry]:
        table: Optional[SymbolTable] = self
        while table is not None:
            if name in table.entries:
                return table.entries[name]
            table = table.parent
        return None

    def assign(self, name: str, value: Value) -> None:
        """Rebind a scalar, updating the table that declared it."""
        table: Optional[SymbolTable] = self
        while table is not None:
            if name in table.entries:
                table.entries[name].value = value
                return
            table = table.parent
        raise LoweringError(f"assignment to undeclared variable '{name}'")

    def child(self, shadow: Sequence[str] = ()) -> "SymbolTable":
        """Create a nested scope, optionally shadowing some outer scalars.

        Shadowed names get their own entry in the child, so assignments made
        while lowering a region body do not leak into the enclosing scope;
        the region lowering merges them back explicitly (as region results or
        loop-carried values).
        """
        table = SymbolTable(parent=self)
        for name in shadow:
            entry = self.lookup(name)
            if entry is not None:
                table.declare(name, SymbolEntry(entry.kind, entry.value,
                                                entry.detail, entry.width))
        return table

    def snapshot(self, names: Sequence[str]) -> List[Value]:
        return [self.lookup(n).value for n in names]


def assigned_scalars(block: ast.Block, table: SymbolTable) -> List[str]:
    """Names assigned in ``block`` that refer to scalars declared outside it."""
    declared: Set[str] = set()
    assigned: List[str] = []

    def visit_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            declared.add(stmt.name)
        elif isinstance(stmt, (ast.SramDecl, ast.ViewDecl, ast.IteratorDecl)):
            declared.add(stmt.name)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.VarRef):
            record(stmt.target.name)
        elif isinstance(stmt, ast.IncrDecr) and isinstance(stmt.target, ast.VarRef):
            record(stmt.target.name)
        elif isinstance(stmt, ast.IfStmt):
            visit_block(stmt.then_block)
            if stmt.else_block:
                visit_block(stmt.else_block)
        elif isinstance(stmt, ast.WhileStmt):
            visit_block(stmt.body)
        elif isinstance(stmt, (ast.ForeachStmt, ast.ReplicateStmt)):
            visit_block(stmt.body)
        elif isinstance(stmt, ast.Block):
            visit_block(stmt)

    def record(name: str) -> None:
        if name in declared or name in assigned:
            return
        entry = table.lookup(name)
        if entry is not None and entry.kind == "scalar":
            assigned.append(name)

    def visit_block(blk: Optional[ast.Block]) -> None:
        if blk is None:
            return
        for stmt in blk.statements:
            visit_stmt(stmt)

    visit_block(block)
    return assigned


class FrontendLowering:
    """Lowers a checked Revet program into an IR module."""

    def __init__(self, program: ast.Program, module_name: str = "revet"):
        self.program = program
        self.module = Module(module_name)
        self.analysis = check(program)
        self._dram_widths: Dict[str, int] = {}

    def lower(self) -> Module:
        for dram in self.program.drams:
            width = dram.element.width or 32
            self._dram_widths[dram.name] = width
            revet.dram_global(self.module, dram.name, element_width=width)
        for fn in self.program.functions:
            self._lower_function(fn)
        return self.module

    # -- functions -------------------------------------------------------------

    def _lower_function(self, fn: ast.Function) -> Operation:
        arg_types = [IntType(p.type.width or 32) for p in fn.params]
        func_op = func.func(self.module, fn.name, arg_types,
                            arg_names=[p.name for p in fn.params])
        entry = func.entry_block(func_op)
        builder = Builder()
        builder.set_insertion_point_to_end(entry)
        table = SymbolTable()
        for param, value in zip(fn.params, entry.args):
            table.declare(param.name, SymbolEntry("scalar", value, param.type.name,
                                                  param.type.width or 32))
        for dram in self.program.drams:
            handle = revet.dram_ref(builder, dram.name,
                                    element_width=self._dram_widths[dram.name])
            table.declare(dram.name, SymbolEntry("dram", handle, dram.element.name,
                                                 self._dram_widths[dram.name]))
        self._lower_block(fn.body, builder, table)
        func.ret(builder)
        return func_op

    # -- statements ------------------------------------------------------------------

    def _lower_block(self, block: ast.Block, builder: Builder, table: SymbolTable) -> None:
        for stmt in block.statements:
            self._lower_stmt(stmt, builder, table)

    def _lower_stmt(self, stmt: ast.Stmt, builder: Builder, table: SymbolTable) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt, builder, table)
        elif isinstance(stmt, ast.SramDecl):
            buf = memref.alloc(builder, stmt.size, name=stmt.name)
            table.declare(stmt.name, SymbolEntry("sram", buf, "SRAM"))
        elif isinstance(stmt, ast.ViewDecl):
            self._lower_view_decl(stmt, builder, table)
        elif isinstance(stmt, ast.IteratorDecl):
            self._lower_iterator_decl(stmt, builder, table)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt, builder, table)
        elif isinstance(stmt, ast.IncrDecr):
            self._lower_incr(stmt, builder, table)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, builder, table)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt, builder, table)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt, builder, table)
        elif isinstance(stmt, ast.ForeachStmt):
            self._lower_foreach(stmt, builder, table)
        elif isinstance(stmt, ast.ReplicateStmt):
            self._lower_replicate(stmt, builder, table)
        elif isinstance(stmt, ast.PragmaStmt):
            revet.pragma(builder, stmt.name)
        elif isinstance(stmt, ast.ExitStmt):
            builder.create("revet.exit", [], [])
        elif isinstance(stmt, ast.ReturnStmt):
            pass  # main() returns nothing; results flow through DRAM stores
        elif isinstance(stmt, ast.FlushStmt):
            entry = table.lookup(stmt.iterator)
            revet.it_flush(builder, entry.value)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt, builder, table.child())
        else:  # pragma: no cover - defensive
            raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_var_decl(self, stmt: ast.VarDecl, builder: Builder, table: SymbolTable) -> None:
        width = stmt.type.width or 32
        if stmt.init is not None:
            value = self._lower_expr(stmt.init, builder, table)
        else:
            value = arith.constant(builder, 0, IntType(width if width in (8, 16, 32, 64) else 32))
        value.name = stmt.name if value.owner is not None else value.name
        table.declare(stmt.name, SymbolEntry("scalar", value, stmt.type.name, width))

    def _lower_view_decl(self, stmt: ast.ViewDecl, builder: Builder, table: SymbolTable) -> None:
        dram_entry = table.lookup(stmt.dram)
        base = self._lower_expr(stmt.base, builder, table)
        handle = revet.view_new(builder, stmt.kind, stmt.size, dram_entry.value, base,
                                element_width=dram_entry.width)
        table.declare(stmt.name, SymbolEntry("view", handle, stmt.kind, dram_entry.width))

    def _lower_iterator_decl(self, stmt: ast.IteratorDecl, builder: Builder,
                             table: SymbolTable) -> None:
        dram_entry = table.lookup(stmt.dram)
        seek = self._lower_expr(stmt.seek, builder, table)
        handle = revet.it_new(builder, stmt.kind, stmt.tile, dram_entry.value, seek,
                              element_width=dram_entry.width)
        table.declare(stmt.name, SymbolEntry("iterator", handle, stmt.kind, dram_entry.width))

    def _lower_assign(self, stmt: ast.Assign, builder: Builder, table: SymbolTable) -> None:
        value_expr = stmt.value
        if stmt.op != "=":
            # Desugar compound assignment: x += e  ->  x = x + e.
            value_expr = ast.BinaryOp(line=stmt.line, op=stmt.op[:-1],
                                      lhs=stmt.target, rhs=stmt.value)
        value = self._lower_expr(value_expr, builder, table)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            table.assign(target.name, value)
            return
        if isinstance(target, ast.IndexExpr):
            entry = table.lookup(target.base)
            index = self._lower_expr(target.index, builder, table)
            if entry.kind == "sram":
                memref.store(builder, value, entry.value, index)
            elif entry.kind == "view":
                revet.view_store(builder, entry.value, index, value)
            elif entry.kind == "dram":
                revet.dram_store(builder, entry.value, index, value,
                                 element_width=entry.width)
            else:
                raise LoweringError(f"cannot store through '{target.base}'")
            return
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            entry = table.lookup(target.operand.name)
            revet.it_put(builder, entry.value, value)
            return
        raise LoweringError("unsupported assignment target")

    def _lower_incr(self, stmt: ast.IncrDecr, builder: Builder, table: SymbolTable) -> None:
        target = stmt.target
        entry = table.lookup(target.name)
        if entry.kind == "iterator":
            revet.it_advance(builder, entry.value)
            return
        one = arith.constant(builder, abs(stmt.delta))
        op = "addi" if stmt.delta > 0 else "subi"
        new_value = arith.binary(builder, op, entry.value, one)
        new_value.name = target.name
        table.assign(target.name, new_value)

    def _lower_if(self, stmt: ast.IfStmt, builder: Builder, table: SymbolTable) -> None:
        cond = self._to_bool(self._lower_expr(stmt.cond, builder, table), builder)
        carried = assigned_scalars(stmt.then_block, table)
        if stmt.else_block is not None:
            for name in assigned_scalars(stmt.else_block, table):
                if name not in carried:
                    carried.append(name)
        result_types = [table.lookup(n).value.type for n in carried]
        if_op = scf.if_(builder, cond, result_types)

        then_builder = Builder()
        then_builder.set_insertion_point_to_end(scf.then_block(if_op))
        then_table = table.child(shadow=carried)
        self._lower_block(stmt.then_block, then_builder, then_table)
        scf.yield_(then_builder, then_table.snapshot(carried))

        else_builder = Builder()
        else_builder.set_insertion_point_to_end(scf.else_block(if_op))
        else_table = table.child(shadow=carried)
        if stmt.else_block is not None:
            self._lower_block(stmt.else_block, else_builder, else_table)
        scf.yield_(else_builder, else_table.snapshot(carried))

        for name, result in zip(carried, if_op.results):
            result.name = name
            table.assign(name, result)

    def _lower_while(self, stmt: ast.WhileStmt, builder: Builder, table: SymbolTable) -> None:
        carried = assigned_scalars(stmt.body, table)
        inits = table.snapshot(carried)
        loop = scf.while_(builder, inits)
        before, after = scf.before_block(loop), scf.after_block(loop)

        before_builder = Builder()
        before_builder.set_insertion_point_to_end(before)
        before_table = table.child()
        for name, arg in zip(carried, before.args):
            arg.name = name + "_in"
            before_table.declare(name, SymbolEntry("scalar", arg,
                                                   table.lookup(name).detail,
                                                   table.lookup(name).width))
        cond = self._to_bool(self._lower_expr(stmt.cond, before_builder, before_table),
                             before_builder)
        scf.condition(before_builder, cond, list(before.args))

        after_builder = Builder()
        after_builder.set_insertion_point_to_end(after)
        after_table = table.child()
        for name, arg in zip(carried, after.args):
            arg.name = name + "_iter"
            after_table.declare(name, SymbolEntry("scalar", arg,
                                                  table.lookup(name).detail,
                                                  table.lookup(name).width))
        self._lower_block(stmt.body, after_builder, after_table)
        scf.yield_(after_builder, after_table.snapshot(carried))

        for name, result in zip(carried, loop.results):
            result.name = name
            table.assign(name, result)

    def _lower_foreach(self, stmt: ast.ForeachStmt, builder: Builder,
                       table: SymbolTable) -> None:
        count = self._lower_expr(stmt.count, builder, table)
        step = (self._lower_expr(stmt.step, builder, table)
                if stmt.step is not None else arith.constant(builder, 1))
        fe = revet.foreach(builder, count, step, index_name=stmt.index_name)
        body_builder = Builder()
        body_builder.set_insertion_point_to_end(fe.region(0).entry)
        # Threads get a read-only view of the parent's variables; shadow any
        # assigned outer scalars so writes stay local to the thread body.
        body_table = table.child(shadow=assigned_scalars(stmt.body, table))
        index = fe.region(0).entry.args[0]
        index.name = stmt.index_name
        body_table.declare(stmt.index_name,
                           SymbolEntry("scalar", index, stmt.index_type.name,
                                       stmt.index_type.width or 32))
        self._lower_block(stmt.body, body_builder, body_table)
        revet.yield_(body_builder)

    def _lower_replicate(self, stmt: ast.ReplicateStmt, builder: Builder,
                         table: SymbolTable) -> None:
        carried = assigned_scalars(stmt.body, table)
        result_types = [table.lookup(n).value.type for n in carried]
        rep = revet.replicate(builder, stmt.factor, result_types)
        body_builder = Builder()
        body_builder.set_insertion_point_to_end(rep.region(0).entry)
        body_table = table.child(shadow=carried)
        self._lower_block(stmt.body, body_builder, body_table)
        revet.yield_(body_builder, body_table.snapshot(carried))
        for name, result in zip(carried, rep.results):
            result.name = name
            table.assign(name, result)

    # -- expressions ---------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr, builder: Builder, table: SymbolTable) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return arith.constant(builder, expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return arith.constant(builder, int(expr.value), I1)
        if isinstance(expr, ast.StringLiteral):
            raise LoweringError(
                "string literals are not directly loadable; stage them in DRAM"
            )
        if isinstance(expr, ast.VarRef):
            entry = table.lookup(expr.name)
            if entry is None:
                raise LoweringError(f"use of undeclared name '{expr.name}'")
            return entry.value
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr, builder, table)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr, builder, table)
        if isinstance(expr, ast.IndexExpr):
            return self._lower_index_read(expr, builder, table)
        if isinstance(expr, ast.TernaryExpr):
            cond = self._to_bool(self._lower_expr(expr.cond, builder, table), builder)
            a = self._lower_expr(expr.then_value, builder, table)
            b = self._lower_expr(expr.else_value, builder, table)
            return arith.select(builder, cond, a, b)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, builder, table)
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def _lower_binary(self, expr: ast.BinaryOp, builder: Builder, table: SymbolTable) -> Value:
        if expr.op in ("&&", "||"):
            lhs = self._to_bool(self._lower_expr(expr.lhs, builder, table), builder)
            rhs = self._to_bool(self._lower_expr(expr.rhs, builder, table), builder)
            name = "andi" if expr.op == "&&" else "ori"
            return arith.binary(builder, name, lhs, rhs, I1)
        lhs = self._lower_expr(expr.lhs, builder, table)
        rhs = self._lower_expr(expr.rhs, builder, table)
        if expr.op in CMP_MAP:
            return arith.cmpi(builder, CMP_MAP[expr.op], lhs, rhs)
        if expr.op in BINOP_MAP:
            return arith.binary(builder, BINOP_MAP[expr.op], lhs, rhs)
        raise LoweringError(f"unsupported binary operator '{expr.op}'")

    def _lower_unary(self, expr: ast.UnaryOp, builder: Builder, table: SymbolTable) -> Value:
        if expr.op == "*":
            entry = table.lookup(expr.operand.name)
            if entry is None or entry.kind != "iterator":
                raise LoweringError("'*' expects an iterator")
            return revet.it_deref(builder, entry.value)
        operand = self._lower_expr(expr.operand, builder, table)
        if expr.op == "-":
            zero = arith.constant(builder, 0)
            return arith.binary(builder, "subi", zero, operand)
        if expr.op == "!":
            zero = arith.constant(builder, 0)
            return arith.cmpi(builder, "eq", operand, zero)
        if expr.op == "~":
            minus_one = arith.constant(builder, -1)
            return arith.binary(builder, "xori", operand, minus_one)
        raise LoweringError(f"unsupported unary operator '{expr.op}'")

    def _lower_index_read(self, expr: ast.IndexExpr, builder: Builder,
                          table: SymbolTable) -> Value:
        entry = table.lookup(expr.base)
        index = self._lower_expr(expr.index, builder, table)
        if entry.kind == "sram":
            return memref.load(builder, entry.value, index)
        if entry.kind == "view":
            return revet.view_load(builder, entry.value, index)
        if entry.kind == "dram":
            return revet.dram_load(builder, entry.value, index, element_width=entry.width)
        raise LoweringError(f"'{expr.base}' is not readable by indexing")

    def _lower_call(self, expr: ast.CallExpr, builder: Builder, table: SymbolTable) -> Value:
        if expr.callee == "fork":
            count = self._lower_expr(expr.args[0], builder, table)
            return revet.fork(builder, count)
        if expr.callee == "peek":
            entry = table.lookup(expr.args[0].name)
            offset = self._lower_expr(expr.args[1], builder, table)
            return revet.it_peek(builder, entry.value, offset)
        if expr.callee in ("min", "max"):
            lhs = self._lower_expr(expr.args[0], builder, table)
            rhs = self._lower_expr(expr.args[1], builder, table)
            return arith.binary(builder, "minsi" if expr.callee == "min" else "maxsi",
                                lhs, rhs)
        if expr.callee == "abs":
            value = self._lower_expr(expr.args[0], builder, table)
            zero = arith.constant(builder, 0)
            neg = arith.binary(builder, "subi", zero, value)
            is_neg = arith.cmpi(builder, "slt", value, zero)
            return arith.select(builder, is_neg, neg, value)
        raise LoweringError(f"unsupported call '{expr.callee}'")

    def _to_bool(self, value: Value, builder: Builder) -> Value:
        if value.type == I1:
            return value
        zero = arith.constant(builder, 0, value.type)
        return arith.cmpi(builder, "ne", value, zero)


def lower_program(program: ast.Program, module_name: str = "revet") -> Module:
    """Lower a parsed program to an IR module."""
    return FrontendLowering(program, module_name).lower()


def compile_source_to_ir(source: str, module_name: str = "revet") -> Module:
    """Parse, check, and lower Revet source text to an IR module."""
    return lower_program(parse(source), module_name)
