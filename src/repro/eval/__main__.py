"""Command-line entry point: ``python -m repro.eval [experiment]``."""

from __future__ import annotations

import sys

from repro.eval import (
    aurochs_comparison,
    fig12_optimization_impact,
    fig13_hierarchy_removal,
    fig14_load_balancing,
    format_rows,
    table3_applications,
    table4_resources,
    table5_performance,
    table5_summary,
)

EXPERIMENTS = {
    "table3": lambda: format_rows(table3_applications()),
    "table4": lambda: format_rows(table4_resources()),
    "table5": lambda: format_rows(table5_performance()) + "\n\n"
    + str(table5_summary()),
    "fig12": lambda: format_rows(fig12_optimization_impact()),
    "fig13": lambda: format_rows(fig13_hierarchy_removal()),
    "fig14": lambda: format_rows(fig14_load_balancing()),
    "aurochs": lambda: str(aurochs_comparison()),
}


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    targets = argv or list(EXPERIMENTS)
    for target in targets:
        if target not in EXPERIMENTS:
            print(f"unknown experiment '{target}'; choose from {list(EXPERIMENTS)}")
            return 1
        print(f"== {target} ==")
        print(EXPERIMENTS[target]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
