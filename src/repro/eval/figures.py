"""Evaluation harness for the paper's figures (12, 13, 14) and the Aurochs
comparison (Section VI-B(c))."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps import REGISTRY, TABLE3_APPS
from repro.baselines.aurochs import AurochsModel
from repro.compiler import CompileOptions
from repro.core.machine import DEFAULT_MACHINE, MachineConfig
from repro.dataflow.resources import estimate_resources
from repro.eval.tables import PAPER_OUTER_PARALLELISM
from repro.sim.load_balance import LoadBalanceSimulator

#: Figure 12's optimization knobs mapped to CompileOptions field names.
FIG12_VARIANTS = {
    "default": (),
    "no_if_conv": ("if_to_select",),
    "no_buffer": ("allocator_hoisting", "bufferize_replicate"),
    "no_pack": ("subword_packing",),
}


def fig12_optimization_impact(apps: Optional[List[str]] = None,
                              machine: MachineConfig = DEFAULT_MACHINE) -> List[Dict]:
    """Figure 12: CU/MU resource increase when disabling optimization passes."""
    rows = []
    for name in apps or TABLE3_APPS:
        spec = REGISTRY.get(name)
        baseline = None
        row = {"app": name}
        for variant, disabled in FIG12_VARIANTS.items():
            options = CompileOptions().disabled(*disabled) if disabled else CompileOptions()
            program = spec.compile(options)
            breakdown = estimate_resources(
                program, app_name=name, replicate_factor=spec.replicate_factor,
                machine=machine, max_outer=PAPER_OUTER_PARALLELISM.get(name))
            total = breakdown.total
            if variant == "default":
                baseline = total
                row["cu"] = total.cu
                row["mu"] = total.mu
            else:
                row[f"{variant}_cu_x"] = round(total.cu / max(1, baseline.cu), 2)
                row[f"{variant}_mu_x"] = round(total.mu / max(1, baseline.mu), 2)
        rows.append(row)
    return rows


def fig13_hierarchy_removal(max_area: int = 6) -> List[Dict]:
    """Figure 13: murmur3 performance vs area with and without hierarchy removal.

    The three curves model the paper's variants under ideal SRAM/network/DRAM:

    * ``hier_removed``: small tiles coexist in the pipeline, so performance
      scales linearly with the outer-parallel area.
    * ``shared_init``: hierarchical barriers flush the pipeline between large
      tiles; a fixed tile load/store epilogue limits scaling, but sharing the
      initialization logic keeps area slightly lower at first.
    * ``duplicated_init``: the tile loads are duplicated per region, restoring
      most of the performance at the cost of extra area.
    """
    rows = []
    barrier_overhead = 0.35       # fraction of a tile spent flushing barriers
    duplicated_area_cost = 0.45   # extra area per region for duplicated init
    for area in range(1, max_area + 1):
        removed_perf = float(area)
        shared_perf = area / (1 + barrier_overhead * area)
        duplicated_perf = area / (1 + barrier_overhead * 0.25)
        rows.append({
            "norm_area_removed": area,
            "perf_removed": round(removed_perf, 2),
            "norm_area_shared": round(area * 0.95, 2),
            "perf_shared": round(shared_perf, 2),
            "norm_area_duplicated": round(area * (1 + duplicated_area_cost), 2),
            "perf_duplicated": round(duplicated_perf, 2),
        })
    return rows


def fig14_load_balancing(sizes: Optional[List[int]] = None,
                         regions: int = 8, slow_factor: float = 1.3) -> List[Dict]:
    """Figure 14: per-region load vs input size for the search application."""
    sizes = sizes or [10_000, 32_000, 100_000, 320_000, 1_000_000]
    simulator = LoadBalanceSimulator(regions=regions, slow_factor=slow_factor)
    rows = []
    for size in sizes:
        loads = simulator.run(size)
        slow_share = loads[0].share_percent
        fast_share = max(load.share_percent for load in loads[1:])
        balanced = simulator.run(size, hoisted=False)
        rows.append({
            "input_elements": size,
            "slow_region_%": round(slow_share, 2),
            "fast_region_%": round(fast_share, 2),
            "equal_share_%": round(100.0 / regions, 2),
            "hoisted_makespan": round(simulator.completion_time(loads), 1),
            "static_makespan": round(simulator.completion_time(balanced), 1),
        })
    return rows


def aurochs_comparison() -> Dict[str, float]:
    """Section VI-B(c): Revet's kD-tree speedup over the Aurochs implementation."""
    model = AurochsModel()
    comparison = model.comparison()
    return {
        "live_value_duplication_x": round(comparison.live_value_duplication, 2),
        "lost_node_vectorization_x": round(comparison.lost_node_vectorization, 2),
        "timeout_overhead_x": round(comparison.timeout_overhead, 2),
        "revet_speedup_x": round(model.speedup_of_revet(), 2),
        "paper_speedup_x": 11.0,
    }
