"""Evaluation harness for the paper's tables (III, IV, V).

Every function runs the *real* pipeline: compile the application, execute a
scaled-down instance on the functional executor to measure dynamic behaviour
(DRAM traffic, loop trip counts), estimate placed resources, and apply the
performance / baseline models.  Results are returned as lists of dict rows so
tests, benchmarks, and the command line can all consume them.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from repro.apps import REGISTRY, TABLE3_APPS
from repro.apps.base import AppSpec
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.core.machine import DEFAULT_MACHINE, V100_AREA_MM2, MachineConfig
from repro.dataflow.resources import estimate_resources
from repro.sim.perf_model import VRDAPerformanceModel, WorkloadProfile

#: Outer-parallelism caps taken from Table IV (the paper scales each app to
#: ~70% utilization of its critical resource; we cap at its reported values
#: so the resource mix matches the published configurations).
PAPER_OUTER_PARALLELISM = {
    "isipv4": 27, "ip2int": 30, "murmur3": 14, "hash-table": 16,
    "search": 8, "huff-dec": 9, "huff-enc": 9, "kD-tree": 5,
}

_SMALL_THREADS = 8


def _measure(spec: AppSpec, n_threads: int = _SMALL_THREADS, seed: int = 0):
    """Compile + run a small instance; return (program, executor, instance)."""
    instance = spec.generate(n_threads, seed)
    program = spec.compile()
    executor = program.run(instance.memory, profile=True, **instance.args)
    return program, executor, instance


def _profile_for(spec: AppSpec, executor, instance, n_threads: int) -> WorkloadProfile:
    iterations = sum(executor.profile.loop_iterations.values()) or 1
    return WorkloadProfile.from_run(
        instance.memory.stats,
        threads=n_threads,
        app_bytes_per_thread=spec.bytes_per_thread,
        iterations=max(1.0, iterations / n_threads) * max(1, spec.replicate_factor) /
        max(1, spec.replicate_factor),
    )


def table3_applications() -> List[Dict]:
    """Table III: application descriptions, sizes, and key features."""
    rows = []
    for name in TABLE3_APPS:
        spec = REGISTRY.get(name)
        rows.append({
            "app": name,
            "lines": len([line for line in spec.source.splitlines() if line.strip()]),
            "description": spec.description,
            "key_features": ", ".join(spec.key_features),
            "per_thread_bytes": spec.bytes_per_thread,
        })
    return rows


def table4_resources(apps: Optional[List[str]] = None,
                     machine: MachineConfig = DEFAULT_MACHINE) -> List[Dict]:
    """Table IV: per-application CU/MU/AG usage and HBM2 utilization."""
    rows = []
    model = VRDAPerformanceModel(machine)
    for name in apps or TABLE3_APPS:
        spec = REGISTRY.get(name)
        program, executor, instance = _measure(spec)
        breakdown = estimate_resources(
            program, app_name=name, replicate_factor=spec.replicate_factor,
            machine=machine, max_outer=PAPER_OUTER_PARALLELISM.get(name))
        profile = _profile_for(spec, executor, instance, _SMALL_THREADS)
        report = model.throughput(name, profile, breakdown)
        row = breakdown.as_row()
        stats = instance.memory.stats
        total_bytes = max(1, stats.dram_total_bytes)
        row["hbm2_read_%"] = round(100 * report.dram_utilization
                                   * stats.dram_read_bytes / total_bytes, 1)
        row["hbm2_write_%"] = round(100 * report.dram_utilization
                                    * stats.dram_write_bytes / total_bytes, 1)
        row["hbm2_total_%"] = round(100 * report.dram_utilization, 1)
        rows.append(row)
    return rows


def table5_performance(apps: Optional[List[str]] = None,
                       machine: MachineConfig = DEFAULT_MACHINE) -> List[Dict]:
    """Table V: Revet vs V100 vs CPU throughput plus ideal-model speedups."""
    gpu = GPUModel()
    cpu = CPUModel()
    model = VRDAPerformanceModel(machine)
    rows = []
    for name in apps or TABLE3_APPS:
        spec = REGISTRY.get(name)
        program, executor, instance = _measure(spec)
        breakdown = estimate_resources(
            program, app_name=name, replicate_factor=spec.replicate_factor,
            machine=machine, max_outer=PAPER_OUTER_PARALLELISM.get(name))
        profile = _profile_for(spec, executor, instance, _SMALL_THREADS)
        revet = model.throughput(name, profile, breakdown)
        ideal = model.ideal_speedups(name, profile, breakdown)
        gpu_gbs = gpu.throughput_gbs(spec)
        cpu_gbs = cpu.throughput_gbs(spec)
        rows.append({
            "app": name,
            "revet_gbs": round(revet.throughput_gbs, 1),
            "gpu_gbs": round(gpu_gbs, 1),
            "gpu_speedup": round(revet.throughput_gbs / gpu_gbs, 2),
            "cpu_gbs": round(cpu_gbs, 1),
            "cpu_speedup": round(revet.throughput_gbs / cpu_gbs, 2),
            "ideal_D": ideal["D"],
            "ideal_SN": ideal["SN"],
            "ideal_SND": ideal["SND"],
            "paper_revet_gbs": spec.paper_revet_gbs,
            "paper_gpu_speedup": round(spec.paper_revet_gbs / spec.paper_gpu_gbs, 2)
            if spec.paper_gpu_gbs else None,
        })
    return rows


def table5_summary(rows: Optional[List[Dict]] = None) -> Dict[str, float]:
    """Geomean speedups (the paper's 3.8x GPU / ~14x CPU headline numbers)."""
    rows = rows or table5_performance()
    gpu_geomean = statistics.geometric_mean(r["gpu_speedup"] for r in rows)
    cpu_geomean = statistics.geometric_mean(r["cpu_speedup"] for r in rows)
    area_adjusted = gpu_geomean * (V100_AREA_MM2 / DEFAULT_MACHINE.area_mm2)
    return {
        "gpu_speedup_geomean": round(gpu_geomean, 2),
        "cpu_speedup_geomean": round(cpu_geomean, 2),
        "area_adjusted_gpu_speedup": round(area_adjusted, 2),
    }


def format_rows(rows: List[Dict]) -> str:
    """Render rows as an aligned text table (used by __main__ entry points)."""
    if not rows:
        return "(no rows)"
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), max(len(str(r.get(k, ""))) for r in rows))
              for k in keys}
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys))
    return "\n".join(lines)
