"""Experiment harness: regenerates every table and figure in the evaluation."""

from repro.eval.tables import (
    format_rows,
    table3_applications,
    table4_resources,
    table5_performance,
    table5_summary,
)
from repro.eval.figures import (
    aurochs_comparison,
    fig12_optimization_impact,
    fig13_hierarchy_removal,
    fig14_load_balancing,
)

__all__ = [
    "format_rows",
    "table3_applications",
    "table4_resources",
    "table5_performance",
    "table5_summary",
    "fig12_optimization_impact",
    "fig13_hierarchy_removal",
    "fig14_load_balancing",
    "aurochs_comparison",
]
