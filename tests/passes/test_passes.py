"""Unit tests for the individual compiler passes (Figure 8 middle stages)."""

from repro.frontend import compile_source_to_ir
from repro.ir import PassManager, ops_named, verify
from repro.passes import (
    AllocatorFusionPass,
    AllocatorHoistingPass,
    BufferizeReplicatePass,
    CanonicalizePass,
    HierarchyEliminationPass,
    IfToSelectPass,
    LowerIteratorsPass,
    LowerViewsPass,
    SubwordPackingPass,
)


def lower(src: str, *passes):
    module = compile_source_to_ir(src)
    PassManager(list(passes)).run(module)
    verify(module)
    return module


class TestCanonicalize:
    def test_folds_constants_and_removes_dead_ops(self):
        src = """
        DRAM<int> out;
        void f(int a) { int x = 2 + 3; out[a] = a + x; int dead = 7 * 6; }
        """
        module = lower(src, CanonicalizePass())
        constants = [op.attrs["value"] for op in ops_named(module, "arith.constant")]
        assert 5 in constants            # 2 + 3 folded into a live constant
        assert 42 not in constants       # dead computation removed entirely
        assert not ops_named(module, "arith.muli")
        assert len(ops_named(module, "arith.addi")) == 1  # only the live add remains
        assert ops_named(module, "revet.dram_store")

    def test_division_by_zero_not_folded(self):
        src = "DRAM<int> out;\nvoid f(int a) { out[a] = 1 / 0 + a; }"
        module = lower(src, CanonicalizePass())
        assert ops_named(module, "arith.divsi")


class TestLowerViews:
    SRC = """
    DRAM<int> offsets;
    DRAM<int> lengths;
    void main(int n) {
      foreach (n) { int i =>
        ReadView<16> rv(offsets, i);
        WriteView<16> wv(lengths, i);
        wv[0] = rv[0] + 1;
      };
    }
    """

    def test_views_become_memrefs_and_bulk_transfers(self):
        module = lower(self.SRC, LowerViewsPass())
        assert not ops_named(module, "revet.view_new")
        assert not ops_named(module, "revet.view_load")
        assert len(ops_named(module, "memref.alloc")) == 2
        assert len(ops_named(module, "revet.bulk_load")) == 1    # ReadView only
        assert len(ops_named(module, "revet.bulk_store")) == 1   # WriteView flush
        assert len(ops_named(module, "memref.dealloc")) == 2


class TestLowerIterators:
    SRC = """
    DRAM<char> text;
    DRAM<char> outp;
    void main(int n) {
      foreach (n) { int i =>
        ReadIt<8> r(text, i);
        ManualWriteIt<8> w(outp, i);
        *w = *r;
        r++;
        w++;
        flush(w);
      };
    }
    """

    def test_iterators_become_state_plus_tile_buffers(self):
        module = lower(self.SRC, LowerIteratorsPass())
        assert not ops_named(module, "revet.it_new")
        assert not ops_named(module, "revet.it_deref")
        # Two iterators -> two state buffers + two tile buffers.
        assert len(ops_named(module, "memref.alloc")) == 4
        # Demand refill and flush paths are guarded by scf.if.
        assert len(ops_named(module, "scf.if")) == 2
        assert ops_named(module, "revet.bulk_load")
        assert ops_named(module, "revet.bulk_store")


class TestIfToSelect:
    def test_pure_if_becomes_select(self):
        p = IfToSelectPass()
        module = lower("void f(int a) { int x = 0; if (a > 2) { x = a; } else { x = 7; } int y = x; }",
                       p)
        assert not ops_named(module, "scf.if")
        assert ops_named(module, "arith.select")
        assert p.converted == 1

    def test_if_with_memory_is_kept(self):
        src = """
        DRAM<int> out;
        void f(int a) { if (a > 2) { out[a] = 1; } }
        """
        module = lower(src, IfToSelectPass())
        assert len(ops_named(module, "scf.if")) == 1

    def test_if_with_inner_loop_is_kept(self):
        src = "void f(int a) { int x = 0; if (a) { while (x < a) { x++; }; } int y = x; }"
        module = lower(src, IfToSelectPass())
        assert len(ops_named(module, "scf.if")) == 1


class TestHierarchyElimination:
    SRC = """
    DRAM<int> out;
    void main(int n) {
      foreach (n) { int i =>
        pragma(eliminate_hierarchy);
        out[i] = i * 2;
      };
    }
    """

    def test_annotated_foreach_becomes_fork(self):
        p = HierarchyEliminationPass()
        module = lower(self.SRC, p)
        assert p.eliminated == 1
        assert len(ops_named(module, "revet.foreach")) == 0
        assert len(ops_named(module, "revet.fork")) == 1
        assert len(ops_named(module, "revet.exit")) == 1

    def test_unannotated_foreach_untouched(self):
        src = self.SRC.replace("pragma(eliminate_hierarchy);", "")
        p = HierarchyEliminationPass()
        module = lower(src, p)
        assert p.eliminated == 0
        assert len(ops_named(module, "revet.foreach")) == 1


class TestAnnotationPasses:
    SRC = """
    DRAM<char> text;
    DRAM<int> out;
    void main(int n) {
      foreach (n) { int i =>
        int len = 0;
        int extra = i + 1;
        replicate (4) {
          ReadIt<8> it(text, i);
          while (*it) { len = len + 1; it++; };
        };
        out[i] = len + extra;
      };
    }
    """

    def _module(self):
        return lower(self.SRC, LowerIteratorsPass(), AllocatorFusionPass(),
                     AllocatorHoistingPass(), BufferizeReplicatePass(),
                     SubwordPackingPass())

    def test_allocs_in_one_block_share_a_group(self):
        module = self._module()
        allocs = ops_named(module, "memref.alloc")
        groups = {a.attrs["alloc_group"] for a in allocs}
        assert len(groups) == 1  # state + tile buffer fused in the replicate body
        assert all(a.attrs["group_size"] == 2 for a in allocs)

    def test_replicate_with_single_group_is_hoisted_and_bufferized(self):
        module = self._module()
        rep = ops_named(module, "revet.replicate")[0]
        assert rep.attrs["hoisted_allocator"] is True
        assert rep.attrs["live_around_values"] >= 1  # `extra` lives around it
        assert rep.attrs["bufferized_values"] >= 1

    def test_subword_packing_records_live_counts(self):
        module = self._module()
        loops = ops_named(module, "scf.while")
        assert loops
        assert all("subword_live_values" in loop.attrs for loop in loops)
        assert all("packed_lanes" in loop.attrs for loop in loops)
