"""Tests for the IR infrastructure: types, ops, regions, builder, verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Builder,
    I1,
    I32,
    IntType,
    MemRefType,
    Module,
    Operation,
    PassManager,
    Pass,
    print_module,
    verify,
    walk_ops,
    ops_named,
)
from repro.ir.core import DRAMType, FunctionType, ViewType, VoidType, parent_of_type
from repro.ir.dialects import arith, func, memref, revet, scf
from repro.ir.dialects.registry import is_terminator, op_info


def build_simple_func():
    """func @main(%a: i32) { %c = a + 1; return }"""
    module = Module("test")
    f = func.func(module, "main", [I32], [], arg_names=["a"])
    b = Builder()
    b.set_insertion_point_to_end(func.entry_block(f))
    one = arith.constant(b, 1)
    total = arith.addi(b, func.entry_block(f).args[0], one)
    func.ret(b)
    return module, f, total


class TestTypes:
    def test_int_widths(self):
        assert repr(IntType(8)) == "i8"
        with pytest.raises(IRError):
            IntType(7)

    def test_type_equality_and_hash(self):
        assert IntType(32) == IntType(32)
        assert IntType(32) != IntType(16)
        assert hash(MemRefType(4)) == hash(MemRefType(4))
        assert MemRefType(4) != MemRefType(8)
        assert DRAMType(IntType(8)) == DRAMType(IntType(8))
        assert ViewType("ReadIt", 64) == ViewType("ReadIt", 64)
        assert VoidType() == VoidType()

    def test_function_type_repr(self):
        t = FunctionType([I32], [I1])
        assert "i32" in repr(t) and "i1" in repr(t)


class TestOperations:
    def test_op_requires_dialect_prefix(self):
        with pytest.raises(IRError):
            Operation("addi")

    def test_results_and_uses(self):
        module, f, total = build_simple_func()
        const_op = total.owner.operands[1].owner
        assert const_op.name == "arith.constant"
        assert total.owner in const_op.result().uses
        assert const_op.result().num_uses == 1

    def test_replace_all_uses_with(self):
        module, f, total = build_simple_func()
        b = Builder()
        b.set_insertion_point_before(total.owner)
        two = arith.constant(b, 2)
        old = total.owner.operands[1]
        old.replace_all_uses_with(two)
        assert total.owner.operands[1] is two
        assert old.num_uses == 0

    def test_erase_requires_no_uses(self):
        module, f, total = build_simple_func()
        const_op = total.owner.operands[1].owner
        with pytest.raises(IRError):
            const_op.erase()
        total.owner.erase()
        const_op.erase()
        assert const_op not in func.entry_block(f).operations

    def test_clone_remaps_operands_and_regions(self):
        module = Module()
        f = func.func(module, "main", [I32], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        cond = arith.cmpi(b, "sgt", func.entry_block(f).args[0], arith.constant(b, 0))
        if_op = scf.if_(b, cond, [I32])
        tb = Builder()
        tb.set_insertion_point_to_end(scf.then_block(if_op))
        scf.yield_(tb, [arith.constant(tb, 1)])
        eb = Builder()
        eb.set_insertion_point_to_end(scf.else_block(if_op))
        scf.yield_(eb, [arith.constant(eb, 2)])
        func.ret(b)

        clone = if_op.clone({})
        assert clone.name == "scf.if"
        assert len(clone.regions) == 2
        assert clone.region(0).entry.terminator.name == "scf.yield"
        # Cloned region ops are new objects.
        assert clone.region(0).entry.operations[0] is not if_op.region(0).entry.operations[0]

    def test_walk_and_ops_named(self):
        module, f, total = build_simple_func()
        assert len(ops_named(module, "arith.constant")) == 1
        names = [op.name for op in walk_ops(module)]
        assert "func.func" in names and "arith.addi" in names

    def test_parent_of_type(self):
        module = Module()
        f = func.func(module, "main", [], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        rep = revet.replicate(b, 4)
        rb = Builder()
        rb.set_insertion_point_to_end(rep.region(0).entry)
        c = arith.constant(rb, 3)
        revet.yield_(rb)
        func.ret(b)
        assert parent_of_type(c.owner, "revet.replicate") is rep
        assert parent_of_type(c.owner, "func.func") is f
        assert parent_of_type(rep, "revet.replicate") is None


class TestBuilder:
    def test_insertion_points(self):
        module, f, total = build_simple_func()
        entry = func.entry_block(f)
        b = Builder()
        b.set_insertion_point_before(total.owner)
        marker = arith.constant(b, 42)
        assert entry.operations.index(marker.owner) == entry.operations.index(total.owner) - 1
        b.set_insertion_point_after(total.owner)
        marker2 = arith.constant(b, 43)
        assert entry.operations.index(marker2.owner) == entry.operations.index(total.owner) + 1

    def test_detached_creation(self):
        b = Builder()
        op = b.create_detached("arith.constant", [], [I32], {"value": 3})
        assert op.parent is None
        with pytest.raises(IRError):
            b.insert(op)  # no insertion block set


class TestDialectHelpers:
    def test_arith_helpers(self):
        module, f, _ = build_simple_func()
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        x = arith.constant(b, 10)
        y = arith.constant(b, 3)
        assert arith.binary(b, "muli", x, y).owner.name == "arith.muli"
        assert arith.cmpi(b, "slt", x, y).type == I1
        assert arith.select(b, arith.cmpi(b, "eq", x, y), x, y).type == I32
        widened = arith.cast(b, x, IntType(8))
        assert widened.type == IntType(8)
        assert arith.cast(b, x, IntType(32)) is x
        with pytest.raises(IRError):
            arith.binary(b, "bogus", x, y)
        with pytest.raises(IRError):
            arith.cmpi(b, "wrong", x, y)

    def test_memref_helpers(self):
        module = Module()
        f = func.func(module, "m", [], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        buf = memref.alloc(b, 16, name="tile")
        idx = arith.constant(b, 2)
        val = arith.constant(b, 7)
        memref.store(b, val, buf, idx)
        loaded = memref.load(b, buf, idx)
        memref.dealloc(b, buf)
        func.ret(b)
        assert isinstance(buf.type, MemRefType) and buf.type.size == 16
        assert loaded.type == I32
        verify(module)

    def test_scf_while_shape(self):
        module = Module()
        f = func.func(module, "w", [I32], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        init = func.entry_block(f).args[0]
        loop = scf.while_(b, [init])
        before, after = scf.before_block(loop), scf.after_block(loop)
        bb = Builder()
        bb.set_insertion_point_to_end(before)
        cond = arith.cmpi(bb, "sgt", before.args[0], arith.constant(bb, 0))
        scf.condition(bb, cond, [before.args[0]])
        ab = Builder()
        ab.set_insertion_point_to_end(after)
        dec = arith.subi(ab, after.args[0], arith.constant(ab, 1))
        scf.yield_(ab, [dec])
        func.ret(b)
        verify(module)

    def test_revet_helpers(self):
        module = Module()
        revet.dram_global(module, "input", element_width=8)
        f = func.func(module, "main", [I32], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        dram = revet.dram_ref(b, "input", element_width=8)
        it = revet.it_new(b, "ReadIt", 64, dram, func.entry_block(f).args[0])
        revet.it_deref(b, it)
        revet.it_advance(b, it)
        fe = revet.foreach(b, func.entry_block(f).args[0], arith.constant(b, 1))
        fb = Builder()
        fb.set_insertion_point_to_end(fe.region(0).entry)
        revet.yield_(fb)
        func.ret(b)
        assert isinstance(dram.type, DRAMType)
        assert isinstance(it.type, ViewType) and it.type.kind == "ReadIt"
        assert len(fe.region(0).entry.args) == 1
        verify(module)


class TestVerifier:
    def test_missing_required_attr(self):
        module = Module()
        module.append(Operation("revet.dram_global", attrs={"sym_name": "x"}))
        with pytest.raises(IRError):
            verify(module)

    def test_unregistered_op(self):
        module = Module()
        module.append(Operation("bogus.op"))
        with pytest.raises(IRError):
            verify(module)

    def test_function_must_return(self):
        module = Module()
        func.func(module, "broken", [], [])
        with pytest.raises(IRError):
            verify(module)

    def test_operand_count_enforced(self):
        module = Module()
        f = func.func(module, "m", [I32], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        a = func.entry_block(f).args[0]
        op = Operation("arith.addi", operands=[a], result_types=[I32])
        func.entry_block(f).append(op)
        func.ret(b)
        with pytest.raises(IRError):
            verify(module)

    def test_while_region_terminators_enforced(self):
        module = Module()
        f = func.func(module, "w", [I32], [])
        b = Builder()
        b.set_insertion_point_to_end(func.entry_block(f))
        scf.while_(b, [func.entry_block(f).args[0]])
        func.ret(b)
        with pytest.raises(IRError):
            verify(module)

    def test_module_lookup(self):
        module, f, _ = build_simple_func()
        assert module.function("main") is f
        with pytest.raises(IRError):
            module.function("nope")


class TestPrinterAndPassManager:
    def test_printer_output_contains_ops(self):
        module, f, _ = build_simple_func()
        text = print_module(module)
        assert "func.func" in text
        assert "arith.addi" in text
        assert "%a: i32" in text

    def test_pass_manager_runs_and_times(self):
        module, f, _ = build_simple_func()

        class CountConstants(Pass):
            name = "count-constants"

            def __init__(self):
                self.count = 0

            def run(self, mod):
                self.count = len(ops_named(mod, "arith.constant"))
                return False

        p = CountConstants()
        pm = PassManager().add(p)
        pm.run(module)
        assert p.count == 1
        assert pm.timings[0].name == "count-constants"
        assert "count-constants" in pm.describe()

    def test_registry_metadata(self):
        assert is_terminator("scf.yield")
        assert not is_terminator("arith.addi")
        assert op_info("arith.cmpi").required_attrs == ("predicate",)
        assert op_info("nope.nope") is None
