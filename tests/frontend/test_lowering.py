"""Tests for the AST -> IR front-end lowering."""

import pytest

from repro.errors import LoweringError
from repro.frontend import compile_source_to_ir
from repro.ir import ops_named, print_module, verify


def lower(src: str):
    module = compile_source_to_ir(src)
    verify(module)
    return module


class TestScalarLowering:
    def test_arithmetic_and_constants(self):
        module = lower("void f(int a) { int x = a * 2 + 1; }")
        assert len(ops_named(module, "arith.muli")) == 1
        assert len(ops_named(module, "arith.addi")) == 1
        text = print_module(module)
        assert "func.func" in text and 'sym_name = "f"' in text

    def test_compound_assignment_desugars(self):
        module = lower("void f(int a) { int x = 0; x += a; x++; }")
        assert len(ops_named(module, "arith.addi")) == 2

    def test_comparisons_and_logical_ops(self):
        module = lower("void f(int a) { int x = a > 1 && a < 5 || a == 7; }")
        assert len(ops_named(module, "arith.cmpi")) == 3
        assert len(ops_named(module, "arith.andi")) == 1
        assert len(ops_named(module, "arith.ori")) == 1

    def test_ternary_and_intrinsics(self):
        module = lower("void f(int a) { int x = a > 0 ? min(a, 3) : max(a, 5); }")
        assert len(ops_named(module, "arith.select")) == 1
        assert len(ops_named(module, "arith.minsi")) == 1
        assert len(ops_named(module, "arith.maxsi")) == 1

    def test_unary_operators(self):
        module = lower("void f(int a) { int x = -a; int y = !a; int z = ~a; }")
        assert len(ops_named(module, "arith.subi")) == 1
        assert len(ops_named(module, "arith.xori")) == 1


class TestControlFlowLowering:
    def test_if_becomes_scf_if_with_carried_values(self):
        module = lower(
            "void f(int a) { int x = 0; if (a > 2) { x = 1; } else { x = 2; } int y = x; }"
        )
        ifs = ops_named(module, "scf.if")
        assert len(ifs) == 1
        assert len(ifs[0].results) == 1  # x is carried out
        then_yield = ifs[0].region(0).entry.terminator
        assert then_yield.name == "scf.yield" and len(then_yield.operands) == 1

    def test_if_without_else_still_yields(self):
        module = lower("void f(int a) { int x = 0; if (a) { x = 5; } int y = x; }")
        if_op = ops_named(module, "scf.if")[0]
        else_yield = if_op.region(1).entry.terminator
        assert else_yield.name == "scf.yield" and len(else_yield.operands) == 1

    def test_while_becomes_scf_while_with_loop_carried_values(self):
        module = lower(
            "void f(int n) { int i = 0; int s = 0; while (i < n) { s = s + i; i++; } }"
        )
        loops = ops_named(module, "scf.while")
        assert len(loops) == 1
        loop = loops[0]
        assert len(loop.operands) == 2  # i and s are carried
        before = loop.region(0).entry
        assert before.terminator.name == "scf.condition"
        after = loop.region(1).entry
        assert after.terminator.name == "scf.yield"
        assert len(after.terminator.operands) == 2

    def test_nested_while_inside_if(self):
        module = lower(
            """
            void f(int n) {
              int x = 0;
              if (n > 0) {
                while (x < n) { x++; };
              }
            }
            """
        )
        if_op = ops_named(module, "scf.if")[0]
        assert len(ops_named(if_op, "scf.while")) == 1


class TestParallelLowering:
    def test_foreach_and_replicate(self):
        module = lower(
            """
            void f(int count) {
              foreach (count by 8) { int i =>
                int acc = 0;
                replicate (4) {
                  acc = acc + i;
                };
                int done = acc;
              };
            }
            """
        )
        fe = ops_named(module, "revet.foreach")
        assert len(fe) == 1
        assert len(fe[0].region(0).entry.args) == 1
        rep = ops_named(module, "revet.replicate")
        assert len(rep) == 1
        assert rep[0].attrs["factor"] == 4
        assert len(rep[0].results) == 1  # acc is live out

    def test_fork_and_exit(self):
        module = lower(
            """
            void f(int n) {
              foreach (n) { int i =>
                int t = fork(3);
                if (t == 0) { exit(); }
              };
            }
            """
        )
        assert len(ops_named(module, "revet.fork")) == 1
        assert len(ops_named(module, "revet.exit")) == 1

    def test_pragma_emitted(self):
        module = lower(
            "void f(int n) { foreach (n) { int i => pragma(eliminate_hierarchy); int x = i; }; }"
        )
        assert ops_named(module, "revet.pragma")[0].attrs["name"] == "eliminate_hierarchy"


class TestMemoryLowering:
    def test_dram_globals_and_refs(self):
        module = lower(
            """
            DRAM<char> input;
            DRAM<int> output;
            void main(int n) { int x = input[n]; output[n] = x; }
            """
        )
        globals_ = ops_named(module, "revet.dram_global")
        assert {g.attrs["sym_name"] for g in globals_} == {"input", "output"}
        assert globals_[0].attrs["element_width"] in (8, 32)
        assert len(ops_named(module, "revet.dram_load")) == 1
        assert len(ops_named(module, "revet.dram_store")) == 1

    def test_sram_and_views(self):
        module = lower(
            """
            DRAM<int> offsets;
            DRAM<int> lengths;
            void main(int n) {
              SRAM<256> buf;
              buf[0] = n;
              int y = buf[0];
              ReadView<64> rv(offsets, n);
              WriteView<64> wv(lengths, n);
              int v = rv[1];
              wv[1] = v;
            }
            """
        )
        assert len(ops_named(module, "memref.alloc")) == 1
        assert len(ops_named(module, "memref.load")) == 1
        assert len(ops_named(module, "memref.store")) == 1
        views = ops_named(module, "revet.view_new")
        assert {v.attrs["kind"] for v in views} == {"ReadView", "WriteView"}
        assert len(ops_named(module, "revet.view_load")) == 1
        assert len(ops_named(module, "revet.view_store")) == 1

    def test_iterators(self):
        module = lower(
            """
            DRAM<char> text;
            DRAM<char> out;
            void main(int n) {
              ReadIt<64> it(text, n);
              ManualWriteIt<16> w(out, n);
              while (*it) { *w = *it; it++; w++; };
              flush(w);
            }
            """
        )
        its = ops_named(module, "revet.it_new")
        assert {i.attrs["kind"] for i in its} == {"ReadIt", "ManualWriteIt"}
        assert len(ops_named(module, "revet.it_deref")) == 2
        assert len(ops_named(module, "revet.it_advance")) == 2
        assert len(ops_named(module, "revet.it_put")) == 1
        assert len(ops_named(module, "revet.it_flush")) == 1

    def test_strlen_figure7_lowering(self):
        module = lower(
            """
            DRAM<char> input;
            DRAM<int> offsets;
            DRAM<int> lengths;
            void main(int count) {
              foreach (count by 1024) { int outer =>
                ReadView<1024> in_view(offsets, outer);
                WriteView<1024> out_view(lengths, outer);
                foreach (1024) { int idx =>
                  pragma(eliminate_hierarchy);
                  int len = 0;
                  int off = in_view[idx];
                  replicate (4) {
                    ReadIt<64> it(input, off);
                    while (*it) { len++; it++; };
                  };
                  out_view[idx] = len;
                };
              };
            }
            """
        )
        assert len(ops_named(module, "revet.foreach")) == 2
        assert len(ops_named(module, "revet.replicate")) == 1
        assert len(ops_named(module, "scf.while")) == 1
        # len is carried through the while loop and out of the replicate.
        rep = ops_named(module, "revet.replicate")[0]
        assert len(rep.results) == 1

    def test_string_literal_rejected(self):
        with pytest.raises(LoweringError):
            compile_source_to_ir('void f(int n) { int x = "nope"; }')
