"""End-to-end compiler tests: Revet source -> dataflow graph -> execution."""

from repro.compiler import CompileOptions, compile_source
from repro.core.memory import MemorySystem


STRLEN_SOURCE = """
DRAM<char> input;
DRAM<int> offsets;
DRAM<int> lengths;

void main(int count) {
  foreach (count by 8) { int outer =>
    ReadView<8> in_view(offsets, outer);
    WriteView<8> out_view(lengths, outer);
    foreach (8) { int idx =>
      pragma(eliminate_hierarchy);
      int len = 0;
      int off = in_view[idx];
      replicate (4) {
        ReadIt<16> it(input, off);
        while (*it) {
          len++;
          it++;
        };
      };
      out_view[idx] = len;
    };
  };
}
"""


def run_strlen(options=None):
    strings = [b"hello", b"", b"a", b"dataflow threads", b"revet", b"x" * 40,
               b"compiler", b"vrda!"]
    blob = bytearray()
    offsets = []
    for s in strings:
        offsets.append(len(blob))
        blob.extend(s + b"\0")
    memory = MemorySystem()
    memory.load_bytes("input", bytes(blob))
    memory.dram_alloc("offsets", data=offsets)
    memory.dram_alloc("lengths", size=len(strings))
    program = compile_source(STRLEN_SOURCE, options=options)
    program.run(memory, count=len(strings))
    return memory.segment_data("lengths"), [len(s) for s in strings], program


class TestStrlenEndToEnd:
    def test_strlen_matches_reference(self):
        got, expected, _ = run_strlen()
        assert got == expected

    def test_strlen_without_optimizations(self):
        got, expected, _ = run_strlen(options=CompileOptions.none())
        assert got == expected

    def test_strlen_records_pragmas_and_drams(self):
        _, _, program = run_strlen(options=CompileOptions.none())
        assert program.dram_names == ["input", "offsets", "lengths"]
        # Without hierarchy elimination the pragma survives into the program.
        assert "eliminate_hierarchy" in program.pragmas
        assert program.arg_names[0] == "count"
        _, _, optimized = run_strlen()
        assert optimized.dram_names == ["input", "offsets", "lengths"]

    def test_graph_contains_expected_structure(self):
        program = compile_source(STRLEN_SOURCE)
        ops = program.graph.count_ops()
        assert ops.get("foreach", 0) >= 1          # outer tiling loop
        assert ops.get("replicate", 0) == 1
        assert ops.get("while", 0) == 1
        assert ops.get("fork", 0) >= 1             # hierarchy-eliminated inner foreach
        assert ops.get("bulk_load", 0) >= 1        # view + iterator refills
        assert ops.get("bulk_store", 0) >= 1       # WriteView flush


SIMPLE_SOURCES = {
    "sum_indices": (
        """
        DRAM<int> out;
        void main(int n) {
          foreach (n) { int i =>
            int acc = 0;
            int j = 0;
            while (j < i) {
              acc = acc + j;
              j++;
            };
            out[i] = acc;
          };
        }
        """,
        lambda n: [sum(range(i)) for i in range(n)],
    ),
    "conditional": (
        """
        DRAM<int> data;
        DRAM<int> out;
        void main(int n) {
          foreach (n) { int i =>
            int v = data[i];
            int r = 0;
            if (v % 2 == 0) { r = v * 10; } else { r = v + 1; }
            out[i] = r;
          };
        }
        """,
        None,
    ),
}


class TestSmallPrograms:
    def test_nested_while_inside_foreach(self):
        src, expected = SIMPLE_SOURCES["sum_indices"]
        memory = MemorySystem()
        memory.dram_alloc("out", size=10)
        program = compile_source(src)
        program.run(memory, n=10)
        assert memory.segment_data("out") == expected(10)

    def test_if_else_per_thread(self):
        src, _ = SIMPLE_SOURCES["conditional"]
        data = [3, 4, 7, 10, 11, 0]
        memory = MemorySystem()
        memory.dram_alloc("data", data=data)
        memory.dram_alloc("out", size=len(data))
        program = compile_source(src)
        program.run(memory, n=len(data))
        expected = [v * 10 if v % 2 == 0 else v + 1 for v in data]
        assert memory.segment_data("out") == expected

    def test_if_else_without_if_conversion(self):
        src, _ = SIMPLE_SOURCES["conditional"]
        data = [1, 2, 3, 4]
        memory = MemorySystem()
        memory.dram_alloc("data", data=data)
        memory.dram_alloc("out", size=len(data))
        program = compile_source(src, options=CompileOptions().disabled("if_to_select"))
        program.run(memory, n=len(data))
        expected = [v * 10 if v % 2 == 0 else v + 1 for v in data]
        assert memory.segment_data("out") == expected

    def test_fork_based_expansion(self):
        src = """
        DRAM<int> counts;
        DRAM<int> out;
        void main(int n) {
          foreach (n) { int i =>
            int c = counts[i];
            int child = fork(c);
            if (child != 0) { exit(); }
            out[i] = c;
          };
        }
        """
        counts = [2, 3, 1]
        memory = MemorySystem()
        memory.dram_alloc("counts", data=counts)
        memory.dram_alloc("out", size=len(counts))
        program = compile_source(src)
        program.run(memory, n=len(counts))
        assert memory.segment_data("out") == counts

    def test_write_iterator_round_trip(self):
        src = """
        DRAM<char> text;
        DRAM<char> copy;
        void main(int n) {
          foreach (n) { int i =>
            ReadIt<4> r(text, i * 8);
            ManualWriteIt<4> w(copy, i * 8);
            int j = 0;
            while (j < 8) {
              *w = *r;
              r++;
              w++;
              j++;
            };
            flush(w);
          };
        }
        """
        text = b"abcdefghABCDEFGH"
        memory = MemorySystem()
        memory.load_bytes("text", text)
        memory.dram_alloc("copy", size=len(text), element_bytes=1)
        program = compile_source(src)
        program.run(memory, n=2)
        assert memory.read_bytes("copy") == text

    def test_profile_is_collected(self):
        src, _ = SIMPLE_SOURCES["sum_indices"]
        memory = MemorySystem()
        memory.dram_alloc("out", size=4)
        program = compile_source(src)
        executor = program.run(memory, n=4, profile=True)
        assert executor.profile.total_elements() > 0
        assert any(executor.profile.loop_iterations.values())
