"""Engine behaviour: batching, response ordering, memoization, errors."""

import pytest

from repro.apps import REGISTRY
from repro.core.memory import MemorySystem
from repro.runtime.engine import Engine, EngineError, Request

SQUARE = """
DRAM<int> data;
DRAM<int> out;

void main(int n) {
  foreach (n) { int i =>
    int v = data[i];
    out[i] = v * v;
  };
}
"""


def app_request(app, **kwargs):
    kwargs.setdefault("n_threads", 2)
    return Request(app=app, **kwargs)


class TestValidation:
    def test_request_needs_exactly_one_target(self):
        with pytest.raises(EngineError):
            Request().validate()
        with pytest.raises(EngineError):
            Request(app="hash-table", source=SQUARE).validate()

    def test_unknown_app_becomes_error_response(self):
        engine = Engine()
        responses = engine.process([Request(app="no-such-app")])
        assert len(responses) == 1
        assert not responses[0].ok
        assert "no-such-app" in responses[0].error

    def test_raw_source_without_memory_is_an_error(self):
        engine = Engine()
        [response] = engine.process([Request(source=SQUARE)])
        assert not response.ok
        assert "memory" in response.error


class TestBatching:
    def test_same_app_coalesces_into_one_batch(self):
        engine = Engine()
        for _ in range(4):
            engine.submit(app_request("hash-table"))
        batches = engine.coalesce()
        assert len(batches) == 1
        assert len(batches[0]) == 4

    def test_batches_split_by_program_and_backend(self):
        engine = Engine()
        engine.submit(app_request("hash-table"))
        engine.submit(app_request("search"))
        engine.submit(app_request("hash-table", backend="cpu"))
        batches = engine.coalesce()
        assert len(batches) == 3

    def test_max_batch_size_splits_batches(self):
        engine = Engine(max_batch_size=2)
        for _ in range(5):
            engine.submit(app_request("hash-table"))
        sizes = [len(b) for b in engine.coalesce()]
        assert sizes == [2, 2, 1]

    def test_responses_keep_submission_order(self):
        # Interleave apps and backends so coalescing reorders execution,
        # then check the engine restores client order.
        engine = Engine()
        pattern = ["hash-table", "search", "hash-table", "search",
                   "hash-table"]
        backends = ["vrda", "vrda", "cpu", "vrda", "vrda"]
        requests = [app_request(app, backend=backend, seed=i)
                    for i, (app, backend) in enumerate(zip(pattern, backends))]
        responses = engine.process(requests)
        assert [r.request_id for r in responses] == [0, 1, 2, 3, 4]
        assert [r.app for r in responses] == pattern
        assert [r.backend for r in responses] == backends
        # The interleaved hash-table vrda requests shared one batch.
        assert responses[0].batch_id == responses[4].batch_id
        assert responses[0].batch_id != responses[1].batch_id


class TestExecution:
    def test_functional_response_checks_reference(self):
        engine = Engine()
        [response] = engine.process([app_request("hash-table")])
        assert response.ok
        assert response.correct is True
        assert response.outputs
        assert response.modeled_runtime_s > 0
        assert response.report is not None

    def test_program_cache_amortizes_across_requests(self):
        engine = Engine()
        responses = engine.process([app_request("hash-table", seed=s)
                                    for s in range(3)])
        assert engine.program_cache_stats.misses == 1
        assert engine.program_cache_stats.hits == 2
        assert [r.program_cache_hit for r in responses] == [False, False, False]
        # A second flush of the same app is a true cache hit.
        [response] = engine.process([app_request("hash-table", seed=9)])
        assert response.program_cache_hit is True

    def test_result_cache_memoizes_identical_requests(self):
        engine = Engine()
        first = engine.process([app_request("hash-table", seed=1)])[0]
        second = engine.process([app_request("hash-table", seed=1)])[0]
        third = engine.process([app_request("hash-table", seed=2)])[0]
        assert not first.result_cache_hit
        assert second.result_cache_hit
        assert second.outputs == first.outputs
        assert second.request_id != first.request_id
        assert not third.result_cache_hit

    def test_result_cache_hits_are_isolated_from_client_mutation(self):
        engine = Engine()
        first = engine.process([app_request("hash-table", seed=1)])[0]
        first.outputs.clear()  # a rude client mutates its response
        second = engine.process([app_request("hash-table", seed=1)])[0]
        assert second.result_cache_hit
        assert second.outputs  # served from an independent copy
        second.outputs[0] ^= 1
        third = engine.process([app_request("hash-table", seed=1)])[0]
        assert third.outputs != second.outputs

    def test_generated_app_requests_reject_custom_args(self):
        with pytest.raises(EngineError):
            Request(app="hash-table", args={"count": 4}).validate()

    def test_result_cache_can_be_disabled(self):
        engine = Engine(result_cache_capacity=0)
        engine.process([app_request("hash-table", seed=1)])
        [again] = engine.process([app_request("hash-table", seed=1)])
        assert not again.result_cache_hit

    def test_raw_source_request_with_memory(self):
        memory = MemorySystem()
        memory.dram_alloc("data", data=[1, 2, 3])
        memory.dram_alloc("out", size=3)
        engine = Engine()
        [response] = engine.process(
            [Request(source=SQUARE, memory=memory, args={"n": 3})])
        assert response.ok
        assert memory.segment_data("out") == [1, 4, 9]
        # External state is never memoized.
        assert engine.result_cache_stats.lookups == 0

    def test_user_memory_requests_bypass_result_cache(self):
        spec = REGISTRY.get("hash-table")
        engine = Engine()
        for _ in range(2):
            instance = spec.make_instance(2, seed=3)
            [response] = engine.process(
                [Request(app="hash-table", memory=instance.memory,
                         args=instance.args, n_threads=2)])
            assert response.ok
            assert not response.result_cache_hit

    def test_backend_counts_accumulate(self):
        engine = Engine()
        engine.process([app_request("hash-table"),
                        app_request("hash-table", backend="cpu"),
                        app_request("hash-table", backend="gpu")])
        assert engine.backend_counts == {"vrda": 1, "cpu": 1, "gpu": 1}


class TestTraceGeneration:
    def test_overrides_do_not_mutate_the_config(self):
        from repro.runtime import TraceConfig, synthetic_trace

        config = TraceConfig(size=10)
        trace = synthetic_trace(config, size=5)
        assert len(trace) == 5
        assert config.size == 10
        assert len(synthetic_trace(config)) == 10

    def test_unknown_override_rejected(self):
        from repro.runtime import synthetic_trace

        with pytest.raises(ValueError):
            synthetic_trace(bogus=1)

    def test_unknown_app_rejected(self):
        from repro.runtime import synthetic_trace

        with pytest.raises(ValueError):
            synthetic_trace(apps=["not-an-app"])


class TestServableRegistry:
    def test_all_table3_apps_are_servable(self):
        from repro.apps import TABLE3_APPS

        servable = REGISTRY.servable_names()
        for name in TABLE3_APPS + ["strlen"]:
            assert name in servable

    def test_get_servable_rejects_unknown(self):
        with pytest.raises(KeyError):
            REGISTRY.get_servable("nope")


class TestIntraBatchFanOut:
    """Thread fan-out inside a batch must be invisible to clients."""

    def _trace(self):
        from repro.runtime.trace import TraceConfig, synthetic_trace

        return synthetic_trace(TraceConfig(
            size=60,
            apps=["hash-table", "search", "murmur3"],
            backend_mix={"vrda": 0.8, "cpu": 0.1, "gpu": 0.05, "aurochs": 0.05},
            distinct_shapes=3,
            n_threads=2,
            seed=11,
        ))

    def test_fanout_is_deterministic(self):
        """workers=1 and workers=4 give byte-identical ordered responses and
        identical cache stats (the wire forms compare whole trees)."""
        results = {}
        for workers in (1, 4):
            engine = Engine(intra_batch_workers=workers)
            responses = engine.process(self._trace())
            results[workers] = (
                [r.to_dict() for r in responses],
                engine.program_cache_stats.to_dict(),
                engine.result_cache_stats.to_dict(),
                dict(engine.backend_counts),
            )
        assert results[1] == results[4]

    def test_duplicate_requests_share_one_execution(self):
        """Duplicates of one request inside a batch replay the first result
        at any fan-out, exactly like sequential execution."""
        for workers in (1, 4):
            engine = Engine(intra_batch_workers=workers)
            responses = engine.process(
                [app_request("hash-table", seed=5) for _ in range(6)])
            assert [r.result_cache_hit for r in responses] == (
                [False] + [True] * 5)
            assert len({tuple(r.outputs) for r in responses}) == 1
            stats = engine.result_cache_stats
            assert (stats.hits, stats.misses) == (5, 1)

    def test_fanout_preserves_error_responses(self):
        engine = Engine(intra_batch_workers=4)
        requests = [app_request("hash-table"), Request(app="no-such-app"),
                    app_request("search")]
        responses = engine.process(requests)
        assert [r.ok for r in responses] == [True, False, True]
        assert "no-such-app" in responses[1].error

    def test_stats_row_surfaces_fanout(self):
        assert Engine(intra_batch_workers=3).stats_row()[
            "intra_batch_workers"] == 3
        assert Engine().stats_row()["intra_batch_workers"] == 1

    def test_staged_memory_requests_stay_serial(self):
        """Entries sharing one client-staged MemorySystem never race: they
        are excluded from the thread fan-out."""
        memory = MemorySystem()
        memory.dram_alloc("data", data=[1, 2, 3])
        memory.dram_alloc("out", size=3)
        engine = Engine(intra_batch_workers=4)
        responses = engine.process(
            [Request(source=SQUARE, memory=memory, args={"n": 3})
             for _ in range(4)])
        assert all(r.ok for r in responses)
        assert memory.segment_data("out") == [1, 4, 9]
