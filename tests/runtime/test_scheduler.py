"""Shard scheduler: policy behaviour and equivalence with Figure 14."""

import pytest

from repro.runtime.engine import Response
from repro.runtime.scheduler import ShardScheduler
from repro.sim.load_balance import LoadBalanceSimulator
from repro.sim.policies import (
    POLICIES,
    make_policy,
    run_admission,
)


class TestPolicies:
    def test_registry_names(self):
        assert set(POLICIES) == {"round-robin", "least-loaded",
                                 "hoisted-buffer", "cache-affinity"}
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_round_robin_ignores_load(self):
        result = run_admission([1.0] * 9, [5.0, 1.0, 1.0], [2, 2, 2],
                               "round-robin")
        assert result.counts == [3, 3, 3]
        assert result.assignments[:3] == [0, 1, 2]

    def test_static_round_robin_scales_to_large_traces(self):
        # Feedback-free policies bypass the event heap: a million-task
        # static sweep must stay fast and O(workers) in memory.
        import time

        started = time.perf_counter()
        result = run_admission([1.0] * 1_000_000, [1.3] + [1.0] * 7, [8] * 8,
                               "round-robin")
        assert time.perf_counter() - started < 5.0
        assert result.counts == [125_000] * 8

    def test_least_loaded_prefers_fast_workers(self):
        result = run_admission([1.0] * 90, [3.0, 1.0, 1.0], [4, 4, 4],
                               "least-loaded")
        assert result.counts[0] < result.counts[1]
        assert result.counts[0] < result.counts[2]

    def test_hoisted_buffer_tracks_throughput(self):
        result = run_admission([1.0] * 10_000, [2.0, 1.0], [8, 8],
                               "hoisted-buffer")
        share_slow = result.counts[0] / sum(result.counts)
        # Twice-as-slow worker converges to ~1/3 of the work.
        assert share_slow == pytest.approx(1 / 3, abs=0.02)


class TestSchedulerFairness:
    def test_hoisted_buffer_matches_load_balance_simulator(self):
        """The runtime scheduler and the Figure 14 simulator share one
        admission loop, so their shares agree within 1% (exactly, in fact)."""
        regions, buffers, total = 8, 64, 100_000
        slow_factor = 1.3
        simulator = LoadBalanceSimulator(regions=regions, buffers=buffers,
                                         slow_factor=slow_factor)
        expected = simulator.run(total)

        scales = [slow_factor if w == 0 else 1.0 for w in range(regions)]
        scheduler = ShardScheduler(workers=regions,
                                   buffers_per_worker=buffers // regions,
                                   policy="hoisted-buffer",
                                   worker_scales=scales)
        report = scheduler.dispatch([1.0] * total)

        assert report.total_tasks == total
        for load, worker in zip(expected, report.workers):
            assert worker.share_percent == pytest.approx(
                load.share_percent, abs=1.0)

    def test_static_round_robin_matches_simulator_static_mode(self):
        simulator = LoadBalanceSimulator(regions=4, slow_factor=2.0)
        expected = simulator.run(1000, hoisted=False)
        scheduler = ShardScheduler(workers=4, policy="round-robin",
                                   worker_scales=[2.0, 1.0, 1.0, 1.0])
        report = scheduler.dispatch([1.0] * 1000)
        for load, worker in zip(expected, report.workers):
            assert worker.tasks == load.threads

    def test_least_loaded_beats_round_robin_makespan(self):
        scales = [2.0, 1.0, 1.0, 1.0]
        costs = [1.0] * 4000
        balanced = ShardScheduler(workers=4, policy="least-loaded",
                                  worker_scales=scales).dispatch(costs)
        static = ShardScheduler(workers=4, policy="round-robin",
                                worker_scales=scales).dispatch(costs)
        assert balanced.makespan_s < static.makespan_s
        assert balanced.imbalance() < static.imbalance()


class TestSchedulerAPI:
    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            ShardScheduler(workers=0)
        with pytest.raises(ValueError):
            ShardScheduler(workers=2, worker_scales=[1.0])

    def test_dispatch_responses_uses_modeled_cost(self):
        responses = [Response(request_id=i, app="x", backend="vrda", ok=True,
                              modeled_runtime_s=cost)
                     for i, cost in enumerate([0.5, 0.25, 0.25])]
        report = ShardScheduler(workers=2, policy="least-loaded")\
            .dispatch_responses(responses)
        assert report.total_tasks == 3
        assert report.makespan_s == pytest.approx(0.5)
        assert len(report.assignments) == 3

    def test_empty_dispatch(self):
        report = ShardScheduler(workers=2).dispatch([])
        assert report.total_tasks == 0
        assert report.makespan_s == 0.0
        assert report.imbalance() == 1.0


class TestMeasuredRates:
    """Measured service rates -> relative scales -> skewed dispatch."""

    def test_estimator_ewma(self):
        from repro.sim.policies import ServiceRateEstimator

        est = ServiceRateEstimator(alpha=0.5)
        assert est.rate == 0.0
        assert est.observe(10, 1.0) == pytest.approx(10.0)   # first sample
        assert est.observe(20, 1.0) == pytest.approx(15.0)   # 0.5*20 + 0.5*10
        # Degenerate measurements leave the estimate untouched.
        assert est.observe(0, 1.0) == pytest.approx(15.0)
        assert est.observe(10, 0.0) == pytest.approx(15.0)

    def test_scales_from_rates(self):
        from repro.sim.policies import scales_from_rates

        assert scales_from_rates([100.0, 50.0, 25.0]) == \
            pytest.approx([1.0, 2.0, 4.0])
        # Unmeasured workers fall back to the unit scale.
        assert scales_from_rates([0.0, 0.0]) == [1.0, 1.0]
        assert scales_from_rates([200.0, 0.0]) == pytest.approx([1.0, 1.0])
        assert scales_from_rates([]) == []

    def test_set_worker_scales(self):
        scheduler = ShardScheduler(workers=2, policy="hoisted-buffer",
                                   buffers_per_worker=1)
        even = scheduler.dispatch([1.0] * 40)
        scheduler.set_worker_scales([1.0, 4.0])
        skewed = scheduler.dispatch([1.0] * 40)
        assert even.workers[1].tasks == 20
        # The 4x-slower worker now receives a fraction of the tasks.
        assert skewed.workers[1].tasks < even.workers[1].tasks
        assert skewed.workers[1].scale == 4.0

    def test_set_worker_scales_validates_length(self):
        scheduler = ShardScheduler(workers=2)
        with pytest.raises(ValueError):
            scheduler.set_worker_scales([1.0])
