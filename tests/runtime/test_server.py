"""Socket server + client: protocol round-trips over a real TCP connection."""

import json
import socket
import threading
import time

import pytest

from repro.runtime.client import ClientError, RuntimeClient
from repro.runtime.engine import EngineError, Request
from repro.runtime.pool import WorkerPool
from repro.runtime.server import PROTOCOL_VERSION, RuntimeServer


@pytest.fixture()
def server():
    pool = WorkerPool(workers=2, mode="inline", policy="cache-affinity")
    with pool:
        instance = RuntimeServer(("127.0.0.1", 0), pool)
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            yield instance
        finally:
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=10)


def connect(server):
    host, port = server.server_address[:2]
    return RuntimeClient(host, port, timeout=30.0)


class TestWireFormat:
    def test_request_round_trips(self):
        request = Request(app="strlen", n_threads=4, seed=3, backend="cpu")
        assert Request.from_dict(request.to_dict()) == request

    def test_unknown_fields_rejected(self):
        with pytest.raises(EngineError):
            Request.from_dict({"app": "strlen", "bogus": 1})

    def test_staged_memory_is_not_serializable(self):
        from repro.core.memory import MemorySystem

        request = Request(source="void main() {}", memory=MemorySystem())
        with pytest.raises(EngineError):
            request.to_dict()


class TestProtocol:
    def test_ping(self, server):
        with connect(server) as client:
            reply = client.ping()
        assert reply == {"ok": True, "op": "ping", "version": PROTOCOL_VERSION}

    def test_single_request(self, server):
        with connect(server) as client:
            reply = client.request(app="search", n_threads=2, seed=0)
        assert reply["ok"] and reply["correct"]
        assert reply["backend"] == "vrda"
        assert reply["outputs"] is not None

    def test_bare_request_object_defaults_to_request_op(self, server):
        with connect(server) as client:
            reply = client.roundtrip({"app": "search", "n_threads": 2})
        assert reply["ok"]

    def test_batch_preserves_order_and_isolates_bad_payloads(self, server):
        with connect(server) as client:
            replies = client.batch([
                {"app": "search", "n_threads": 2},
                {"app": "no-such-app"},
                {"bogus-field": 1},
                {"app": "murmur3", "n_threads": 2, "backend": "gpu"},
            ])
        assert [r.get("ok") for r in replies] == [True, False, False, True]
        assert "no-such-app" in replies[1]["error"]
        assert "bogus-field" in replies[2]["error"]

    def test_stats_reports_pool_state(self, server):
        with connect(server) as client:
            client.batch([{"app": "search", "n_threads": 2}] * 4)
            stats = client.stats()
        assert stats["ok"] and stats["served"] == 4
        assert stats["pool"]["policy"] == "cache-affinity"
        assert len(stats["pool"]["workers"]) == 2

    def test_metrics_op_returns_prometheus_text(self, server):
        with connect(server) as client:
            client.batch([{"app": "search", "n_threads": 2}] * 3)
            reply = client.roundtrip({"op": "metrics"})
        assert reply["ok"] and reply["op"] == "metrics"
        assert reply["content_type"].startswith("text/plain; version=0.0.4")
        assert "# TYPE engine_requests_total counter" in reply["text"]
        assert "pool_flushes_total" in reply["text"]

    def test_slow_op_returns_slowest_requests(self, server):
        with connect(server) as client:
            client.batch([{"app": "search", "n_threads": 2}] * 3)
            reply = client.roundtrip({"op": "slow"})
        assert reply["ok"] and reply["op"] == "slow"
        assert reply["recorded"] >= 1
        assert reply["slowest"][0]["endpoint"] == "batch"

    def test_traced_request_carries_span(self, server):
        with connect(server) as client:
            traced = client.request(app="search", n_threads=2, trace=True)
            plain = client.request(app="search", n_threads=2)
            local = client.local_stats()
        assert traced["ok"] and traced["trace"]["trace_id"]
        assert traced["trace"]["endpoint"] == "request"
        assert "trace" not in plain
        assert local["roundtrips"] >= 2
        assert local["latency"]["count"] == local["roundtrips"]

    def test_stats_reply_includes_client_section(self, server):
        with connect(server) as client:
            client.batch([{"app": "search", "n_threads": 2}] * 2)
            stats = client.stats()
        assert stats["client"]["roundtrips"] >= 1
        assert stats["client"]["sheds_429"] == 0

    def test_malformed_lines_get_error_envelopes(self, server):
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30.0) as raw:
            handle = raw.makefile("rwb")
            handle.write(b"this is not json\n[1, 2]\n")
            handle.flush()
            first = json.loads(handle.readline())
            second = json.loads(handle.readline())
        assert not first["ok"] and "bad JSON" in first["error"]
        assert not second["ok"] and "JSON object" in second["error"]

    def test_unknown_op_rejected(self, server):
        with connect(server) as client:
            reply = client.roundtrip({"op": "dance"})
        assert not reply["ok"] and "unknown op" in reply["error"]

    def test_two_connections_share_one_pool(self, server):
        with connect(server) as first, connect(server) as second:
            first.batch([{"app": "search", "n_threads": 2}] * 2)
            second.batch([{"app": "search", "n_threads": 2}] * 2)
            stats = second.stats()
        assert stats["served"] == 4

    def test_pool_failure_gets_error_envelope_and_stops_server(self):
        # max_worker_restarts=0 turns off self-healing, so one killed worker
        # is an unrecoverable pool death — the shutdown path under test.
        pool = WorkerPool(workers=2, mode="process", max_worker_restarts=0)
        with pool:
            instance = RuntimeServer(("127.0.0.1", 0), pool)
            thread = threading.Thread(target=instance.serve_forever, daemon=True)
            thread.start()
            try:
                with connect(instance) as client:
                    assert client.request(app="search", n_threads=2)["ok"]
                    pool._workers[0].process.kill()
                    pool._workers[0].process.join()
                    replies = [
                        client.request(app="search", n_threads=2, seed=s)
                        for s in range(2)
                    ]
                # Every request of the failing flush is answered, not dropped,
                # and the accept loop exits so a supervisor can restart us.
                assert any("worker pool failed" in (r.get("error") or "")
                           for r in replies)
                thread.join(timeout=10)
                assert not thread.is_alive()
            finally:
                instance.shutdown()
                instance.server_close()
                thread.join(timeout=10)

    def test_client_error_on_closed_server(self, server):
        host, port = server.server_address[:2]
        server.shutdown()
        server.server_close()
        with pytest.raises(ClientError):
            RuntimeClient(host, port, timeout=5.0, connect_timeout=5.0).ping()


class TestConnectionTimeouts:
    def test_hung_client_is_reaped_and_leaks_no_handler_thread(self):
        """A client that connects and never writes must not pin a thread."""
        pool = WorkerPool(workers=1, mode="inline")
        with pool:
            instance = RuntimeServer(("127.0.0.1", 0), pool, conn_timeout=0.3)
            thread = threading.Thread(target=instance.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = instance.server_address[:2]
                baseline = threading.active_count()
                hung = socket.create_connection((host, port), timeout=10.0)
                try:
                    hung.settimeout(5.0)
                    # The server reaps us after conn_timeout: EOF, no reply.
                    assert hung.recv(1) == b""
                finally:
                    hung.close()
                deadline = time.time() + 5.0
                while threading.active_count() > baseline and time.time() < deadline:
                    time.sleep(0.02)
                assert threading.active_count() <= baseline
                # The server still serves fresh connections afterwards.
                with RuntimeClient(host, port, timeout=30.0) as client:
                    assert client.ping()["ok"]
            finally:
                instance.shutdown()
                instance.server_close()
                thread.join(timeout=10)

    def test_half_written_line_is_also_reaped(self):
        pool = WorkerPool(workers=1, mode="inline")
        with pool:
            instance = RuntimeServer(("127.0.0.1", 0), pool, conn_timeout=0.3)
            thread = threading.Thread(target=instance.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = instance.server_address[:2]
                hung = socket.create_connection((host, port), timeout=10.0)
                try:
                    hung.sendall(b'{"op": "ping"')  # no newline, ever
                    hung.settimeout(5.0)
                    assert hung.recv(1) == b""
                finally:
                    hung.close()
            finally:
                instance.shutdown()
                instance.server_close()
                thread.join(timeout=10)


class TestBackpressure:
    def make_server(self, controller):
        from repro.runtime.gateway.admission import PoolService

        pool = WorkerPool(workers=2, mode="inline")
        service = PoolService(pool, controller)
        instance = RuntimeServer(("127.0.0.1", 0), service=service)
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        return pool, instance, thread

    def teardown_server(self, pool, instance, thread):
        instance.shutdown()
        instance.server_close()
        thread.join(timeout=10)
        pool.close()

    def test_shed_single_request_gets_429_envelope(self):
        from repro.runtime.gateway.admission import AdmissionController

        controller = AdmissionController(max_inflight=0)
        pool, instance, thread = self.make_server(controller)
        try:
            with connect(instance) as client:
                reply = client.request(app="search", n_threads=2)
        finally:
            self.teardown_server(pool, instance, thread)
        assert not reply["ok"]
        assert reply["code"] == 429
        assert reply["retry_after_s"] > 0

    def test_shed_batch_gets_top_level_429_and_client_raises(self):
        from repro.runtime.client import OverloadedError
        from repro.runtime.gateway.admission import AdmissionController

        controller = AdmissionController(max_inflight=0)
        pool, instance, thread = self.make_server(controller)
        try:
            with connect(instance) as client:
                with pytest.raises(OverloadedError) as excinfo:
                    client.batch([{"app": "search", "n_threads": 2}] * 3)
        finally:
            self.teardown_server(pool, instance, thread)
        assert excinfo.value.retry_after_s > 0

    def test_client_backoff_honors_retry_after_and_recovers(self):
        """Retries sleep the server's hint; succeed once capacity frees."""
        from repro.runtime.gateway.admission import AdmissionController

        controller = AdmissionController(max_inflight=1)
        assert controller.try_acquire(1).admitted  # budget fully occupied
        pool, instance, thread = self.make_server(controller)
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            controller.release(1)  # capacity opens up before the retry

        try:
            host, port = instance.server_address[:2]
            with RuntimeClient(
                host, port, timeout=30.0,
                max_retries_429=3, sleep=fake_sleep,
            ) as client:
                reply = client.request(app="search", n_threads=2)
        finally:
            self.teardown_server(pool, instance, thread)
        assert reply["ok"]
        assert len(sleeps) == 1  # one shed round-trip, then success
        assert sleeps[0] > 0

    def test_never_admittable_batch_fails_fast_without_retrying(self):
        """A batch larger than the whole budget is not worth re-sending."""
        from repro.runtime.client import OverloadedError
        from repro.runtime.gateway.admission import AdmissionController

        controller = AdmissionController(max_inflight=2)
        pool, instance, thread = self.make_server(controller)
        sleeps = []
        try:
            host, port = instance.server_address[:2]
            with RuntimeClient(
                host, port, timeout=30.0,
                max_retries_429=5, sleep=sleeps.append,
            ) as client:
                with pytest.raises(OverloadedError):
                    client.batch([{"app": "search", "n_threads": 2}] * 5)
        finally:
            self.teardown_server(pool, instance, thread)
        assert sleeps == []  # retrying 5 > 2 can never succeed: no backoff
        assert controller.snapshot().rejected == 5  # one attempt, not six

    def test_retry_budget_exhaustion_surfaces_the_envelope(self):
        from repro.runtime.gateway.admission import AdmissionController

        controller = AdmissionController(max_inflight=1)
        assert controller.try_acquire(1).admitted  # held for the whole test
        pool, instance, thread = self.make_server(controller)
        sleeps = []
        try:
            host, port = instance.server_address[:2]
            with RuntimeClient(
                host, port, timeout=30.0,
                max_retries_429=2, sleep=sleeps.append,
            ) as client:
                reply = client.request(app="search", n_threads=2)
        finally:
            self.teardown_server(pool, instance, thread)
        assert reply["code"] == 429
        assert len(sleeps) == 2  # bounded: exactly the retry budget
        assert controller.snapshot().rejected == 3
