"""Worker pool: dispatch, determinism vs the single engine, process mode."""

import json

import pytest

from repro.runtime.engine import Engine, Request
from repro.runtime.pool import PoolError, WorkerPool
from repro.runtime.trace import TraceConfig, synthetic_trace

SMALL_TRACE = TraceConfig(
    size=24,
    apps=["hash-table", "search", "murmur3"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=5,
)

#: The fields that must be bit-identical however the trace is executed.
#: Cache-hit flags are excluded by design: per-worker caches legitimately
#: hit/miss differently from one shared cache.
PAYLOAD_FIELDS = ("request_id", "app", "backend", "ok", "error", "outputs",
                  "correct", "modeled_gbs", "modeled_runtime_s", "batch_id")


def payload(response):
    return tuple(getattr(response, name) for name in PAYLOAD_FIELDS)


class TestConstruction:
    def test_rejects_bad_configuration(self):
        with pytest.raises(PoolError):
            WorkerPool(workers=0)
        with pytest.raises(PoolError):
            WorkerPool(mode="threads")

    def test_flush_after_close_rejected(self):
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(PoolError):
            pool.flush()


class TestInlinePool:
    def test_matches_single_engine_bit_for_bit(self):
        single = Engine().process(synthetic_trace(SMALL_TRACE))
        with WorkerPool(workers=3, mode="inline") as pool:
            report = pool.process(synthetic_trace(SMALL_TRACE))
        assert [payload(r) for r in report.responses] == \
            [payload(r) for r in single]

    def test_responses_sorted_by_submission_order(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            report = pool.process(synthetic_trace(SMALL_TRACE))
        ids = [r.request_id for r in report.responses]
        assert ids == sorted(ids)

    def test_bad_requests_become_error_responses(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            report = pool.process([
                Request(app="hash-table", n_threads=2),
                Request(app="no-such-app"),
                Request(app="search", n_threads=2),
            ])
        assert [r.ok for r in report.responses] == [True, False, True]
        assert "no-such-app" in report.responses[1].error

    def test_mixed_backends_flow_through(self):
        trace = TraceConfig(size=20, apps=["search", "murmur3"],
                            distinct_shapes=1, n_threads=2, seed=2)
        with WorkerPool(workers=2, mode="inline") as pool:
            report = pool.process(synthetic_trace(trace))
        assert all(r.ok for r in report.responses)
        assert {r.backend for r in report.responses} > {"vrda"}

    def test_residency_feedback_keeps_programs_sticky(self):
        with WorkerPool(workers=2, mode="inline",
                        policy="cache-affinity") as pool:
            first = pool.process(synthetic_trace(SMALL_TRACE))
            second = pool.process(synthetic_trace(SMALL_TRACE))
        # Round two is dispatched against seeded residency: every batch of a
        # program lands on the worker that already compiled it, so the pool
        # performs zero new compiles.
        new_misses = (second.aggregate_program_stats().misses
                      - first.aggregate_program_stats().misses)
        assert new_misses == 0
        assert all(s.resident_keys for s in second.workers
                   if s.requests > 0)

    def test_request_ids_stay_monotonic_across_flushes(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            first = pool.process(synthetic_trace(SMALL_TRACE))
            second = pool.process(synthetic_trace(SMALL_TRACE))
        assert first.responses[-1].request_id < second.responses[0].request_id

    def test_reports_are_json_serializable(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            report = pool.process(synthetic_trace(SMALL_TRACE))
            stats = pool.stats_row()
        json.dumps(report.to_dict())
        json.dumps(stats)
        assert report.to_dict()["ok"] == SMALL_TRACE.size
        assert len(stats["workers"]) == 2


class TestProcessPool:
    def test_matches_inline_pool_and_single_engine(self):
        trace = TraceConfig(size=12, apps=["hash-table", "search"],
                            backend_mix={"vrda": 1.0}, distinct_shapes=2,
                            n_threads=2, seed=9)
        single = Engine().process(synthetic_trace(trace))
        with WorkerPool(workers=2, mode="process") as pool:
            processed = pool.process(synthetic_trace(trace))
        with WorkerPool(workers=2, mode="inline") as pool:
            inline = pool.process(synthetic_trace(trace))
        assert [payload(r) for r in processed.responses] == \
            [payload(r) for r in inline.responses] == \
            [payload(r) for r in single]
        assert all(r.correct for r in processed.responses)

    def test_externally_killed_worker_is_respawned_and_masked(self):
        trace = TraceConfig(size=4, apps=["search"],
                            backend_mix={"vrda": 1.0}, distinct_shapes=1,
                            n_threads=2, seed=1)
        with WorkerPool(workers=2, mode="process") as control:
            control.process(synthetic_trace(trace))
            fault_free = control.process(synthetic_trace(trace))
        pool = WorkerPool(workers=2, mode="process")
        try:
            pool.process(synthetic_trace(trace))
            pool._workers[0].process.kill()
            pool._workers[0].process.join()
            # The same trace again: the dead worker is detected, respawned,
            # and its batches replayed — responses match the fault-free run.
            report = pool.process(synthetic_trace(trace))
            assert [payload(r) for r in report.responses] == \
                [payload(r) for r in fault_free.responses]
            assert report.worker_restarts == 1
            assert report.replayed_batches >= 1
            assert pool.worker_restarts == 1
        finally:
            pool.close()

    def test_worker_loss_is_fatal_when_self_healing_is_disabled(self):
        trace = TraceConfig(size=4, apps=["search"],
                            backend_mix={"vrda": 1.0}, distinct_shapes=1,
                            n_threads=2, seed=1)
        pool = WorkerPool(workers=2, mode="process", max_worker_restarts=0)
        try:
            pool.process(synthetic_trace(trace))
            pool._workers[0].process.kill()
            pool._workers[0].process.join()
            with pytest.raises(PoolError):
                pool.process(synthetic_trace(trace))
            # The pool closed itself: a later flush must not hand back stale
            # pipe replies from the surviving worker.
            with pytest.raises(PoolError):
                pool.flush()
        finally:
            pool.close()

    def test_worker_snapshots_cross_the_process_boundary(self):
        trace = TraceConfig(size=8, apps=["search"],
                            backend_mix={"vrda": 1.0}, distinct_shapes=1,
                            n_threads=2, seed=1)
        with WorkerPool(workers=2, mode="process") as pool:
            report = pool.process(synthetic_trace(trace))
        assert sum(s.requests for s in report.workers) == trace.size
        assert sum(len(s.resident_keys) for s in report.workers) >= 1
        json.dumps(report.to_dict())


class TestMeasuredRateDispatch:
    """Workers time their flushes; the dispatcher can act on the rates."""

    def _trace(self, size=24):
        return synthetic_trace(TraceConfig(
            size=size, apps=["hash-table"], backend_mix={"vrda": 1.0},
            distinct_shapes=size, n_threads=1, seed=3))

    def test_snapshots_report_busy_time_and_rate(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            report = pool.process(self._trace())
        active = [s for s in report.workers if s.requests]
        assert active
        for snapshot in active:
            assert snapshot.busy_s > 0.0
            assert snapshot.service_rate_rps > 0.0
            row = snapshot.to_dict()
            assert row["busy_s"] > 0.0
            assert row["service_rate_rps"] > 0.0

    def test_rate_dispatch_starves_slow_worker(self):
        pool = WorkerPool(workers=2, mode="inline", policy="hoisted-buffer",
                          buffers_per_worker=1, max_batch_size=1,
                          result_cache_capacity=0, rate_dispatch=True,
                          service_delays=[0.0, 0.02])
        with pool:
            pool.process(self._trace(8))   # measure the rates
            pool.process(self._trace(30))  # dispatch on them
            snapshots = pool.last_snapshots
            stats = pool.stats_row()
        assert snapshots[1].service_rate_rps < snapshots[0].service_rate_rps
        assert stats["rate_dispatch"] is True
        assert stats["worker_scales"][1] > 1.0
        assert snapshots[1].requests < snapshots[0].requests

    def test_service_delays_validated(self):
        with pytest.raises(PoolError):
            WorkerPool(workers=2, service_delays=[0.1])

    def test_unit_scales_by_default(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            pool.process(self._trace(8))
            stats = pool.stats_row()
        assert stats["rate_dispatch"] is False
        assert stats["worker_scales"] == [1.0, 1.0]
        assert stats["intra_batch_workers"] == 1


class TestPoolIntraBatchFanOut:
    def test_pool_fanout_matches_sequential(self):
        trace = TraceConfig(size=40, apps=["hash-table", "search"],
                            backend_mix={"vrda": 1.0}, distinct_shapes=2,
                            n_threads=2, seed=9)
        results = []
        for workers in (1, 4):
            with WorkerPool(workers=2, mode="inline",
                            intra_batch_workers=workers) as pool:
                report = pool.process(synthetic_trace(trace))
                results.append([payload(r) for r in report.responses])
                assert pool.stats_row()["intra_batch_workers"] == workers
        assert results[0] == results[1]
