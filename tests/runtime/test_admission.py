"""Rate-aware admission control: token budget, shedding, and overload."""

import threading
import time

import pytest

from repro.runtime.gateway.admission import (
    AdmissionController,
    PoolService,
    overload_envelope,
)
from repro.runtime.pool import WorkerPool
from repro.sim.policies import pool_drain_rps


class TestPoolDrainRps:
    def test_sums_measured_rates(self):
        assert pool_drain_rps([10.0, 5.0, 0.0]) == 15.0

    def test_unmeasured_pool_falls_back_to_default(self):
        assert pool_drain_rps([0.0, 0.0], default=25.0) == 25.0
        assert pool_drain_rps([], default=25.0) == 25.0


class TestAdmissionController:
    def test_fixed_budget_accounting(self):
        controller = AdmissionController(max_inflight=4)
        first = controller.try_acquire(3)
        assert first.admitted and first.inflight == 3 and first.limit == 4
        second = controller.try_acquire(2)  # 3 + 2 > 4
        assert not second.admitted
        assert second.retry_after_s > 0.0
        controller.release(3)
        assert controller.try_acquire(2).admitted

    def test_zero_budget_sheds_everything(self):
        controller = AdmissionController(max_inflight=0)
        decision = controller.try_acquire(1)
        assert not decision.admitted
        assert controller.snapshot().rejected == 1

    def test_derived_budget_tracks_worker_rates(self):
        controller = AdmissionController(headroom=2.0, default_drain_rps=100.0)
        assert controller.limit == 200  # cold: default drain x headroom
        controller.update_rates([10.0, 5.0])
        assert controller.drain_rps == 15.0
        assert controller.limit == 30

    def test_own_drain_measurements_beat_worker_rates(self):
        controller = AdmissionController(headroom=1.0)
        controller.update_rates([1000.0])
        controller.observe_drain(served=10, elapsed_s=1.0)  # measured: 10 rps
        assert controller.drain_rps == pytest.approx(10.0)
        assert controller.limit == 10

    def test_retry_after_scales_with_excess_and_is_clamped(self):
        controller = AdmissionController(
            max_inflight=0, min_retry_s=0.05, max_retry_s=3.0
        )
        controller.observe_drain(served=10, elapsed_s=1.0)  # 10 rps drain
        small = controller.try_acquire(1)
        large = controller.try_acquire(20)
        assert small.retry_after_s == pytest.approx(0.1)  # 1 / 10 rps
        assert large.retry_after_s == pytest.approx(2.0)  # 20 / 10 rps
        huge = controller.try_acquire(1000)
        assert huge.retry_after_s == 3.0  # clamped

    def test_counters_and_peak(self):
        controller = AdmissionController(max_inflight=5)
        controller.try_acquire(4)
        controller.try_acquire(4)  # rejected
        controller.release(4)
        snapshot = controller.snapshot()
        assert snapshot.admitted == 4
        assert snapshot.rejected == 4
        assert snapshot.peak_inflight == 4
        assert snapshot.inflight == 0

    def test_thread_safety_of_token_accounting(self):
        controller = AdmissionController(max_inflight=8)
        iterations = 200

        def hammer():
            for _ in range(iterations):
                if controller.try_acquire(2).admitted:
                    controller.release(2)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = controller.snapshot()
        assert snapshot.inflight == 0
        assert snapshot.admitted + snapshot.rejected == 8 * iterations * 2
        assert snapshot.peak_inflight <= 8

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=-1)
        with pytest.raises(ValueError):
            AdmissionController(headroom=0.0)


class TestOverloadEnvelope:
    def test_wire_shape(self):
        controller = AdmissionController(max_inflight=0)
        envelope = overload_envelope(controller.try_acquire(3))
        assert envelope["ok"] is False
        assert envelope["code"] == 429
        assert envelope["retry_after_s"] > 0
        assert "overloaded" in envelope["error"]


class TestPoolService:
    def test_serves_without_admission(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool)
            result = service.serve_payloads(
                [{"app": "search", "n_threads": 2}] * 3
            )
        assert not result.shed
        assert [r["ok"] for r in result.results] == [True] * 3
        assert service.served == 3 and service.shed == 0

    def test_sheds_whole_call_without_touching_the_pool(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, AdmissionController(max_inflight=0))
            result = service.serve_payloads([{"app": "search"}] * 2)
            stats = service.stats_payload()
        assert result.shed and result.retry_after_s > 0
        assert all(r["code"] == 429 for r in result.results)
        assert service.shed == 2 and service.served == 0
        program = stats["pool"]["program_cache"]
        assert program["hits"] + program["misses"] == 0
        assert stats["admission"]["rejected"] == 2

    def test_malformed_payloads_become_envelopes_not_shed(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, AdmissionController(max_inflight=16))
            result = service.serve_payloads(
                [{"app": "search", "n_threads": 2}, {"bogus": 1}]
            )
        assert not result.shed
        assert result.results[0]["ok"]
        assert not result.results[1]["ok"]
        assert "bogus" in result.results[1]["error"]

    def test_tokens_are_released_after_serving(self):
        controller = AdmissionController(max_inflight=4)
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, controller)
            service.serve_payloads([{"app": "search", "n_threads": 2}] * 4)
            assert controller.snapshot().inflight == 0
            # The budget is free again: the next full batch is admitted.
            result = service.serve_payloads(
                [{"app": "search", "n_threads": 2}] * 4
            )
        assert not result.shed

    def test_malformed_payloads_do_not_poison_the_drain_estimate(self):
        """Rejected-at-submit payloads must not count as drained work."""
        controller = AdmissionController()
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, controller)
            result = service.serve_payloads([{"bogus": 1}] * 32)
        assert all(not r["ok"] for r in result.results)
        # An empty flush over 32 garbage payloads would otherwise record a
        # near-infinite rps sample and blow the admission budget open.
        assert controller._estimator.rate == 0.0

    def test_flushes_feed_the_drain_estimate(self):
        controller = AdmissionController()
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, controller)
            service.serve_payloads([{"app": "search", "n_threads": 2}] * 4)
        assert controller._estimator.rate > 0.0
        assert controller._worker_rates  # worker EWMA rates installed too


class TestOverloadIntegration:
    """Saturate a 2-worker inline pool at ~2x its measured rate."""

    def test_two_x_overload_sheds_and_accepted_requests_complete(self):
        delay = 0.002
        controller = AdmissionController(headroom=0.05)
        pool = WorkerPool(
            workers=2, mode="inline", service_delays=[delay, delay]
        )
        with pool:
            service = PoolService(pool, controller)
            # Warm up so the budget comes from measured drain, not defaults.
            # Batches of 4 fit even the cold default budget (100 rps x 0.05s).
            for round_ in range(5):
                warm = service.serve_payloads(
                    [{"app": "search", "n_threads": 2, "seed": s % 2}
                     for s in range(4 * round_, 4 * round_ + 4)]
                )
                assert not warm.shed
                assert all(r["ok"] for r in warm.results)
            drain = controller.drain_rps
            assert drain > 0.0

            # Offered load: 6 closed-loop clients x batches of 8 against a
            # budget of ~drain x 0.05s -- far beyond 2x the pool's rate.
            results = []
            results_lock = threading.Lock()

            def client():
                for _ in range(6):
                    result = service.serve_payloads(
                        [{"app": "search", "n_threads": 2, "seed": s % 2}
                         for s in range(8)]
                    )
                    with results_lock:
                        results.append(result)

            threads = [threading.Thread(target=client) for _ in range(6)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            offered_rps = (6 * 6 * 8) / elapsed
            stats = service.stats_payload()

        shed = [r for r in results if r.shed]
        accepted = [r for r in results if not r.shed]
        # The pool was genuinely saturated (offered well beyond measured
        # drain) and the controller shed some of it with 429 envelopes.
        assert offered_rps > 1.5 * drain
        assert shed, "expected 429s under 2x overload"
        assert accepted, "expected some admitted work under overload"
        assert all(r["code"] == 429 for s in shed for r in s.results)
        # Every accepted request completed successfully.
        assert all(r["ok"] for a in accepted for r in a.results)
        # Counters and cache stats stay consistent: everything offered is
        # either served or shed, and the pool-wide cache saw exactly the
        # served requests (each flush = one lookup per program batch, but
        # lookups+amortized hits must cover every served request).
        served_n = sum(len(a.results) for a in accepted) + 20
        shed_n = sum(len(s.results) for s in shed)
        assert service.served == served_n
        assert service.shed == shed_n
        assert served_n + shed_n == 6 * 6 * 8 + 20
        program = stats["pool"]["program_cache"]
        assert program["hit_rate"] == pytest.approx(
            program["hits"] / max(1, program["hits"] + program["misses"]),
            abs=1e-3,
        )
        assert stats["admission"]["inflight"] == 0
        assert stats["queue_wait_p99_s"] >= stats["queue_wait_p50_s"]
