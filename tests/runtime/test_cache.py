"""ProgramCache: content addressing, LRU eviction, stats, and the disk tier."""


import pytest

from repro.compiler import CompileOptions
from repro.dataflow.lowering import CompiledProgram
from repro.runtime.cache import LRUCache, ProgramCache, program_key

SQUARE = """
DRAM<int> data;
DRAM<int> out;

void main(int n) {
  foreach (n) { int i =>
    int v = data[i];
    out[i] = v * v;
  };
}
"""

CUBE = SQUARE.replace("v * v", "v * v * v")
DOUBLE = SQUARE.replace("v * v", "v + v")


class TestCompileOptionsKey:
    def test_frozen_and_hashable(self):
        options = CompileOptions()
        with pytest.raises(Exception):
            options.canonicalize = False
        assert hash(CompileOptions()) == hash(CompileOptions())
        assert CompileOptions() == CompileOptions()
        assert CompileOptions() != CompileOptions.none()

    def test_cache_key_is_canonical(self):
        assert CompileOptions().cache_key() == CompileOptions().cache_key()
        assert (CompileOptions().disabled("subword_packing").cache_key()
                != CompileOptions().cache_key())
        # Every knob appears in the key, so no two configurations collide.
        key = CompileOptions.none().cache_key()
        assert key.count("=") == len(CompileOptions().cache_key().split(","))

    def test_disabled_still_validates_names(self):
        with pytest.raises(ValueError):
            CompileOptions().disabled("not_a_pass")

    def test_program_key_separates_source_function_options(self):
        base = program_key(SQUARE)
        assert program_key(SQUARE) == base
        assert program_key(CUBE) != base
        assert program_key(SQUARE, options=CompileOptions.none()) != base


class TestLRUCache:
    def test_hit_miss_and_eviction_order(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes 'a': 'b' is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3
        assert cache.stats.misses == 2

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.stats.hit_rate == 0.0


class TestProgramCache:
    def test_hit_and_miss(self):
        cache = ProgramCache(capacity=4)
        program, hit = cache.get_or_compile(SQUARE)
        assert isinstance(program, CompiledProgram)
        assert not hit
        again, hit = cache.get_or_compile(SQUARE)
        assert hit
        assert again is program
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_options_partition_the_cache(self):
        cache = ProgramCache(capacity=4)
        cache.get_or_compile(SQUARE)
        _, hit = cache.get_or_compile(SQUARE, options=CompileOptions.none())
        assert not hit
        assert len(cache) == 2

    def test_lru_eviction_recompiles(self):
        cache = ProgramCache(capacity=2)
        cache.get_or_compile(SQUARE)
        cache.get_or_compile(CUBE)
        cache.get_or_compile(DOUBLE)  # evicts SQUARE
        assert cache.stats.evictions == 1
        _, hit = cache.get_or_compile(SQUARE)
        assert not hit

    def test_disk_tier_survives_memory_clear(self, tmp_path):
        cache = ProgramCache(capacity=4, disk_dir=tmp_path)
        cache.get_or_compile(SQUARE)
        assert list(tmp_path.glob("*.pkl"))
        cache.clear()
        program, hit = cache.get_or_compile(SQUARE)
        assert hit
        assert cache.stats.disk_hits == 1
        assert isinstance(program, CompiledProgram)

    def test_disk_tier_shared_between_instances(self, tmp_path):
        ProgramCache(capacity=4, disk_dir=tmp_path).get_or_compile(SQUARE)
        other = ProgramCache(capacity=4, disk_dir=tmp_path)
        _, hit = other.get_or_compile(SQUARE)
        assert hit
        assert other.stats.disk_hits == 1

    def test_corrupt_disk_entry_falls_back_to_compile(self, tmp_path):
        cache = ProgramCache(capacity=4, disk_dir=tmp_path)
        cache.get_or_compile(SQUARE)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        cache.clear()
        program, hit = cache.get_or_compile(SQUARE)
        assert not hit
        assert isinstance(program, CompiledProgram)

    def test_corrupt_disk_entry_is_unlinked_and_rewritten(self, tmp_path):
        cache = ProgramCache(capacity=4, disk_dir=tmp_path)
        cache.get_or_compile(SQUARE)
        entry = next(tmp_path.glob("*.pkl"))
        entry.write_bytes(b"\x00garbage")
        cache.clear()
        cache.get_or_compile(SQUARE)  # miss: garbage unlinked, recompiled
        # The recompile stored a clean entry over the garbage one, so a
        # fresh instance hits disk again instead of re-reading bad bytes.
        other = ProgramCache(capacity=4, disk_dir=tmp_path)
        _, hit = other.get_or_compile(SQUARE)
        assert hit
        assert other.stats.disk_hits == 1

    def test_disk_writes_are_atomic_with_no_temp_leftovers(self, tmp_path):
        cache = ProgramCache(capacity=4, disk_dir=tmp_path)
        cache.get_or_compile(SQUARE)
        cache.get_or_compile(DOUBLE)
        # Temp-then-replace writes: only final entries remain on disk.
        assert not list(tmp_path.glob("*.tmp-*"))
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        # clear(disk=True) sweeps stray temp files from a crashed writer too.
        (tmp_path / "dead.pkl.tmp-123").write_bytes(b"partial")
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*"))

    def test_cached_program_executes(self, tmp_path):
        from repro.core.memory import MemorySystem

        cache = ProgramCache(capacity=1, disk_dir=tmp_path)
        cache.get_or_compile(SQUARE)
        cache.clear()
        program, hit = cache.get_or_compile(SQUARE)  # from-disk roundtrip
        assert hit
        memory = MemorySystem()
        memory.dram_alloc("data", data=[1, 2, 3, 4])
        memory.dram_alloc("out", size=4)
        program.run(memory, n=4)
        assert memory.segment_data("out") == [1, 4, 9, 16]

    def test_amortized_hits_accounting(self):
        cache = ProgramCache(capacity=2)
        cache.get_or_compile(SQUARE)
        cache.record_amortized_hits(3)
        assert cache.stats.hits == 3
        assert cache.stats.hit_rate == pytest.approx(0.75)

    def test_disabled_cache_reports_zero_hit_rate(self):
        cache = ProgramCache(capacity=0)
        cache.get_or_compile(SQUARE)
        cache.record_amortized_hits(5)  # batch amortization must not count
        _, hit = cache.get_or_compile(SQUARE)
        assert not hit
        assert cache.stats.hits == 0
        assert cache.stats.hit_rate == 0.0
