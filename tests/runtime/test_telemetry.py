"""Telemetry plane: registry math, merging, tracing, exposition, slow ring."""

import io
import json
import logging
import re
import threading

import pytest

from repro.runtime.client import RuntimeClient
from repro.runtime.faults import load_fault_plan
from repro.runtime.gateway.admission import PoolService
from repro.runtime.logs import JsonFormatter, configure_logging, event, get_logger
from repro.runtime.pool import WorkerPool
from repro.runtime.telemetry import (
    Histogram,
    MetricsRegistry,
    SlowRing,
    default_buckets,
    merge_snapshots,
    new_trace_id,
    quantile_from_buckets,
    render_prometheus,
)
from repro.runtime.trace import TraceConfig, synthetic_trace


def _payloads(size=10, seed=21):
    trace = TraceConfig(
        size=size,
        apps=["hash-table", "search"],
        backend_mix={"vrda": 1.0},
        distinct_shapes=2,
        n_threads=2,
        seed=seed,
    )
    return [request.to_dict() for request in synthetic_trace(trace)]


class TestHistogramMath:
    def test_observations_land_in_correct_buckets(self):
        histogram = Histogram("h", "test", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        child = histogram.snapshot_values()[()]
        assert child["buckets"] == [1, 1, 1, 1]  # one overflow entry
        assert child["count"] == 4
        assert child["sum"] == pytest.approx(105.0)

    def test_boundary_value_falls_in_lower_bucket(self):
        histogram = Histogram("h", "test", buckets=[1.0, 2.0])
        histogram.observe(1.0)  # bisect_left: exactly-on-bound is <= bound
        assert histogram.snapshot_values()[()]["buckets"] == [1, 0, 0]

    def test_quantile_interpolates_within_bucket(self):
        # counts: one sample per bucket of [1, 2, 4]; the median rank lands
        # halfway through the (1, 2] bucket.
        assert quantile_from_buckets([1.0, 2.0, 4.0], [1, 1, 1, 0], 0.5) == (
            pytest.approx(1.5)
        )

    def test_quantile_empty_histogram_is_zero(self):
        assert quantile_from_buckets([1.0, 2.0], [0, 0, 0], 0.99) == 0.0
        assert Histogram("h", "t").quantile(0.5) == 0.0

    def test_quantile_overflow_reports_last_bound(self):
        assert quantile_from_buckets([1.0, 2.0], [0, 0, 5], 0.9) == 2.0

    def test_default_buckets_are_log_spaced_and_sorted(self):
        bounds = default_buckets()
        assert bounds == sorted(bounds)
        assert all(b2 == pytest.approx(2 * b1)
                   for b1, b2 in zip(bounds, bounds[1:]))

    def test_histogram_quantiles_track_observations(self):
        histogram = Histogram("h", "test")
        for _ in range(95):
            histogram.observe(0.001)
        for _ in range(5):
            histogram.observe(1.0)
        assert histogram.quantile(0.5) < 0.01
        assert histogram.quantile(0.99) > 0.5


class TestRegistryAndMerge:
    def test_factories_are_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total", "help")
        assert registry.counter("a_total", "help") is counter
        with pytest.raises(ValueError):
            registry.gauge("a_total", "help")

    def test_disabled_registry_is_null(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("a_total", "help")
        metric.inc()
        metric.observe(1.0)  # every op is a no-op, any method goes
        assert registry.snapshot() == {}

    def test_merge_under_concurrent_increments(self):
        registries = [MetricsRegistry() for _ in range(2)]
        per_thread, threads_per_registry = 1000, 4

        def hammer(registry):
            counter = registry.counter("ops_total", "help", ("kind",))
            histogram = registry.histogram("lat_seconds", "help")
            for i in range(per_thread):
                counter.inc(kind="a" if i % 2 else "b")
                histogram.observe(0.001 * (i % 7))

        threads = [
            threading.Thread(target=hammer, args=(registry,))
            for registry in registries
            for _ in range(threads_per_registry)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_snapshots([r.snapshot() for r in registries])
        total = 2 * threads_per_registry * per_thread
        counts = merged["ops_total"]["values"]
        assert counts[("a",)] + counts[("b",)] == total
        histogram = merged["lat_seconds"]["values"][()]
        assert histogram["count"] == total
        assert sum(histogram["buckets"]) == total

    def test_merge_rejects_kind_conflicts(self):
        first = MetricsRegistry()
        first.counter("x", "help").inc()
        second = MetricsRegistry()
        second.gauge("x", "help").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda r: r.counter("derived_total", "help").set_total(42)
        )
        assert registry.snapshot()["derived_total"]["values"][()] == 42.0


class TestTracePropagation:
    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_traced_and_untraced_responses_byte_identical(self, mode):
        size = 8 if mode == "process" else 12
        plain = _payloads(size=size)
        traced = [dict(p, trace=True) for p in plain]
        with WorkerPool(workers=2, mode=mode) as pool_a:
            baseline = PoolService(pool_a).serve_payloads(plain).results
        with WorkerPool(workers=2, mode=mode) as pool_b:
            service = PoolService(pool_b)
            traced_results = service.serve_payloads(traced).results
            # Cache replay after traced traffic must not leak spans.
            replayed = service.serve_payloads(plain).results
        assert all("trace" in r for r in traced_results)
        assert all("trace" not in r for r in replayed)
        stripped = [
            {k: v for k, v in r.items() if k != "trace"}
            for r in traced_results
        ]
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )

    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_client_minted_trace_id_round_trips(self, mode):
        payloads = _payloads(size=4)
        trace_id = new_trace_id()
        payloads[0] = dict(payloads[0], trace=True, trace_id=trace_id)
        with WorkerPool(workers=2, mode=mode) as pool:
            results = PoolService(pool).serve_payloads(payloads).results
        span = results[0]["trace"]
        assert span["trace_id"] == trace_id
        assert span["endpoint"] == "ndjson"
        assert span["worker"] in (0, 1)
        for key in ("compile_s", "execute_s", "queue_wait_s", "flush_s",
                    "total_s", "result_cache_hit"):
            assert key in span

    def test_frontdoor_mints_ids_when_absent(self):
        payloads = [dict(p, trace=True) for p in _payloads(size=4)]
        with WorkerPool(workers=2, mode="inline") as pool:
            results = PoolService(pool).serve_payloads(payloads).results
        ids = [r["trace"]["trace_id"] for r in results]
        assert all(ids) and len(set(ids)) == len(ids)

    def test_replay_marks_result_cache_hit(self):
        payloads = [dict(_payloads(size=1)[0], trace=True)]
        with WorkerPool(workers=1, mode="inline") as pool:
            service = PoolService(pool)
            first = service.serve_payloads(payloads).results[0]
            second = service.serve_payloads(payloads).results[0]
        assert first["trace"]["result_cache_hit"] is False
        assert second["trace"]["result_cache_hit"] is True


_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(e[+-][0-9]+)?$"
)


class TestExposition:
    def test_render_format_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.", ("code",)).inc(3, code="200")
        registry.histogram("lat_seconds", "Latency.",
                           buckets=[0.1, 1.0]).observe(0.5)
        text = render_prometheus([registry.snapshot()])
        lines = text.strip().splitlines()
        assert "# HELP req_total Requests." in lines
        assert "# TYPE req_total counter" in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'req_total{code="200"} 3' in lines
        for line in lines:
            if not line.startswith("#"):
                assert _SAMPLE_LINE.match(line), line

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "H.", buckets=[1.0, 2.0])
        for value in (0.5, 0.6, 1.5, 9.0):
            histogram.observe(value)
        text = render_prometheus([registry.snapshot()])
        assert 'h_seconds_bucket{le="1.0"} 2' in text
        assert 'h_seconds_bucket{le="2.0"} 3' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text

    def test_service_exposes_stable_family_names(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool)
            service.serve_payloads(_payloads(size=8))
            text = service.metrics_text()
        for family in (
            "engine_requests_total",
            "engine_batches_total",
            "engine_cache_lookups_total",
            "pool_flushes_total",
            "pool_flush_seconds_bucket",
            "pool_worker_restarts_total",
            "frontdoor_requests_total",
            "frontdoor_request_seconds_bucket",
        ):
            assert family in text, family
        assert 'frontdoor_requests_total{endpoint="ndjson",status="ok"} 8' in text

    def test_worker_metrics_merge_across_process_pool(self):
        with WorkerPool(workers=2, mode="process") as pool:
            service = PoolService(pool)
            service.serve_payloads(_payloads(size=8))
            text = service.metrics_text()
        match = re.search(r"^engine_batches_total (\d+)$", text, re.MULTILINE)
        assert match and int(match.group(1)) >= 1


class TestSlowRing:
    def test_keeps_k_slowest_not_k_most_recent(self):
        ring = SlowRing(capacity=3)
        for duration in (1.0, 5.0, 3.0, 2.0, 4.0):
            ring.record(duration, {"d": duration})
        entries = ring.entries()
        assert [e["duration_s"] for e in entries] == [5.0, 4.0, 3.0]
        assert ring.recorded == 5

    def test_fast_request_never_displaces_slow_one(self):
        ring = SlowRing(capacity=2)
        ring.record(2.0, {})
        ring.record(3.0, {})
        ring.record(0.1, {})  # faster than everything retained: dropped
        assert [e["duration_s"] for e in ring.entries()] == [3.0, 2.0]

    def test_payload_shape(self):
        ring = SlowRing(capacity=4)
        ring.record(0.25, {"endpoint": "ndjson"})
        payload = ring.payload()
        assert payload["ok"] and payload["op"] == "slow"
        assert payload["capacity"] == 4 and payload["recorded"] == 1
        assert payload["slowest"][0]["endpoint"] == "ndjson"

    def test_service_records_slow_entries(self):
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, slow_ring_size=4)
            service.serve_payloads(_payloads(size=4))
            payload = service.slow_payload()
        assert payload["recorded"] >= 1
        assert payload["slowest"][0]["requests"] == 4


class TestStructuredLogs:
    @staticmethod
    def _reset_repro_logging():
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_configured", False):
                root.removeHandler(handler)
        root.propagate = True
        root.setLevel(logging.NOTSET)

    def test_json_formatter_renders_event_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        try:
            event(get_logger("repro.test"), logging.INFO, "something happened",
                  worker=3, cause="eof")
        finally:
            self._reset_repro_logging()
        record = json.loads(stream.getvalue())
        assert record["msg"] == "something happened"
        assert record["level"] == "INFO"
        assert record["worker"] == 3 and record["cause"] == "eof"

    def test_json_formatter_is_one_parseable_line(self):
        formatter = JsonFormatter()
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "msg", (), None
        )
        rendered = formatter.format(record)
        assert "\n" not in rendered
        assert json.loads(rendered)["logger"] == "repro.x"

    def test_worker_restart_logged_with_cause_and_replays(self):
        plan = load_fault_plan(
            '[{"kind": "kill", "worker": 0, "after_batches": 1}]'
        )
        payloads = _payloads(size=6)
        captured = []
        handler = logging.Handler()
        handler.emit = captured.append
        logger = logging.getLogger("repro.runtime.pool")
        logger.addHandler(handler)
        try:
            with WorkerPool(workers=2, mode="inline", fault_plan=plan) as pool:
                service = PoolService(pool)
                service.serve_payloads(payloads)
                service.serve_payloads(payloads)
        finally:
            logger.removeHandler(handler)
        restarts = [r for r in captured if r.getMessage() == "worker restarted"]
        assert restarts, "expected a structured restart record"
        fields = restarts[0].repro_fields
        assert fields["worker"] == 0
        assert fields["cause"] == "injected"
        assert "replayed_batches_total" in fields


class TestClientCounters:
    def _client(self, monkeypatch, replies, sleeps):
        monkeypatch.setattr(RuntimeClient, "_connect", lambda self: None)
        client = RuntimeClient(port=1, max_retries_429=2, sleep=sleeps.append)
        monkeypatch.setattr(client, "roundtrip", lambda payload: replies.pop(0))
        return client

    def test_429_backoff_counters(self, monkeypatch):
        sleeps = []
        replies = [
            {"ok": False, "code": 429, "retry_after_s": 0.02},
            {"ok": True},
        ]
        client = self._client(monkeypatch, replies, sleeps)
        assert client._roundtrip_with_backoff({"op": "x"})["ok"]
        local = client.local_stats()
        assert local["sheds_429"] == 1
        assert local["backoff_sleeps"] == 1
        assert local["backoff_s_total"] == pytest.approx(sum(sleeps))

    def test_exhausted_retries_still_counted(self, monkeypatch):
        shed = {"ok": False, "code": 429, "retry_after_s": 0.01}
        client = self._client(monkeypatch, [dict(shed) for _ in range(3)], [])
        assert client._roundtrip_with_backoff({"op": "x"})["code"] == 429
        assert client.local_stats()["sheds_429"] == 3

    def test_local_stats_shape_when_idle(self, monkeypatch):
        monkeypatch.setattr(RuntimeClient, "_connect", lambda self: None)
        local = RuntimeClient(port=1).local_stats()
        assert local["roundtrips"] == 0 and local["reconnects"] == 0
        assert local["latency"]["count"] == 0
        assert local["latency"]["p99_s"] == 0.0
