"""HTTP gateway: protocol, streaming incrementality, backpressure parity."""

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.runtime.gateway.admission import AdmissionController, PoolService
from repro.runtime.gateway.http import GATEWAY_VERSION, HttpGateway
from repro.runtime.gateway.streaming import (
    ChunkedWriter,
    SlowReaderError,
    encode_chunk,
    iter_subbatches,
    ndjson_line,
)
from repro.runtime.pool import WorkerPool
from repro.runtime.server import RuntimeServer


@pytest.fixture()
def gateway():
    """A gateway over a fresh 2-worker inline pool, no admission."""
    with WorkerPool(workers=2, mode="inline") as pool:
        instance = HttpGateway(PoolService(pool), idle_timeout_s=30.0)
        with instance:
            yield instance


def http_json(gateway, method, path, payload=None, timeout=30.0):
    connection = http.client.HTTPConnection(
        gateway.http_host, gateway.http_port, timeout=timeout
    )
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        headers = {k.lower(): v for k, v in response.getheaders()}
        raw = response.read()
        return response.status, headers, json.loads(raw) if raw else None
    finally:
        connection.close()


class TestStreamingHelpers:
    def test_encode_chunk_frames(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"x" * 16).startswith(b"10\r\n")

    def test_ndjson_line(self):
        assert ndjson_line({"ok": True}) == b'{"ok": true}\n'

    def test_iter_subbatches(self):
        assert list(iter_subbatches([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        assert list(iter_subbatches([], 3)) == []
        assert list(iter_subbatches([1, 2], 0)) == [[1], [2]]  # clamped to 1

    def test_chunked_writer_drops_slow_readers(self):
        class StalledWriter:
            transport = None

            def write(self, data):
                pass

            async def drain(self):
                await asyncio.sleep(10)

        async def scenario():
            writer = ChunkedWriter(StalledWriter(), write_timeout_s=0.05)
            await writer.write_chunk(b"data")

        with pytest.raises(SlowReaderError):
            asyncio.run(scenario())

    def test_chunked_writer_writes_frames_then_terminator(self):
        frames = []

        class CollectingWriter:
            transport = None

            def write(self, data):
                frames.append(data)

            async def drain(self):
                pass

        async def scenario():
            writer = ChunkedWriter(CollectingWriter(), write_timeout_s=1.0)
            await writer.write_chunk(b"abc")
            await writer.finish()

        asyncio.run(scenario())
        assert frames == [b"3\r\nabc\r\n", b"0\r\n\r\n"]


class TestEndpoints:
    def test_healthz(self, gateway):
        status, _, payload = http_json(gateway, "GET", "/healthz")
        assert status == 200
        assert payload == {"ok": True, "version": GATEWAY_VERSION,
                           "degraded": False, "recent_restarts": 0,
                           "worker_restarts": 0, "replayed_batches": 0}

    def test_single_request(self, gateway):
        status, _, payload = http_json(
            gateway, "POST", "/v1/request",
            {"app": "search", "n_threads": 2, "seed": 0},
        )
        assert status == 200
        assert payload["ok"] and payload["correct"]
        assert payload["backend"] == "vrda"
        assert payload["outputs"] is not None

    def test_batch_preserves_order_and_isolates_bad_payloads(self, gateway):
        status, _, payload = http_json(
            gateway, "POST", "/v1/batch",
            {"requests": [
                {"app": "search", "n_threads": 2},
                {"app": "no-such-app"},
                {"bogus-field": 1},
                {"app": "murmur3", "n_threads": 2, "backend": "gpu"},
            ]},
        )
        assert status == 200 and payload["ok"]
        replies = payload["responses"]
        assert [r.get("ok") for r in replies] == [True, False, False, True]
        assert "no-such-app" in replies[1]["error"]
        assert "bogus-field" in replies[2]["error"]

    def test_batch_accepts_a_bare_list(self, gateway):
        status, _, payload = http_json(
            gateway, "POST", "/v1/batch",
            [{"app": "search", "n_threads": 2}] * 2,
        )
        assert status == 200
        assert [r["ok"] for r in payload["responses"]] == [True, True]

    def test_stats_reports_service_and_gateway_state(self, gateway):
        http_json(gateway, "POST", "/v1/batch",
                  {"requests": [{"app": "search", "n_threads": 2}] * 4})
        status, _, stats = http_json(gateway, "GET", "/v1/stats")
        assert status == 200 and stats["ok"]
        assert stats["served"] == 4
        assert stats["version"] == GATEWAY_VERSION
        assert len(stats["pool"]["workers"]) == 2
        assert stats["gateway"]["requests"] >= 2
        assert "queue_wait_p99_s" in stats

    def test_metrics_endpoint_serves_prometheus_text(self, gateway):
        http_json(gateway, "POST", "/v1/batch",
                  {"requests": [{"app": "search", "n_threads": 2}] * 3})
        connection = http.client.HTTPConnection(
            gateway.http_host, gateway.http_port, timeout=30.0
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            content_type = response.getheader("Content-Type", "")
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        assert response.status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE frontdoor_requests_total counter" in text
        assert 'frontdoor_requests_total{endpoint="/v1/batch",status="ok"} 3' in text
        assert "gateway_events_total" in text

    def test_slow_endpoint_reports_spans(self, gateway):
        http_json(gateway, "POST", "/v1/request",
                  {"app": "search", "n_threads": 2, "trace": True})
        status, _, payload = http_json(gateway, "GET", "/v1/slow")
        assert status == 200 and payload["ok"]
        assert payload["recorded"] >= 1
        assert payload["slowest"][0]["endpoint"] == "/v1/request"

    def test_traced_http_request_carries_span(self, gateway):
        status, _, traced = http_json(
            gateway, "POST", "/v1/request",
            {"app": "search", "n_threads": 2, "trace": True},
        )
        assert status == 200 and traced["ok"]
        assert traced["trace"]["trace_id"]
        assert traced["trace"]["endpoint"] == "/v1/request"
        status, _, plain = http_json(
            gateway, "POST", "/v1/request", {"app": "search", "n_threads": 2}
        )
        assert status == 200 and "trace" not in plain

    def test_unknown_path_is_404(self, gateway):
        status, _, payload = http_json(gateway, "GET", "/nope")
        assert status == 404 and not payload["ok"]

    def test_wrong_method_is_405(self, gateway):
        status, _, payload = http_json(gateway, "GET", "/v1/request")
        assert status == 405 and "POST" in payload["error"]

    def test_bad_json_body_is_400(self, gateway):
        connection = http.client.HTTPConnection(
            gateway.http_host, gateway.http_port, timeout=30.0
        )
        try:
            connection.request("POST", "/v1/request", body="{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_oversized_body_is_413(self):
        with WorkerPool(workers=1, mode="inline") as pool:
            with HttpGateway(PoolService(pool), max_body_bytes=1024) as gw:
                status, _, payload = http_json(
                    gw, "POST", "/v1/batch",
                    {"requests": [{"app": "search", "pad": "x" * 4096}]},
                )
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_keep_alive_serves_many_requests_on_one_connection(self, gateway):
        connection = http.client.HTTPConnection(
            gateway.http_host, gateway.http_port, timeout=30.0
        )
        try:
            for seed in range(3):
                connection.request(
                    "POST", "/v1/request",
                    body=json.dumps(
                        {"app": "search", "n_threads": 2, "seed": seed % 2}
                    ),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["ok"]
        finally:
            connection.close()
        assert gateway.counters["connections"] == 1


def read_chunked_ndjson(sock_file):
    """Read one chunked-transfer NDJSON body; yields (arrival_s, object)."""
    while True:
        size_line = sock_file.readline()
        size = int(size_line.strip(), 16)
        if size == 0:
            sock_file.readline()  # trailing CRLF
            return
        data = sock_file.read(size)
        sock_file.read(2)  # chunk CRLF
        yield time.perf_counter(), json.loads(data)


def raw_http_post(host, port, path, payload, timeout=30.0):
    """POST over a raw socket; returns (sock, file, status, headers)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    body = json.dumps(payload).encode("utf-8")
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii") + body
    sock.sendall(request)
    handle = sock.makefile("rb")
    status_line = handle.readline().decode("ascii")
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = handle.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return sock, handle, status, headers


class TestStreaming:
    def test_responses_arrive_incrementally(self):
        """First streamed response lands before the batch completes."""
        delay = 0.03
        requests = [{"app": "search", "n_threads": 2, "seed": s % 2}
                    for s in range(5)]
        pool = WorkerPool(workers=2, mode="inline",
                          service_delays=[delay, delay])
        with pool:
            with HttpGateway(PoolService(pool)) as gw:
                sock, handle, status, headers = raw_http_post(
                    gw.http_host, gw.http_port, "/v1/stream",
                    {"requests": requests, "chunk": 1},
                )
                try:
                    assert status == 200
                    assert headers["transfer-encoding"] == "chunked"
                    assert headers["content-type"] == "application/x-ndjson"
                    arrivals = list(read_chunked_ndjson(handle))
                finally:
                    handle.close()
                    sock.close()
        assert len(arrivals) == len(requests)
        assert all(obj["ok"] for _, obj in arrivals)
        first_at, last_at = arrivals[0][0], arrivals[-1][0]
        # Each per-request flush sleeps `delay`, so a stream that only
        # flushed once would deliver everything in one burst; incremental
        # flushing spreads arrivals over >= (n-1) x delay.
        assert last_at - first_at >= 2 * delay

    def test_stream_sheds_oversized_subbatches_inline(self):
        requests = [{"app": "search", "n_threads": 2} for _ in range(4)]
        with WorkerPool(workers=2, mode="inline") as pool:
            service = PoolService(pool, AdmissionController(max_inflight=1))
            with HttpGateway(service) as gw:
                sock, handle, status, _ = raw_http_post(
                    gw.http_host, gw.http_port, "/v1/stream",
                    {"requests": requests, "chunk": 2},
                )
                try:
                    assert status == 200
                    replies = [obj for _, obj in read_chunked_ndjson(handle)]
                finally:
                    handle.close()
                    sock.close()
        # Sub-batches of 2 exceed the budget of 1: every line is a 429
        # envelope with a retry hint, streamed rather than dropped.
        assert len(replies) == 4
        assert all(r["code"] == 429 for r in replies)
        assert all(r["retry_after_s"] > 0 for r in replies)

    def test_bad_chunk_value_is_400(self, gateway):
        status, _, payload = http_json(
            gateway, "POST", "/v1/stream",
            {"requests": [{"app": "search"}], "chunk": -1},
        )
        assert status == 400 and "chunk" in payload["error"]


class TestConnectionHygiene:
    def test_idle_connections_are_reaped(self):
        with WorkerPool(workers=1, mode="inline") as pool:
            with HttpGateway(PoolService(pool), idle_timeout_s=0.3) as gw:
                sock = socket.create_connection(
                    (gw.http_host, gw.http_port), timeout=10.0
                )
                try:
                    sock.settimeout(5.0)
                    # Send nothing: the gateway must close on us.
                    assert sock.recv(1) == b""
                finally:
                    sock.close()
                deadline = time.time() + 2.0
                while gw.counters["idle_reaped"] == 0 and time.time() < deadline:
                    time.sleep(0.01)
                assert gw.counters["idle_reaped"] >= 1

    def test_http10_defaults_to_connection_close(self):
        with WorkerPool(workers=1, mode="inline") as pool:
            with HttpGateway(PoolService(pool)) as gw:
                sock = socket.create_connection(
                    (gw.http_host, gw.http_port), timeout=10.0
                )
                try:
                    sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
                    sock.settimeout(5.0)
                    handle = sock.makefile("rb")
                    response = handle.read()  # EOF: the server closed on us
                finally:
                    sock.close()
        assert b" 200 " in response.split(b"\r\n", 1)[0]
        assert b"Connection: close" in response

    def test_internal_errors_answer_500_instead_of_dropping(self):
        with WorkerPool(workers=1, mode="inline") as pool:
            service = PoolService(pool)
            with HttpGateway(service) as gw:
                def explode():
                    raise RuntimeError("stats blew up")

                service.stats_payload = explode
                status, _, payload = http_json(gw, "GET", "/v1/stats")
                assert status == 500
                assert "internal error" in payload["error"]
                assert gw.counters["internal_errors"] == 1
                # The gateway survives: the next connection still serves.
                status, _, payload = http_json(gw, "GET", "/healthz")
                assert status == 200 and payload["ok"]

    def test_malformed_request_line_is_400_and_closes(self):
        with WorkerPool(workers=1, mode="inline") as pool:
            with HttpGateway(PoolService(pool)) as gw:
                sock = socket.create_connection(
                    (gw.http_host, gw.http_port), timeout=10.0
                )
                try:
                    sock.sendall(b"NOT-HTTP\r\n\r\n")
                    handle = sock.makefile("rb")
                    status_line = handle.readline().decode("ascii")
                    assert " 400 " in status_line
                    rest = handle.read()  # server closes after the error
                    assert b"malformed request line" in rest
                finally:
                    sock.close()


class TestBackpressureParity:
    """Both front-ends share one controller and shed identically."""

    def test_ndjson_and_http_shed_from_one_budget(self):
        from repro.runtime.client import RuntimeClient

        controller = AdmissionController(max_inflight=0)
        pool = WorkerPool(workers=2, mode="inline")
        with pool:
            service = PoolService(pool, controller)
            server = RuntimeServer(("127.0.0.1", 0), service=service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                with HttpGateway(service) as gw:
                    status, headers, http_reply = http_json(
                        gw, "POST", "/v1/request",
                        {"app": "search", "n_threads": 2},
                    )
                    host, port = server.server_address[:2]
                    with RuntimeClient(host, port, timeout=30.0) as client:
                        tcp_reply = client.request(app="search", n_threads=2)
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
        assert status == 429
        assert "retry-after" in headers
        assert http_reply["code"] == 429
        assert tcp_reply["code"] == 429
        assert tcp_reply["retry_after_s"] > 0
        # One shared controller counted both front doors' rejections.
        assert controller.snapshot().rejected == 2
