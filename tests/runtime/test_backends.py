"""Backend registry: dispatch to all four serving targets."""

import pytest

from repro.apps import REGISTRY
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.runtime.backends import (
    BackendError,
    BackendRegistry,
    BackendRequestContext,
)
from repro.runtime.engine import Engine, Request

ALL_BACKENDS = ["vrda", "cpu", "gpu", "aurochs"]


class TestRegistry:
    def test_all_four_backends_registered(self):
        registry = BackendRegistry()
        assert set(registry.names()) == set(ALL_BACKENDS)
        for name in ALL_BACKENDS:
            assert registry.get(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            BackendRegistry().get("tpu")

    def test_only_vrda_needs_a_program(self):
        registry = BackendRegistry()
        assert registry.get("vrda").needs_program
        for name in ("cpu", "gpu", "aurochs"):
            assert not registry.get(name).needs_program


class TestDispatchThroughEngine:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_each_backend_serves_an_app_request(self, backend):
        engine = Engine()
        [response] = engine.process(
            [Request(app="hash-table", n_threads=2, backend=backend)])
        assert response.ok, response.error
        assert response.backend == backend
        assert response.modeled_gbs > 0
        assert response.modeled_runtime_s > 0
        if backend == "vrda":
            assert response.correct is True
            assert response.outputs
        else:
            assert response.correct is None
            assert response.outputs is None

    def test_analytic_backends_match_baseline_models(self):
        spec = REGISTRY.get("murmur3")
        engine = Engine()
        [cpu, gpu] = engine.process([
            Request(app="murmur3", n_threads=2, backend="cpu"),
            Request(app="murmur3", n_threads=2, backend="gpu"),
        ])
        assert cpu.modeled_gbs == pytest.approx(
            CPUModel().throughput_gbs(spec))
        assert gpu.modeled_gbs == pytest.approx(
            GPUModel().throughput_gbs(spec))

    def test_aurochs_is_modeled_slower_than_vrda(self):
        registry = BackendRegistry()
        spec = REGISTRY.get("kD-tree")
        ctx = BackendRequestContext(spec=spec, instance=None, program=None,
                                    n_threads=4)
        aurochs = registry.get("aurochs").execute(ctx)
        analytic_vrda = registry.get("aurochs")._analytic_vrda_gbs(spec, 4)
        assert aurochs.modeled_gbs < analytic_vrda
        # The modeled gap matches the Section VI-B(c) slowdown factors.
        from repro.baselines.aurochs import AurochsModel

        assert analytic_vrda / aurochs.modeled_gbs == pytest.approx(
            max(1.0, AurochsModel().speedup_of_revet()))

    def test_analytic_backend_rejects_raw_source(self):
        registry = BackendRegistry()
        ctx = BackendRequestContext(spec=None, instance=None, program=None)
        for name in ("cpu", "gpu", "aurochs"):
            with pytest.raises(BackendError):
                registry.get(name).execute(ctx)

    def test_vrda_requires_program_and_instance(self):
        registry = BackendRegistry()
        with pytest.raises(BackendError):
            registry.get("vrda").execute(
                BackendRequestContext(spec=None, instance=None, program=None))
