"""Chaos suite: fault plans, the self-healing recovery matrix, degradation.

The contract under test (see ``docs/operations.md``): an injected or real
worker loss is *masked* — the pool respawns the worker, replays its batches
onto the pool within the same flush, and the responses stay byte-identical
(PAYLOAD_FIELDS) to a fault-free run; repeated loss trips the circuit
breaker, which closes the pool and (through ``PoolService``) shuts the
server down cleanly.
"""

import json
import socket
import threading
import time

import pytest

from repro.runtime.client import ConnectionLostError, RuntimeClient
from repro.runtime.faults import (
    Fault,
    FaultPlan,
    FaultPlanError,
    load_fault_plan,
)
from repro.runtime.gateway.admission import PoolService
from repro.runtime.pool import PoolError, WorkerPool
from repro.runtime.trace import TraceConfig, synthetic_trace

#: Mirrors tests/runtime/test_pool.py: the fields that must be bit-identical
#: however (and through however many respawns) the trace is executed.
PAYLOAD_FIELDS = ("request_id", "app", "backend", "ok", "error", "outputs",
                  "correct", "modeled_gbs", "modeled_runtime_s", "batch_id")

TRACE = TraceConfig(size=16, apps=["hash-table", "search"],
                    backend_mix={"vrda": 1.0}, distinct_shapes=2,
                    n_threads=2, seed=7)


def payload(response):
    return tuple(getattr(response, name) for name in PAYLOAD_FIELDS)


def payloads(report):
    return [payload(r) for r in report.responses]


def fault_free(mode="inline", **kwargs):
    """The reference run the faulted pools must match byte-for-byte."""
    with WorkerPool(workers=2, mode=mode, **kwargs) as pool:
        return payloads(pool.process(synthetic_trace(TRACE)))


class TestFaultPlanParsing:
    def test_round_trips_through_json(self):
        plan = FaultPlan.from_json(
            '[{"kind": "kill", "worker": 1, "after_batches": 2},'
            ' {"kind": "hang", "worker": 0, "delay_s": 0.5, "repeat": true}]'
        )
        assert len(plan.faults) == 2
        assert plan.faults[0] == Fault(kind="kill", worker=1, after_batches=2)
        assert FaultPlan.from_spec(plan.to_dict()) == plan

    def test_envelope_form_accepted(self):
        plan = FaultPlan.from_spec({"faults": [{"kind": "kill", "worker": 0}]})
        assert plan.faults[0].kind == "kill"

    def test_rejects_unknown_kind_and_fields(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec([{"kind": "explode", "worker": 0}])
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec([{"kind": "kill", "worker": 0, "when": "now"}])
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec([{"kind": "kill"}])  # no worker
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec([{"kind": "kill", "worker": -1}])
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{not json")

    def test_load_fault_plan_inline_file_and_empty(self, tmp_path):
        assert load_fault_plan(None) is None
        assert load_fault_plan("  ") is None
        assert load_fault_plan("[]") is None
        inline = load_fault_plan('[{"kind": "kill", "worker": 0}]')
        assert inline.faults[0].worker == 0
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"kind": "hang", "worker": 1}]}')
        from_file = load_fault_plan(f"@{path}")
        assert from_file.faults[0].kind == "hang"
        with pytest.raises(FaultPlanError):
            load_fault_plan(f"@{tmp_path / 'missing.json'}")

    def test_respawn_plan_strips_consumed_one_shots(self):
        plan = FaultPlan.from_spec([
            {"kind": "kill", "worker": 0},
            {"kind": "kill", "worker": 0, "repeat": True},
            {"kind": "kill", "worker": 1},
        ])
        respawned = plan.respawn_plan(0)
        assert [(f.kind, f.worker, f.repeat) for f in respawned.faults] == \
            [("kill", 0, True), ("kill", 1, False)]
        # A plan that empties out becomes None so the injector is skipped.
        assert FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0}]
        ).respawn_plan(0) is None

    def test_pool_rejects_out_of_range_worker(self):
        plan = FaultPlan.from_spec([{"kind": "kill", "worker": 7}])
        with pytest.raises(PoolError):
            WorkerPool(workers=2, fault_plan=plan)


class TestInlineRecoveryMatrix:
    """The deterministic (inline) arm: every fault path, no processes."""

    def _plan(self, **fields):
        return FaultPlan.from_spec([{"kind": "kill", "worker": 0, **fields}])

    def test_kill_before_first_batch_is_masked(self):
        reference = fault_free()
        with WorkerPool(workers=2, mode="inline",
                        fault_plan=self._plan(after_batches=0)) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert payloads(report) == reference
        assert report.worker_restarts == 1
        assert report.replayed_batches >= 1

    def test_kill_mid_flush_is_masked_byte_identically(self):
        reference = fault_free()
        with WorkerPool(workers=2, mode="inline",
                        fault_plan=self._plan(after_batches=1)) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert payloads(report) == reference
        assert report.worker_restarts == 1
        assert pool.worker_restarts == 1
        assert pool.recent_restarts() == 1

    def test_respawned_worker_keeps_serving_later_flushes(self):
        with WorkerPool(workers=2, mode="inline",
                        fault_plan=self._plan(after_batches=1)) as pool:
            first = pool.process(synthetic_trace(TRACE))
            assert first.worker_restarts == 1
            second = pool.process(synthetic_trace(TRACE))
        # The one-shot fault was consumed by the respawn: the next flush is
        # fault-free and fully served.
        assert second.worker_restarts == 0
        assert all(r.error is None for r in second.responses)
        assert pool.worker_restarts == 1

    def test_fault_counters_surface_in_report_and_stats(self):
        with WorkerPool(workers=2, mode="inline",
                        fault_plan=self._plan(after_batches=1)) as pool:
            report = pool.process(synthetic_trace(TRACE))
            stats = pool.stats_row()
        wire = report.to_dict()
        assert wire["worker_restarts"] == 1
        assert wire["replayed_batches"] >= 1
        assert stats["faults"]["worker_restarts"] == 1
        assert stats["faults"]["recent_restarts"] == 1
        assert stats["faults"]["max_worker_restarts"] == 5

    def test_circuit_breaker_trips_on_repeated_loss(self):
        plan = FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0, "repeat": True}]
        )
        pool = WorkerPool(workers=1, mode="inline", fault_plan=plan,
                          max_worker_restarts=2)
        with pytest.raises(PoolError, match="circuit breaker"):
            pool.process(synthetic_trace(TRACE))
        # The breaker closed the pool: no zombie serving afterwards.
        with pytest.raises(PoolError):
            pool.flush()

    def test_self_healing_disabled_means_first_loss_is_fatal(self):
        pool = WorkerPool(workers=2, mode="inline",
                          fault_plan=self._plan(after_batches=0),
                          max_worker_restarts=0)
        with pytest.raises(PoolError):
            pool.process(synthetic_trace(TRACE))

    def test_poison_batch_is_abandoned_not_looped(self):
        # Every worker dies on its very first batch, forever: each batch
        # gets max_batch_replays chances, then turns into error responses
        # instead of replaying until the breaker kills the whole pool.
        plan = FaultPlan.from_spec([
            {"kind": "kill", "worker": 0, "repeat": True},
        ])
        with WorkerPool(workers=1, mode="inline", fault_plan=plan,
                        max_worker_restarts=100, max_batch_replays=2) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert len(report.responses) == TRACE.size
        assert all("worker failure" in (r.error or "") for r in
                   report.responses)
        assert report.worker_restarts > 0


class TestProcessRecoveryMatrix:
    """The real-death arm: children actually exit, pipes actually break."""

    def test_injected_mid_flush_kill_is_masked_byte_identically(self):
        reference = fault_free(mode="process")
        plan = FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0, "after_batches": 1}]
        )
        with WorkerPool(workers=2, mode="process", fault_plan=plan) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert payloads(report) == reference
        assert report.worker_restarts == 1
        assert report.replayed_batches >= 1

    def test_dropped_reply_is_detected_as_hang_and_recovered(self):
        reference = fault_free(mode="process")
        plan = FaultPlan.from_spec([{"kind": "drop-reply", "worker": 0}])
        with WorkerPool(workers=2, mode="process", fault_plan=plan,
                        hang_cold_deadline_s=5.0) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert payloads(report) == reference
        assert report.worker_restarts == 1

    def test_corrupt_disk_cache_entry_is_a_miss_not_an_error(self, tmp_path):
        plan = FaultPlan.from_spec(
            [{"kind": "corrupt-cache", "worker": 0, "after_batches": 1}]
        )
        with WorkerPool(workers=1, mode="process", fault_plan=plan,
                        disk_cache_dir=str(tmp_path)) as pool:
            report = pool.process(synthetic_trace(TRACE))
        assert all(r.error is None for r in report.responses)
        # A fresh pool over the same (corrupted) disk tier must still serve:
        # the bad entry loads as a miss, gets unlinked, and is recompiled.
        with WorkerPool(workers=1, mode="process",
                        disk_cache_dir=str(tmp_path)) as pool:
            again = pool.process(synthetic_trace(TRACE))
        assert all(r.error is None for r in again.responses)

    def test_respawn_then_serve_across_flushes(self):
        plan = FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0, "after_batches": 1}]
        )
        with WorkerPool(workers=2, mode="process", fault_plan=plan) as pool:
            first = pool.process(synthetic_trace(TRACE))
            second = pool.process(synthetic_trace(TRACE))
        assert first.worker_restarts == 1
        assert second.worker_restarts == 0
        assert all(r.error is None for r in second.responses)


class TestServiceDegradation:
    """PoolService: transient loss degrades; breaker death shuts down."""

    def test_transient_loss_keeps_serving_and_reports_degraded(self):
        plan = FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0, "after_batches": 1}]
        )
        pool = WorkerPool(workers=2, mode="inline", fault_plan=plan)
        service = PoolService(pool)
        failures = []
        service.on_failure(lambda: failures.append(1))
        with pool:
            result = service.serve_payloads(
                [r.to_dict() for r in synthetic_trace(TRACE)]
            )
            health = service.health_payload()
            stats = service.stats_payload()
        # Goodput never dropped to zero and the failure path never fired.
        assert all(r["ok"] for r in result.results)
        assert failures == []
        assert health["ok"] and health["degraded"]
        assert health["worker_restarts"] == 1
        assert stats["health"]["degraded"]
        assert stats["pool"]["faults"]["worker_restarts"] == 1

    def test_healthy_pool_reports_not_degraded(self):
        pool = WorkerPool(workers=1, mode="inline")
        service = PoolService(pool)
        with pool:
            service.serve_payloads(
                [{"app": "search", "n_threads": 2, "seed": 0}]
            )
            health = service.health_payload()
        assert health == {"ok": True, "degraded": False,
                          "recent_restarts": 0, "worker_restarts": 0,
                          "replayed_batches": 0}

    def test_breaker_trip_fires_failure_callbacks(self):
        plan = FaultPlan.from_spec(
            [{"kind": "kill", "worker": 0, "repeat": True}]
        )
        pool = WorkerPool(workers=1, mode="inline", fault_plan=plan,
                          max_worker_restarts=1)
        service = PoolService(pool)
        fired = threading.Event()
        service.on_failure(fired.set)
        result = service.serve_payloads(
            [{"app": "search", "n_threads": 2, "seed": 0}]
        )
        assert fired.is_set()
        assert all(not r["ok"] for r in result.results)
        assert all("shutting down" in r["error"] for r in result.results)


class _FlakyServer:
    """Accepts connections; drops the first ``drops`` mid-round-trip."""

    def __init__(self, drops=1):
        self.drops = drops
        self.connections = 0
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            with connection:
                line = connection.makefile("rb").readline()
                if not line:
                    continue
                if self.connections <= self.drops:
                    continue  # close without replying: mid-round-trip loss
                reply = {"ok": True, "echo": json.loads(line).get("app")}
                connection.sendall(json.dumps(reply).encode() + b"\n")

    def close(self):
        self._listener.close()


class TestClientReconnect:
    def test_request_reconnects_after_mid_roundtrip_loss(self):
        server = _FlakyServer(drops=1)
        try:
            with RuntimeClient("127.0.0.1", server.port, timeout=10.0,
                               backoff_s=0.01) as client:
                reply = client.request(app="search")
            assert reply == {"ok": True, "echo": "search"}
            assert server.connections == 2  # dropped once, healed once
        finally:
            server.close()

    def test_reconnect_budget_zero_surfaces_the_loss(self):
        server = _FlakyServer(drops=1)
        try:
            with RuntimeClient("127.0.0.1", server.port, timeout=10.0,
                               reconnect_retries=0) as client:
                with pytest.raises(ConnectionLostError):
                    client.request(app="search")
        finally:
            server.close()

    def test_exhausted_reconnect_budget_surfaces_the_loss(self):
        server = _FlakyServer(drops=10)
        try:
            with RuntimeClient("127.0.0.1", server.port, timeout=10.0,
                               reconnect_retries=2,
                               backoff_s=0.01) as client:
                with pytest.raises(ConnectionLostError):
                    client.request(app="search")
            assert server.connections == 3  # initial + 2 reconnects
        finally:
            server.close()


class TestRestartWindow:
    def test_old_restarts_age_out_of_the_breaker_window(self):
        pool = WorkerPool(workers=1, mode="inline", restart_window_s=0.05)
        # Simulate a respawn long enough ago to have aged out.
        pool._restart_times = [time.monotonic() - 1.0]
        pool.worker_restarts = 1
        assert pool.recent_restarts() == 0
        with pool:
            report = pool.process(synthetic_trace(TRACE))
        assert all(r.error is None for r in report.responses)
