"""Engine-level oracle: both executors serve byte-identical responses.

CI's bit-identity gate: every registered servable app is served through two
engines that differ only in ``executor=``, and the JSON wire form of every
response — outputs, oracle verdicts, modeled latency, cache flags — must be
byte-for-byte equal, along with the cache counters.
"""

import json

import pytest

from repro.apps import REGISTRY
from repro.core.columnar import HAVE_NUMPY
from repro.runtime.engine import Engine, Request

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _serve(executor: str, app: str):
    engine = Engine(executor=executor)
    # Three requests: two identical (the second must be a result-cache hit,
    # identically on both engines) and one distinct shape.
    requests = [
        Request(app=app, n_threads=4, seed=0),
        Request(app=app, n_threads=4, seed=0),
        Request(app=app, n_threads=2, seed=1),
    ]
    responses = engine.process(requests)
    wire = [json.dumps(r.to_dict(), sort_keys=True) for r in responses]
    stats = {
        "program": engine.program_cache_stats.as_dict(),
        "result": engine.result_cache_stats.as_dict(),
        "backends": dict(engine.backend_counts),
    }
    return wire, stats


@requires_numpy
@pytest.mark.parametrize("app", sorted(REGISTRY.servable_names()))
def test_engine_responses_bit_identical(app):
    token_wire, token_stats = _serve("token", app)
    columnar_wire, columnar_stats = _serve("columnar", app)
    assert columnar_wire == token_wire
    assert columnar_stats == token_stats
    # The trace really exercised both cache tiers and the oracle.
    assert token_stats["result"]["hits"] >= 1
    for line in token_wire:
        payload = json.loads(line)
        assert payload["ok"] is True
        assert payload["correct"] is True
