"""Cache-affinity admission: policy semantics and the end-to-end hit-rate win."""

import pytest

from repro.runtime.pool import WorkerPool
from repro.runtime.scheduler import ShardScheduler
from repro.runtime.trace import TraceConfig, synthetic_trace
from repro.sim.policies import (
    POLICIES,
    CacheAffinityPolicy,
    make_policy,
    run_admission,
)

MIXED_TRACE = TraceConfig(
    size=500,
    apps=["hash-table", "search", "huff-enc", "murmur3", "strlen", "ip2int",
          "isipv4"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=42,
)


class TestPolicyUnit:
    def test_registered(self):
        assert "cache-affinity" in POLICIES
        policy = make_policy("cache-affinity")
        assert isinstance(policy, CacheAffinityPolicy)
        assert policy.uses_keys and policy.uses_feedback

    def test_prefers_resident_worker(self):
        policy = CacheAffinityPolicy()
        policy.seed([["a"], ["b"], []])
        assert policy.choose([1, 1, 1], [0.0, 0.0, 0.0], "b") == 1
        assert policy.choose([1, 1, 1], [5.0, 0.0, 0.0], "a") == 0

    def test_resident_but_busy_worker_is_skipped(self):
        policy = CacheAffinityPolicy()
        policy.seed([["a"], []])
        # Worker 0 holds the key but has no free buffer: fall back.
        assert policy.choose([0, 1], [1.0, 0.0], "a") == 1

    def test_least_pending_breaks_residency_ties(self):
        policy = CacheAffinityPolicy()
        policy.seed([["a"], ["a"], ["a"]])
        assert policy.choose([1, 1, 1], [3.0, 1.0, 2.0], "a") == 1

    def test_unknown_key_falls_back_round_robin(self):
        policy = CacheAffinityPolicy()
        picks = [policy.choose([1, 1, 1], [0.0, 0.0, 0.0], f"k{i}")
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_waits_when_no_buffer_free(self):
        policy = CacheAffinityPolicy()
        assert policy.choose([0, 0], [1.0, 1.0], "a") is None

    def test_record_is_lru_bounded(self):
        policy = CacheAffinityPolicy(cache_capacity=2)
        for key in ("a", "b", "c"):
            policy.record(0, key)
        assert policy.resident_keys()[0] == ["b", "c"]
        policy.record(0, "b")  # touch refreshes recency
        policy.record(0, "d")
        assert policy.resident_keys()[0] == ["b", "d"]

    def test_reset_keeps_residency(self):
        policy = CacheAffinityPolicy()
        policy.record(1, "a")
        policy.reset()
        assert policy.choose([1, 1], [0.0, 0.0], "a") == 1
        policy.clear_residency()
        assert policy.resident_keys() == []


class TestKeyedAdmission:
    def test_repeated_keys_stick_to_their_worker(self):
        result = run_admission(
            [1.0] * 8, [1.0, 1.0], [4, 4], CacheAffinityPolicy(),
            task_keys=["x", "y", "x", "y", "x", "y", "x", "y"])
        by_key = {"x": set(), "y": set()}
        for key, worker in zip("xyxyxyxy", result.assignments):
            by_key[key].add(worker)
        assert by_key["x"] == {0} and by_key["y"] == {1}

    def test_key_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_admission([1.0] * 3, [1.0], [4], "cache-affinity",
                          task_keys=["a"])

    def test_keys_are_ignored_by_key_free_policies(self):
        result = run_admission([1.0] * 4, [1.0, 1.0], [4, 4], "round-robin",
                               task_keys=["a", "a", "a", "a"])
        assert result.assignments == [0, 1, 0, 1]

    def test_scheduler_threads_keys_through(self):
        scheduler = ShardScheduler(workers=2, policy="cache-affinity")
        report = scheduler.dispatch([1.0] * 6, keys=["p", "q", "p", "q", "p",
                                                     "q"])
        assert report.policy == "cache-affinity"
        assert len(set(report.assignments[0::2])) == 1  # all 'p' together
        assert len(set(report.assignments[1::2])) == 1  # all 'q' together


class TestEndToEndHitRate:
    def test_affinity_strictly_beats_round_robin_on_mixed_trace(self):
        """Acceptance: 500-request mixed-app trace, affinity > round-robin."""
        rates = {}
        snapshots = {}
        for policy in ("round-robin", "cache-affinity"):
            with WorkerPool(workers=4, mode="inline", policy=policy,
                            cache_capacity=2) as pool:
                report = pool.process(synthetic_trace(MIXED_TRACE))
            assert len(report.responses) == MIXED_TRACE.size
            assert all(r.ok for r in report.responses)
            rates[policy] = report.program_hit_rate()
            snapshots[policy] = report.workers
        assert rates["cache-affinity"] > rates["round-robin"]
        # The win comes from fewer compiles, i.e. strictly fewer misses.
        misses = {policy: sum(s.program_cache.misses for s in workers)
                  for policy, workers in snapshots.items()}
        assert misses["cache-affinity"] < misses["round-robin"]
