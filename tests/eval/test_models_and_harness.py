"""Tests for the resource model, performance models, baselines, and harness."""

from repro.apps import REGISTRY
from repro.baselines.aurochs import AurochsModel
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.compiler import CompileOptions
from repro.core.machine import DEFAULT_MACHINE
from repro.dataflow.resources import estimate_resources
from repro.eval import (
    aurochs_comparison,
    fig12_optimization_impact,
    fig13_hierarchy_removal,
    fig14_load_balancing,
    format_rows,
    table3_applications,
    table4_resources,
    table5_performance,
    table5_summary,
)
from repro.sim.load_balance import LoadBalanceSimulator
from repro.sim.perf_model import VRDAPerformanceModel, WorkloadProfile


class TestResourceEstimator:
    def test_breakdown_fits_machine_and_scales(self):
        spec = REGISTRY.get("murmur3")
        program = spec.compile()
        breakdown = estimate_resources(program, app_name="murmur3", max_outer=14)
        assert breakdown.outer_parallelism >= 1
        assert breakdown.total.fits(DEFAULT_MACHINE)
        assert breakdown.lanes >= DEFAULT_MACHINE.lanes
        row = breakdown.as_row()
        assert row["total_cu"] >= row["inner_cu"]

    def test_disabling_optimizations_does_not_reduce_resources(self):
        spec = REGISTRY.get("hash-table")
        optimized = estimate_resources(spec.compile(), max_outer=16)
        unoptimized = estimate_resources(
            spec.compile(CompileOptions.none()), max_outer=16)
        assert unoptimized.total.cu >= optimized.total.cu

    def test_max_outer_cap_respected(self):
        spec = REGISTRY.get("isipv4")
        capped = estimate_resources(spec.compile(), max_outer=3)
        assert capped.outer_parallelism <= 3


class TestPerformanceModels:
    def _profile(self, random_accesses=0.0, bulk_bytes=64.0, iters=16.0):
        return WorkloadProfile(
            threads=8, app_bytes_per_thread=64.0,
            dram_bulk_bytes_per_thread=bulk_bytes,
            dram_random_accesses_per_thread=random_accesses,
            iterations_per_thread=iters)

    def test_dram_bound_scales_with_traffic(self):
        model = VRDAPerformanceModel()
        spec = REGISTRY.get("murmur3")
        resources = estimate_resources(spec.compile(), max_outer=14)
        light = model.throughput("a", self._profile(bulk_bytes=64), resources)
        heavy = model.throughput("b", self._profile(bulk_bytes=256), resources)
        assert light.dram_bound_gbs > heavy.dram_bound_gbs

    def test_random_access_pays_activation_cost(self):
        model = VRDAPerformanceModel()
        spec = REGISTRY.get("hash-table")
        resources = estimate_resources(spec.compile(), max_outer=16)
        streaming = model.throughput("s", self._profile(), resources)
        random = model.throughput("r", self._profile(random_accesses=4.0), resources)
        assert random.dram_bound_gbs < streaming.dram_bound_gbs

    def test_ideal_speedups_at_least_one(self):
        model = VRDAPerformanceModel()
        spec = REGISTRY.get("isipv4")
        resources = estimate_resources(spec.compile(), max_outer=27)
        ideal = model.ideal_speedups("isipv4", self._profile(), resources)
        assert ideal["SND"] >= ideal["D"] >= 1.0 - 1e-9
        assert ideal["SND"] >= ideal["SN"] >= 1.0 - 1e-9

    def test_gpu_model_mechanisms(self):
        gpu = GPUModel()
        assert gpu.throughput_gbs(REGISTRY.get("kD-tree")) < 10
        assert gpu.throughput_gbs(REGISTRY.get("murmur3")) <= 900.0
        assert gpu.throughput_gbs(REGISTRY.get("isipv4")) < 900.0

    def test_cpu_model_bandwidth_ceiling(self):
        cpu = CPUModel()
        for name in ("isipv4", "murmur3", "hash-table"):
            assert 0 < cpu.throughput_gbs(REGISTRY.get(name)) <= 205.0

    def test_aurochs_model_exceeds_paper_threshold(self):
        assert AurochsModel().speedup_of_revet() > 11.0


class TestLoadBalanceSimulator:
    def test_slow_region_receives_less_work(self):
        sim = LoadBalanceSimulator(regions=8, slow_region=0, slow_factor=1.3)
        loads = sim.run(100_000)
        assert loads[0].share_percent < 100.0 / 8
        assert max(load.share_percent for load in loads[1:]) > 100.0 / 8
        assert sum(load.threads for load in loads) == 100_000

    def test_static_partitioning_is_slower(self):
        sim = LoadBalanceSimulator()
        hoisted = sim.run(50_000)
        static = sim.run(50_000, hoisted=False)
        assert sim.completion_time(hoisted) < sim.completion_time(static)

    def test_sweep_covers_all_sizes(self):
        sim = LoadBalanceSimulator()
        sweep = sim.sweep([100, 1000])
        assert set(sweep) == {100, 1000}


class TestHarness:
    def test_table3_rows(self):
        rows = table3_applications()
        assert len(rows) == 8
        assert all(row["lines"] > 10 for row in rows)

    def test_table4_single_app(self):
        rows = table4_resources(apps=["murmur3"])
        assert rows[0]["total_cu"] <= DEFAULT_MACHINE.num_cus
        assert 0 <= rows[0]["hbm2_total_%"] <= 100

    def test_table5_single_app_and_summary(self):
        rows = table5_performance(apps=["isipv4", "kD-tree"])
        assert all(row["revet_gbs"] > 0 for row in rows)
        summary = table5_summary(rows)
        assert summary["area_adjusted_gpu_speedup"] > summary["gpu_speedup_geomean"]

    def test_fig12_subset(self):
        rows = fig12_optimization_impact(apps=["hash-table"])
        assert rows[0]["no_pack_cu_x"] >= 1.0

    def test_fig13_and_fig14_shapes(self):
        f13 = fig13_hierarchy_removal()
        assert f13[-1]["perf_removed"] > f13[-1]["perf_shared"]
        f14 = fig14_load_balancing(sizes=[10_000, 100_000])
        assert all(r["slow_region_%"] < r["equal_share_%"] for r in f14)

    def test_aurochs_comparison_dict(self):
        result = aurochs_comparison()
        assert result["revet_speedup_x"] > result["timeout_overhead_x"]

    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in text and "22" in text
        assert format_rows([]) == "(no rows)"
