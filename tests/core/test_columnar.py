"""Columnar executor: selection API, app-level oracle parity, fuzzing.

The columnar backend's contract is *bit-identity* with the per-token
reference executor (see ``docs/executor.md``): same memory contents, same
traffic counters, same profile, same errors.  These tests enforce it at the
``CompiledProgram.run`` level; ``tests/runtime/test_executor_parity.py``
enforces the same contract on full engine responses.
"""

import random

import pytest

from repro.apps import REGISTRY
from repro.core.columnar import (
    EXECUTOR_CHOICES,
    HAVE_NUMPY,
    ColumnarExecutor,
    make_executor,
    resolve_executor,
)
from repro.core.executor import Executor
from repro.core.graph import DFGraph

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


class TestExecutorSelection:
    def test_resolve_auto_and_none(self):
        expected = "columnar" if HAVE_NUMPY else "token"
        assert resolve_executor(None) == expected
        assert resolve_executor("auto") == expected

    def test_resolve_explicit(self):
        assert resolve_executor("token") == "token"
        if HAVE_NUMPY:
            assert resolve_executor("columnar") == "columnar"

    def test_resolve_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("vectorised")

    def test_choices_cover_resolver(self):
        for name in EXECUTOR_CHOICES:
            assert resolve_executor(name) in ("columnar", "token")

    def test_make_executor_types(self):
        graph = DFGraph()
        assert type(make_executor(graph, executor="token")) is Executor
        if HAVE_NUMPY:
            assert isinstance(make_executor(graph, executor="columnar"),
                              ColumnarExecutor)


def _memory_state(memory):
    """Everything observable about a memory system after a run."""
    return {
        "dram": dict(memory._dram),
        "stats": vars(memory.stats).copy(),
        "sites": {
            name: {
                "storage": dict(site.storage),
                "live": set(site.live),
                "high_water": site.high_water,
            }
            for name, site in memory.sites().items()
        },
    }


def _profile_state(profile):
    return {
        "links": {name: (lp.elements, lp.barriers)
                  for name, lp in profile.link_stats.items()},
        "firings": dict(profile.node_firings),
        "loops": dict(profile.loop_iterations),
    }


def _run_both(program, make_instance):
    """Run one shared compiled program under both executors.

    The program MUST be compiled once and shared: separate compiles mint
    fresh node uids, so auto-generated labels/link names would differ and
    mask (or fake) real divergence.
    """
    states = {}
    for executor in ("token", "columnar"):
        instance = make_instance()
        runner = program.run(instance.memory, profile=True,
                             executor=executor, **instance.args)
        states[executor] = (
            _memory_state(instance.memory),
            _profile_state(runner.profile),
        )
    return states


@requires_numpy
@pytest.mark.parametrize("app", sorted(REGISTRY.names()))
def test_app_bit_identity(app):
    """Every registered app: identical memory, stats, and profile."""
    spec = REGISTRY.get(app)
    program = spec.compile()
    states = _run_both(program, lambda: spec.make_instance(8, 0))
    token_state, columnar_state = states["token"], states["columnar"]
    assert columnar_state[0] == token_state[0]  # memory + traffic counters
    assert columnar_state[1] == token_state[1]  # execution profile


@requires_numpy
def test_outputs_are_plain_python_ints():
    """No numpy scalar may leak into memory (it would break JSON later)."""
    spec = REGISTRY.get("murmur3")
    program = spec.compile()
    instance = spec.make_instance(4, 0)
    program.run(instance.memory, executor="columnar", **instance.args)
    for value in instance.memory.segment_data(spec.output_segment):
        assert type(value) is int


# -- property-style fuzz over random straight-line bodies -------------------

_DIVISORS = (1, 2, 3, 5, 7, 16, 255)
_SHIFTS = (0, 1, 3, 7, 13, 31)


def _random_straight_line_source(rng: random.Random, n_stmts: int) -> str:
    """A foreach over a straight-line body of random integer arithmetic."""
    lines = ["    int t0 = a[i];", "    int t1 = b[i];"]
    n_temps = 2
    for _ in range(n_stmts):
        lhs = f"t{rng.randrange(n_temps)}"
        kind = rng.randrange(10)
        if kind == 0:  # non-zero constant divisor: both executors may not trap
            expr = f"{lhs} {rng.choice(['/', '%'])} {rng.choice(_DIVISORS)}"
        elif kind == 1:  # bounded constant shift
            expr = f"{lhs} {rng.choice(['<<', '>>'])} {rng.choice(_SHIFTS)}"
        elif kind == 2:
            expr = f"{rng.choice(['-', '~', '!'])}{lhs}"
        elif kind == 3:
            expr = f"{lhs} {rng.choice(['<', '<=', '>', '>=', '==', '!='])} " \
                   f"t{rng.randrange(n_temps)}"
        else:
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            rhs = (f"t{rng.randrange(n_temps)}" if rng.random() < 0.7
                   else str(rng.choice([0, 1, 7, 0xFFFF, 2**31, 2**40])))
            expr = f"{lhs} {op} {rhs}"
        lines.append(f"    int t{n_temps} = {expr};")
        n_temps += 1
    lines.append(f"    out[i] = t{n_temps - 1};")
    body = "\n".join(lines)
    return (
        "DRAM<int> a;\nDRAM<int> b;\nDRAM<int> out;\n\n"
        "void main(int n) {\n  foreach (n) { int i =>\n"
        + body + "\n  };\n}\n"
    )


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_fuzz_straight_line_parity(seed):
    """Random straight-line graphs agree bit-for-bit across executors.

    Inputs mix small, huge (> int64 after a few multiplies), and negative
    values so both the vectorized int64 path and the exact-Python overflow
    fallback get exercised.
    """
    from repro.compiler import compile_source
    from repro.core.memory import MemorySystem

    rng = random.Random(seed)
    source = _random_straight_line_source(rng, n_stmts=rng.randint(4, 12))
    program = compile_source(source)
    n = 13

    def make_instance():
        memory = MemorySystem()
        data_rng = random.Random(seed + 1)
        pick = lambda: data_rng.choice([
            data_rng.randint(-50, 50),
            data_rng.randint(-2**62, 2**62),
            0,
        ])
        memory.dram_alloc("a", data=[pick() for _ in range(n)])
        memory.dram_alloc("b", data=[pick() for _ in range(n)])
        memory.dram_alloc("out", size=n)

        class _Instance:
            pass

        instance = _Instance()
        instance.memory = memory
        instance.args = {"n": n}
        return instance

    states = _run_both(program, make_instance)
    assert states["columnar"] == states["token"]
