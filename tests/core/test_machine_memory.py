"""Tests for the machine model (Table II) and the memory system."""

import pytest

from repro.core.machine import (
    DEFAULT_MACHINE,
    ContextLimits,
    LinkKind,
    MachineConfig,
    ResourceKind,
    ResourceUsage,
    V100_AREA_MM2,
)
from repro.core.memory import MemorySystem
from repro.errors import MachineError


class TestMachineConfig:
    def test_table2_defaults(self):
        m = DEFAULT_MACHINE
        assert m.num_cus == 200 and m.num_mus == 200 and m.num_ags == 80
        assert m.lanes == 16 and m.stages == 6
        assert m.mu_capacity_bytes == 256 * 1024 and m.mu_banks == 16
        assert m.network_vector_channels == 3 and m.network_scalar_channels == 6
        assert m.dram_bandwidth_gbs == pytest.approx(900.0)
        assert m.clock_ghz == pytest.approx(1.6)

    def test_area_ratio_vs_v100(self):
        assert V100_AREA_MM2 / DEFAULT_MACHINE.area_mm2 == pytest.approx(4.3, rel=0.05)

    def test_derived_quantities(self):
        m = DEFAULT_MACHINE
        assert m.vector_bytes == 64
        assert m.peak_vector_words_per_cycle == 16
        assert m.peak_scalar_words_per_cycle == 1
        assert m.mu_words == 64 * 1024
        assert m.dram_bytes_per_cycle == pytest.approx(900.0 / 1.6)

    def test_resource_total(self):
        assert DEFAULT_MACHINE.resource_total(ResourceKind.CU) == 200
        assert DEFAULT_MACHINE.resource_total(ResourceKind.AG) == 80

    def test_validate_rejects_bad_configs(self):
        with pytest.raises(MachineError):
            MachineConfig(num_cus=0).validate()
        with pytest.raises(MachineError):
            MachineConfig(clock_ghz=0).validate()
        DEFAULT_MACHINE.validate()

    def test_context_limits_from_machine(self):
        limits = ContextLimits.from_machine(DEFAULT_MACHINE)
        assert limits.max_ops == 6
        assert limits.max_vector_inputs == 4
        assert limits.max_regs_per_lane == 36

    def test_link_kind_values(self):
        assert LinkKind.VECTOR.value == "vector"
        assert LinkKind.SCALAR.value == "scalar"


class TestResourceUsage:
    def test_add_and_scale(self):
        a = ResourceUsage(cu=2, mu=1, ag=0)
        b = ResourceUsage(cu=1, mu=1, ag=1)
        assert (a + b).as_dict() == {"CU": 3, "MU": 2, "AG": 1}
        assert a.scaled(3).as_dict() == {"CU": 6, "MU": 3, "AG": 0}

    def test_fits_and_utilization(self):
        usage = ResourceUsage(cu=100, mu=50, ag=80)
        assert usage.fits(DEFAULT_MACHINE)
        util = usage.utilization(DEFAULT_MACHINE)
        assert util["CU"] == pytest.approx(0.5)
        assert usage.critical_resource(DEFAULT_MACHINE) == "AG"
        assert not ResourceUsage(cu=300).fits(DEFAULT_MACHINE)


class TestMemorySystem:
    def test_dram_segments_and_rw(self):
        mem = MemorySystem()
        seg = mem.dram_alloc("a", data=[1, 2, 3])
        other = mem.dram_alloc("b", size=4)
        assert other.base >= seg.base + seg.size
        assert mem.dram_read(seg.base + 1) == 2
        mem.dram_write(other.base, 9)
        assert mem.segment_data("b")[0] == 9
        assert mem.stats.dram_reads == 1 and mem.stats.dram_writes == 1

    def test_duplicate_segment_rejected(self):
        mem = MemorySystem()
        mem.dram_alloc("a", size=1)
        with pytest.raises(MachineError):
            mem.dram_alloc("a", size=1)

    def test_unknown_segment_rejected(self):
        with pytest.raises(MachineError):
            MemorySystem().segment("nope")

    def test_byte_segments_count_bytes_not_words(self):
        mem = MemorySystem()
        seg = mem.load_bytes("text", b"hello")
        mem.dram_read(seg.base)
        assert mem.stats.dram_read_bytes == 1
        assert mem.read_bytes("text") == b"hello"

    def test_sram_sites_alloc_free(self):
        mem = MemorySystem()
        p0 = mem.sram_alloc("site", buffer_words=8, max_buffers=2)
        p1 = mem.sram_alloc("site")
        assert {p0, p1} == {0, 1}
        with pytest.raises(MachineError):
            mem.sram_alloc("site")
        mem.sram_free("site", p0)
        assert mem.sram_alloc("site") == p0
        with pytest.raises(MachineError):
            mem.sram_free("site", 99)

    def test_sram_read_write(self):
        mem = MemorySystem()
        mem.sram_write("s", 12, 99)
        assert mem.sram_read("s", 12) == 99
        assert mem.sram_read("s", 13) == 0

    def test_bulk_transfers_count_dram_traffic(self):
        mem = MemorySystem()
        src = mem.dram_alloc("src", data=list(range(16)))
        dst = mem.dram_alloc("dst", size=16)
        mem.bulk_load("tile", src.base, 0, 16)
        mem.bulk_store("tile", dst.base, 0, 16)
        assert mem.segment_data("dst") == list(range(16))
        assert mem.stats.dram_read_bytes == 64
        assert mem.stats.dram_write_bytes == 64
        assert mem.stats.bulk_loads == 1 and mem.stats.bulk_stores == 1

    def test_site_high_water_tracking(self):
        mem = MemorySystem()
        site = mem.site("s", buffer_words=4, max_buffers=8)
        a = mem.sram_alloc("s")
        mem.sram_alloc("s")
        mem.sram_free("s", a)
        assert site.high_water == 2
        assert site.words_in_use == 8

    def test_stats_reset(self):
        mem = MemorySystem()
        mem.dram_alloc("a", data=[1])
        mem.dram_read(0)
        mem.stats.reset()
        assert mem.stats.dram_reads == 0
