"""Tests for the streaming tensor primitives (paper Section III-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import primitives as prim
from repro.core.sltf import Barrier, Data, data_values, decode, encode
from repro.errors import PrimitiveError


class TestElementwise:
    def test_add_two_streams(self):
        a = encode([1, 2, 3], 1)
        b = encode([10, 20, 30], 1)
        out = prim.elementwise(lambda x, y: x + y, a, b)
        assert data_values(out) == [11, 22, 33]

    def test_barriers_pass_through(self):
        a = encode([[1], [2]], 2)
        out = prim.elementwise(lambda x: x * 2, a)
        assert decode(out, 2) == [[2], [4]]

    def test_requires_inputs(self):
        with pytest.raises(PrimitiveError):
            prim.elementwise(lambda: 0)

    def test_misaligned_inputs_raise(self):
        with pytest.raises(PrimitiveError):
            prim.elementwise(lambda x, y: x, [Data(1), Barrier(1)], [Barrier(1), Data(1)])

    def test_length_mismatch_raises(self):
        with pytest.raises(PrimitiveError):
            prim.elementwise(lambda x, y: x, encode([1, 2], 1), encode([1], 1))

    def test_mismatched_barrier_levels_raise(self):
        with pytest.raises(PrimitiveError):
            prim.elementwise(lambda x, y: x, [Barrier(1)], [Barrier(2)])

    def test_map_and_const(self):
        s = encode([[1, 2]], 2)
        assert data_values(prim.map_stream(lambda v: v + 1, s)) == [2, 3]
        assert data_values(prim.constant_like(s, 9)) == [9, 9]


class TestBroadcast:
    def test_parent_value_repeats_over_children(self):
        outer = encode([100, 200], 1)
        inner = encode([[1, 2, 3], [4]], 2)
        out = prim.broadcast(outer, inner)
        assert decode(out, 2) == [[100, 100, 100], [200]]

    def test_empty_child_group_skips_parent(self):
        outer = encode([7, 8], 1)
        inner = encode([[], [1, 2]], 2)
        out = prim.broadcast(outer, inner)
        assert decode(out, 2) == [[], [8, 8]]

    def test_runs_out_of_outer_elements(self):
        with pytest.raises(PrimitiveError):
            prim.broadcast(encode([1], 1), encode([[1], [2]], 2))

    def test_levels_must_be_positive(self):
        with pytest.raises(PrimitiveError):
            prim.broadcast([], [], levels=0)

    def test_two_level_broadcast(self):
        outer = encode([5], 1)
        inner = encode([[[1, 2], [3]]], 3)
        out = prim.broadcast(outer, inner, levels=2)
        assert decode(out, 3) == [[[5, 5], [5]]]


class TestCounterReduceFlatten:
    def test_counter_expands_ranges(self):
        lo = encode([0, 0], 1)
        hi = encode([3, 1], 1)
        step = encode([1, 1], 1)
        out = prim.counter(lo, hi, step)
        assert decode(out, 2) == [[0, 1, 2], [0]]

    def test_counter_empty_range(self):
        out = prim.counter(encode([5], 1), encode([5], 1), encode([1], 1))
        assert decode(out, 2) == [[]]

    def test_counter_negative_step(self):
        out = prim.counter(encode([3], 1), encode([0], 1), encode([-1], 1))
        assert decode(out, 2) == [[3, 2, 1]]

    def test_counter_zero_step_raises(self):
        with pytest.raises(PrimitiveError):
            prim.counter(encode([0], 1), encode([1], 1), encode([0], 1))

    def test_reduce_sums_groups(self):
        stream = encode([[1, 2, 3], [4]], 2)
        out = prim.reduce_stream(lambda a, b: a + b, 0, stream)
        assert decode(out, 1) == [6, 4]

    def test_reduce_empty_tensor_semantics(self):
        # Paper Section III-A: [[]] -> [0], [[],[]] -> [0,0], [] -> [].
        def add(a, b):
            return a + b
        assert decode(prim.reduce_stream(add, 0, encode([[]], 2)), 1) == [0]
        assert decode(prim.reduce_stream(add, 0, encode([[], []], 2)), 1) == [0, 0]
        assert decode(prim.reduce_stream(add, 0, encode([], 2)), 1) == []

    def test_reduce_level_validation(self):
        with pytest.raises(PrimitiveError):
            prim.reduce_stream(lambda a, b: a + b, 0, [], level=0)

    def test_flatten_removes_hierarchy(self):
        stream = encode([[1, 2], [3]], 2)
        assert decode(prim.flatten_stream(stream), 1) == [1, 2, 3]

    def test_fork_duplicates_threads(self):
        counts = encode([2, 0, 3], 1)
        payload = encode([7, 8, 9], 1)
        out = prim.fork_stream(counts, payload)
        assert decode(out, 1) == [7, 7, 9, 9, 9]

    def test_fork_negative_count_raises(self):
        with pytest.raises(PrimitiveError):
            prim.fork_stream(encode([-1], 1), encode([1], 1))


class TestFilterMerge:
    def test_filter_keeps_true_elements(self):
        data = encode([[1, 2, 3], [4, 5]], 2)
        pred = encode([[1, 0, 1], [0, 1]], 2)
        assert decode(prim.filter_stream(data, pred), 2) == [[1, 3], [5]]

    def test_filter_misaligned_raises(self):
        with pytest.raises(PrimitiveError):
            prim.filter_stream([Data(1), Barrier(1)], [Barrier(1), Data(1)])
        with pytest.raises(PrimitiveError):
            prim.filter_stream([Data(1)], [Data(1), Barrier(1)])

    def test_partition_covers_both_branches(self):
        data = encode([1, 2, 3, 4], 1)
        pred = encode([1, 0, 0, 1], 1)
        taken, fallthrough = prim.partition_stream(data, pred)
        assert data_values(taken) == [1, 4]
        assert data_values(fallthrough) == [2, 3]

    def test_forward_merge_interleaves_within_barriers(self):
        a = encode([[1, 2], [5]], 2)
        b = encode([[3], [6, 7]], 2)
        merged = prim.forward_merge(a, b)
        out = decode(merged, 2)
        assert sorted(out[0]) == [1, 2, 3]
        assert sorted(out[1]) == [5, 6, 7]

    def test_forward_merge_barrier_mismatch_raises(self):
        with pytest.raises(PrimitiveError):
            prim.forward_merge([Barrier(1)], [Barrier(2)])
        with pytest.raises(PrimitiveError):
            prim.forward_merge([Data(1)], [Barrier(1)])

    def test_filter_then_merge_is_a_permutation_within_groups(self):
        # The if-statement contract (Figure 3): filter into two branches and
        # forward-merge them back; threads stay within their barrier group.
        data = encode([[1, 2, 3, 4], [5, 6]], 2)
        pred = encode([[1, 0, 1, 0], [0, 1]], 2)
        taken, other = prim.partition_stream(data, pred)
        merged = prim.forward_merge(taken, other)
        out = decode(merged, 2)
        assert sorted(out[0]) == [1, 2, 3, 4]
        assert sorted(out[1]) == [5, 6]

    def test_merge_many(self):
        streams = [encode([i], 1) for i in range(4)]
        assert sorted(data_values(prim.merge_many(streams))) == [0, 1, 2, 3]
        with pytest.raises(PrimitiveError):
            prim.merge_many([])


class TestWhileLoops:
    def test_while_loop_counts_down(self):
        # Threads carry (value); iterate until value reaches zero.
        stream = encode([3, 1, 0, 2], 1)
        out = prim.while_loop(stream, condition=lambda v: v > 0, step=lambda v: v - 1)
        assert sorted(data_values(out)) == [0, 0, 0, 0]

    def test_while_loop_preserves_group_structure(self):
        stream = encode([[2], [1, 3]], 2)
        out = prim.while_loop(stream, condition=lambda v: v > 0, step=lambda v: v - 1)
        decoded = decode(out, 2)
        assert len(decoded[0]) == 1 and len(decoded[1]) == 2

    def test_fb_loop_paper_iteration_counts(self):
        # Figure 4: threads t1..t4 iterate 2, 3, 1, 3 times; t3 exits first.
        counts = {"t1": 2, "t2": 3, "t3": 1, "t4": 3}
        stream = encode([("t1", 0), ("t2", 0), ("t3", 0), ("t4", 0)], 1)
        out = prim.while_loop(
            stream,
            condition=lambda s: s[1] < counts[s[0]],
            step=lambda s: (s[0], s[1] + 1),
        )
        values = data_values(out)
        assert values[0][0] == "t3"  # the thread with the fewest iterations exits first
        assert {v[0] for v in values} == {"t1", "t2", "t3", "t4"}
        assert all(v[1] == counts[v[0]] for v in values)

    def test_empty_group_passes_through(self):
        stream = encode([[], [1]], 2)
        out = prim.while_loop(stream, condition=lambda v: False, step=lambda v: v)
        assert decode(out, 2) == [[], [1]]

    def test_livelock_detection(self):
        stream = encode([1], 1)
        with pytest.raises(PrimitiveError):
            prim.while_loop(
                stream, condition=lambda v: True, step=lambda v: v, max_iterations=10
            )

    def test_missing_final_barrier_raises(self):
        with pytest.raises(PrimitiveError):
            prim.forward_backward_loop([Data(1)], lambda live: (live, live))


class TestForeach:
    def test_foreach_with_reduction(self):
        stream = encode([3, 4], 1)
        out = prim.foreach(
            stream,
            trip_counts=lambda n: range(n),
            body=lambda s: s,
            reduce_op=lambda a, b: a + b,
            reduce_init=0,
        )
        assert data_values(out) == [0 + 1 + 2, 0 + 1 + 2 + 3]

    def test_foreach_flatten_without_reduction(self):
        stream = encode([2, 1], 1)
        out = prim.foreach(stream, trip_counts=lambda n: range(n), body=lambda s: s)
        assert data_values(out) == [0, 1, 0]

    def test_foreach_empty_parent(self):
        stream = encode([0], 1)
        out = prim.foreach(
            stream,
            trip_counts=lambda n: range(n),
            body=lambda s: s,
            reduce_op=lambda a, b: a + b,
        )
        assert data_values(out) == [0]


class TestCompositionProperties:
    @given(st.lists(st.lists(st.integers(-50, 50), max_size=5), max_size=4))
    @settings(max_examples=60)
    def test_reduce_matches_python_sum(self, tensor):
        stream = encode(tensor, 2)
        out = prim.reduce_stream(lambda a, b: a + b, 0, stream)
        assert decode(out, 1) == [sum(g) for g in tensor]

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_counter_then_reduce_is_triangular(self, counts):
        lo = encode([0] * len(counts), 1)
        hi = encode(counts, 1)
        step = encode([1] * len(counts), 1)
        expanded = prim.counter(lo, hi, step)
        reduced = prim.reduce_stream(lambda a, b: a + b, 0, expanded)
        assert decode(reduced, 1) == [n * (n - 1) // 2 for n in counts]

    @given(
        st.lists(st.tuples(st.integers(-20, 20), st.booleans()), max_size=10)
    )
    @settings(max_examples=60)
    def test_partition_then_merge_preserves_multiset(self, items):
        data = encode([v for v, _ in items], 1)
        pred = encode([int(p) for _, p in items], 1)
        taken, other = prim.partition_stream(data, pred)
        merged = prim.forward_merge(taken, other)
        assert sorted(data_values(merged)) == sorted(v for v, _ in items)

    @given(st.lists(st.integers(0, 5), max_size=8))
    @settings(max_examples=60)
    def test_while_loop_terminates_with_zero_values(self, values):
        stream = encode(values, 1)
        out = prim.while_loop(stream, condition=lambda v: v > 0, step=lambda v: v - 1)
        assert data_values(out) == [0] * len(values)

    @given(st.lists(st.lists(st.integers(-10, 10), max_size=4), max_size=4))
    @settings(max_examples=60)
    def test_barriers_exit_once_and_in_order(self, tensor):
        # SLTF constraint 1: every barrier entering a primitive exits exactly
        # once, in order.  Check it for a filter (keep-all predicate).
        stream = encode(tensor, 2)
        pred = prim.constant_like(stream, 1)
        out = prim.filter_stream(stream, pred)
        assert [t for t in out if isinstance(t, Barrier)] == [
            t for t in stream if isinstance(t, Barrier)
        ]
