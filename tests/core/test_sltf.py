"""Tests for the Structured-Link Tensor Format encode/decode and utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sltf import (
    Barrier,
    Data,
    concat_streams,
    count_elements,
    data_values,
    decode,
    decode_all,
    encode,
    is_barrier,
    is_data,
    lower_barriers,
    raise_barriers,
    split_groups,
    stream_depth,
    validate_stream,
    zip_data,
)
from repro.errors import SLTFError


class TestTokens:
    def test_data_holds_value(self):
        assert Data(7).value == 7

    def test_barrier_level_must_be_positive(self):
        with pytest.raises(SLTFError):
            Barrier(0)

    def test_barrier_level_bounded(self):
        with pytest.raises(SLTFError):
            Barrier(16)

    def test_is_data_and_is_barrier(self):
        assert is_data(Data(1)) and not is_data(Barrier(1))
        assert is_barrier(Barrier(2)) and is_barrier(Barrier(2), level=2)
        assert not is_barrier(Barrier(2), level=1)
        assert not is_barrier(Data(3))


class TestPaperEncodings:
    """The exact encodings given in Section III-A of the paper."""

    def test_two_dim_example(self):
        # [[0, 1], [2]] -> 0, 1, O1, 2, O2
        assert encode([[0, 1], [2]], ndim=2) == [
            Data(0),
            Data(1),
            Barrier(1),
            Data(2),
            Barrier(2),
        ]

    def test_empty_tensor_distinctions(self):
        # [[]] vs [[],[]] vs [] have distinct encodings.
        assert encode([[]], ndim=2) == [Barrier(1), Barrier(2)]
        assert encode([[], []], ndim=2) == [Barrier(1), Barrier(1), Barrier(2)]
        assert encode([], ndim=2) == [Barrier(2)]

    def test_one_dim(self):
        assert encode([5, 6], ndim=1) == [Data(5), Data(6), Barrier(1)]
        assert encode([], ndim=1) == [Barrier(1)]

    def test_three_dim_nested(self):
        stream = encode([[[1]], []], ndim=3)
        assert stream == [Data(1), Barrier(2), Barrier(2), Barrier(3)]

    def test_trailing_empty_inner_group(self):
        assert encode([[1], []], ndim=2) == [
            Data(1),
            Barrier(1),
            Barrier(1),
            Barrier(2),
        ]

    def test_leading_empty_inner_group(self):
        assert encode([[], [1]], ndim=2) == [Barrier(1), Data(1), Barrier(2)]


class TestDecode:
    def test_roundtrip_simple(self):
        t = [[0, 1], [2]]
        assert decode(encode(t, 2), 2) == t

    def test_decode_rejects_multiple_tensors(self):
        stream = encode([1], 1) + encode([2], 1)
        with pytest.raises(SLTFError):
            decode(stream, 1)
        assert decode_all(stream, 1) == [[1], [2]]

    def test_decode_rejects_unterminated(self):
        with pytest.raises(SLTFError):
            decode([Data(1)], 1)

    def test_decode_rejects_over_rank_barrier(self):
        with pytest.raises(SLTFError):
            decode([Data(1), Barrier(3)], 2)

    def test_validate_stream(self):
        validate_stream(encode([[1, 2]], 2), 2)
        with pytest.raises(SLTFError):
            validate_stream([Data(1)], 1)


def ragged(depth: int):
    """Hypothesis strategy for ragged tensors of a given depth."""
    values = st.integers(min_value=-100, max_value=100)
    strategy = st.lists(values, max_size=4)
    for _ in range(depth - 1):
        strategy = st.lists(strategy, max_size=3)
    return strategy


class TestRoundtripProperties:
    @given(ragged(1))
    @settings(max_examples=100)
    def test_roundtrip_1d(self, tensor):
        assert decode(encode(tensor, 1), 1) == tensor

    @given(ragged(2))
    @settings(max_examples=100)
    def test_roundtrip_2d(self, tensor):
        assert decode(encode(tensor, 2), 2) == tensor

    @given(ragged(3))
    @settings(max_examples=100)
    def test_roundtrip_3d(self, tensor):
        assert decode(encode(tensor, 3), 3) == tensor

    @given(ragged(2))
    @settings(max_examples=100)
    def test_exactly_one_top_level_barrier(self, tensor):
        stream = encode(tensor, 2)
        assert sum(1 for t in stream if is_barrier(t, 2)) == 1
        assert is_barrier(stream[-1], 2)

    @given(ragged(2))
    @settings(max_examples=100)
    def test_element_count_preserved(self, tensor):
        stream = encode(tensor, 2)
        assert count_elements(stream) == sum(len(g) for g in tensor)

    @given(ragged(2), ragged(2))
    @settings(max_examples=50)
    def test_concatenated_tensors_decode_all(self, a, b):
        stream = concat_streams(encode(a, 2), encode(b, 2))
        assert decode_all(stream, 2) == [a, b]


class TestUtilities:
    def test_data_values(self):
        assert data_values(encode([[1, 2], [3]], 2)) == [1, 2, 3]

    def test_stream_depth(self):
        assert stream_depth(encode([[1]], 2)) == 2
        assert stream_depth([Data(1)]) == 0

    def test_split_groups(self):
        stream = encode([[1, 2], [3]], 2)
        groups = list(split_groups(stream, level=1))
        assert len(groups) == 2
        assert data_values(groups[0]) == [1, 2]
        assert data_values(groups[1]) == [3]

    def test_split_groups_trailing_partial(self):
        groups = list(split_groups([Data(1), Barrier(1), Data(2)], level=1))
        assert len(groups) == 2
        assert data_values(groups[1]) == [2]

    def test_lower_and_raise_barriers(self):
        stream = encode([[1], [2]], 2)
        lowered = lower_barriers(stream)
        assert stream_depth(lowered) == 1
        assert data_values(lowered) == [1, 2]
        raised = raise_barriers(stream)
        assert stream_depth(raised) == 3

    def test_lower_barriers_drops_level_one(self):
        assert lower_barriers([Data(1), Barrier(1)]) == [Data(1)]

    def test_zip_data(self):
        a = encode([1, 2], 1)
        b = encode([10, 20], 1)
        assert list(zip_data(a, b)) == [(1, 10), (2, 20)]

    def test_zip_data_misaligned_raises(self):
        with pytest.raises(SLTFError):
            list(zip_data([Data(1), Barrier(1)], [Barrier(1), Data(1)]))

    def test_zip_data_length_mismatch_raises(self):
        with pytest.raises(SLTFError):
            list(zip_data([Data(1), Barrier(1)], [Barrier(1)]))

    def test_encode_rejects_bad_rank(self):
        with pytest.raises(SLTFError):
            encode([1], 0)
        with pytest.raises(SLTFError):
            decode_all([], 0)
