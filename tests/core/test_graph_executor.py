"""Tests for structured dataflow graphs and the functional executor."""

import pytest

from repro.core.executor import Executor, run_graph, zip_streams, unzip_stream
from repro.core.graph import DFGraph, DFNode, OPCODES
from repro.core.memory import MemorySystem
from repro.core.sltf import data_values, decode, encode
from repro.errors import GraphError


def build_add_one_graph():
    g = DFGraph("add_one")
    x = g.add_input("x")
    one = g.add_node("const", [x], params={"value": 1}, name="one")
    add = g.add_node("compute", [x, one.outputs[0]], params={"fn": "add"}, name="y")
    g.set_outputs([add.outputs[0]])
    return g


class TestGraphConstruction:
    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError):
            DFNode(op="bogus")

    def test_verify_passes_for_valid_graph(self):
        g = build_add_one_graph()
        g.verify()

    def test_topo_order_detects_undefined_inputs(self):
        g = DFGraph()
        g.add_node("const", [g.add_input("a")], params={"value": 1})
        # Fabricate a node that uses a value never defined in this graph.
        other = DFGraph()
        foreign = other.add_input("foreign")
        g.add_node("compute", [foreign], params={"fn": "copy"})
        with pytest.raises(GraphError):
            g.topo_order()

    def test_verify_checks_output_defined(self):
        g = DFGraph()
        g.add_input("x")
        other = DFGraph()
        g.set_outputs([other.add_input("y")])
        with pytest.raises(GraphError):
            g.verify()

    def test_verify_node_arities(self):
        g = DFGraph()
        x = g.add_input("x")
        g.add_node("broadcast", [x], name="bad")
        with pytest.raises(GraphError):
            g.verify()

    def test_opcode_table_covers_common_ops(self):
        assert OPCODES["add"](2, 3) == 5
        assert OPCODES["select"](1, 10, 20) == 10
        assert OPCODES["select"](0, 10, 20) == 20
        assert OPCODES["shr"](-1 & 0xFFFFFFFF, 28) == 0xF
        assert OPCODES["not"](0) == 1

    def test_fresh_names_are_unique(self):
        g = DFGraph()
        a = g.add_input("x")
        b = g.add_input("x")
        assert a.name != b.name

    def test_count_ops_and_walk(self):
        g = build_add_one_graph()
        counts = g.count_ops()
        assert counts == {"const": 1, "compute": 1}
        assert len(list(g.walk())) == 2


class TestExecutorBasics:
    def test_elementwise_pipeline(self):
        out = run_graph(build_add_one_graph(), {"x": [1, 2, 3]})
        assert data_values(out["y"]) == [2, 3, 4]

    def test_missing_input_raises(self):
        with pytest.raises(GraphError):
            run_graph(build_add_one_graph(), {})

    def test_accepts_token_streams_and_nested_lists(self):
        g = build_add_one_graph()
        out = run_graph(g, {"x": encode([5], 1)})
        assert data_values(out["y"]) == [6]
        out = run_graph(g, {"x": [[1, 2], [3]]})
        assert decode(out["y"], 2) == [[2, 3], [4]]

    def test_zip_unzip_roundtrip(self):
        a = encode([[1, 2], [3]], 2)
        b = encode([[10, 20], [30]], 2)
        zipped = zip_streams(a, b)
        ra, rb = unzip_stream(zipped, 2)
        assert ra == a and rb == b

    def test_filter_node(self):
        g = DFGraph()
        x = g.add_input("x")
        p = g.add_input("p")
        f = g.add_node("filter", [x, p], name="kept")
        g.set_outputs([f.outputs[0]])
        out = run_graph(g, {"x": [1, 2, 3, 4], "p": [1, 0, 1, 0]})
        assert data_values(out["kept"]) == [1, 3]

    def test_counter_reduce_pipeline(self):
        g = DFGraph()
        lo = g.add_input("lo")
        hi = g.add_input("hi")
        step = g.add_input("step")
        cnt = g.add_node("counter", [lo, hi, step], name="i")
        red = g.add_node(
            "reduce", [cnt.outputs[0]], params={"op": "add", "init": 0}, name="sum"
        )
        g.set_outputs([red.outputs[0]])
        out = run_graph(g, {"lo": [0, 0], "hi": [4, 3], "step": [1, 1]})
        assert data_values(out["sum"]) == [6, 3]

    def test_forward_merge_node_keeps_threads_together(self):
        g = DFGraph()
        a0, a1 = g.add_input("a0"), g.add_input("a1")
        b0, b1 = g.add_input("b0"), g.add_input("b1")
        m = g.add_node(
            "forward_merge", [a0, a1, b0, b1], num_outputs=2, params={"width": 2}
        )
        g.set_outputs(list(m.outputs))
        out = run_graph(
            g,
            {"a0": [1, 2], "a1": [10, 20], "b0": [3], "b1": [30]},
        )
        pairs = set(zip(data_values(out[m.outputs[0].name]),
                        data_values(out[m.outputs[1].name])))
        assert pairs == {(1, 10), (2, 20), (3, 30)}

    def test_fork_node(self):
        g = DFGraph()
        n = g.add_input("n")
        v = g.add_input("v")
        f = g.add_node("fork", [n, v], num_outputs=2, name="forked")
        g.set_outputs(list(f.outputs))
        g.verify()
        out = run_graph(g, {"n": [2, 1], "v": [7, 9]})
        assert data_values(out[f.outputs[0].name]) == [0, 1, 0]
        assert data_values(out[f.outputs[1].name]) == [7, 7, 9]

    def test_profile_records_links_and_firings(self):
        g = build_add_one_graph()
        ex = Executor(g)
        ex.run({"x": [1, 2, 3]})
        assert ex.profile.node_firings["compute"] == 1
        assert any(p.elements == 3 for p in ex.profile.link_stats.values())


class TestMemoryNodes:
    def test_sram_alloc_read_write_free(self):
        g = DFGraph()
        trig = g.add_input("trig")
        val = g.add_input("val")
        alloc = g.add_node(
            "sram_alloc", [trig], params={"site": "buf", "buffer_words": 4}, name="ptr"
        )
        addr = g.add_node(
            "compute",
            [alloc.outputs[0], g.add_node("const", [trig], params={"value": 4}).outputs[0]],
            params={"fn": "mul"},
            name="addr",
        )
        g.add_node(
            "sram_write", [addr.outputs[0], val], params={"site": "buf"}, name="st"
        )
        load = g.add_node("sram_read", [addr.outputs[0]], params={"site": "buf"}, name="ld")
        g.add_node("sram_free", [alloc.outputs[0]], params={"site": "buf"})
        g.set_outputs([load.outputs[0]])
        mem = MemorySystem()
        out = run_graph(g, {"trig": [0, 0], "val": [11, 22]}, memory=mem)
        # NOTE: reads observe the writes because nodes execute in topo order.
        assert data_values(out["ld"]) == [11, 22]
        assert mem.stats.allocations == 2
        assert mem.stats.frees == 2

    def test_dram_read_write_and_stats(self):
        mem = MemorySystem()
        seg = mem.dram_alloc("data", data=[5, 6, 7])
        g = DFGraph()
        addr = g.add_input("addr")
        rd = g.add_node("dram_read", [addr], name="rd")
        wr_val = g.add_node("compute", [rd.outputs[0]], params={"fn": "neg"}, name="nv")
        out_addr = g.add_node(
            "compute",
            [addr, g.add_node("const", [addr], params={"value": 10}).outputs[0]],
            params={"fn": "add"},
            name="oaddr",
        )
        g.add_node("dram_write", [out_addr.outputs[0], wr_val.outputs[0]], name="wr")
        g.set_outputs([rd.outputs[0]])
        mem.dram_alloc("out", size=16)
        out = run_graph(g, {"addr": [seg.base, seg.base + 2]}, memory=mem)
        assert data_values(out["rd"]) == [5, 7]
        assert mem.stats.dram_reads == 2
        assert mem.stats.dram_writes == 2

    def test_bulk_load_store(self):
        mem = MemorySystem()
        src = mem.dram_alloc("src", data=list(range(8)))
        dst = mem.dram_alloc("dst", size=8)
        g = DFGraph()
        base = g.add_input("base")
        sram = g.add_input("sram")
        load = g.add_node(
            "bulk_load", [base, sram], params={"site": "tile", "size": 8}, name="ld"
        )
        dst_base = g.add_node("const", [load.outputs[0]], params={"value": dst.base})
        store = g.add_node(
            "bulk_store",
            [dst_base.outputs[0], sram],
            params={"site": "tile", "size": 8},
            name="st",
        )
        g.set_outputs([store.outputs[0]])
        run_graph(g, {"base": [src.base], "sram": [0]}, memory=mem)
        assert mem.segment_data("dst") == list(range(8))


class TestRegionNodes:
    def test_while_region_collatz_steps(self):
        # Count the 3n+1 steps for each input value.
        g = DFGraph("collatz")
        n = g.add_input("n")
        steps = g.add_input("steps")

        cond = DFGraph("cond")
        cn = cond.add_input("n")
        cond.add_input("steps")
        one = cond.add_node("const", [cn], params={"value": 1})
        gt = cond.add_node("compute", [cn, one.outputs[0]], params={"fn": "gt"})
        cond.set_outputs([gt.outputs[0]])

        body = DFGraph("body")
        bn = body.add_input("n")
        bs = body.add_input("steps")
        two = body.add_node("const", [bn], params={"value": 2})
        odd = body.add_node("compute", [bn, two.outputs[0]], params={"fn": "rem"})
        half = body.add_node("compute", [bn, two.outputs[0]], params={"fn": "div"})
        three = body.add_node("const", [bn], params={"value": 3})
        trip = body.add_node("compute", [bn, three.outputs[0]], params={"fn": "mul"})
        one_b = body.add_node("const", [bn], params={"value": 1})
        trip1 = body.add_node("compute", [trip.outputs[0], one_b.outputs[0]], params={"fn": "add"})
        nxt = body.add_node(
            "compute",
            [odd.outputs[0], trip1.outputs[0], half.outputs[0]],
            params={"fn": "select"},
        )
        s1 = body.add_node("compute", [bs, one_b.outputs[0]], params={"fn": "add"})
        body.set_outputs([nxt.outputs[0], s1.outputs[0]])

        loop = g.add_node("while", [n, steps], num_outputs=2, regions=[cond, body])
        g.set_outputs([loop.outputs[1]])
        g.verify()

        out = run_graph(g, {"n": [6, 1, 7], "steps": [0, 0, 0]})

        def collatz_steps(v):
            c = 0
            while v > 1:
                v = 3 * v + 1 if v % 2 else v // 2
                c += 1
            return c

        assert sorted(data_values(out[g.outputs[0].name])) == sorted(
            collatz_steps(v) for v in [6, 1, 7]
        )

    def test_foreach_region_sum_of_squares(self):
        g = DFGraph("sumsq")
        n = g.add_input("n")
        zero = g.add_node("const", [n], params={"value": 0})
        one = g.add_node("const", [n], params={"value": 1})

        body = DFGraph("body")
        idx = body.add_input("i")
        sq = body.add_node("compute", [idx, idx], params={"fn": "mul"})
        body.set_outputs([sq.outputs[0]])

        fe = g.add_node(
            "foreach",
            [zero.outputs[0], n, one.outputs[0]],
            params={"reduce_op": "add", "reduce_init": 0},
            regions=[body],
            name="total",
        )
        g.set_outputs([fe.outputs[0]])
        g.verify()
        out = run_graph(g, {"n": [3, 5, 0]})
        assert data_values(out["total"]) == [5, 30, 0]

    def test_foreach_broadcasts_parent_values(self):
        g = DFGraph("scaled")
        n = g.add_input("n")
        scale = g.add_input("scale")
        zero = g.add_node("const", [n], params={"value": 0})
        one = g.add_node("const", [n], params={"value": 1})

        body = DFGraph("body")
        idx = body.add_input("i")
        s = body.add_input("scale")
        prod = body.add_node("compute", [idx, s], params={"fn": "mul"})
        body.set_outputs([prod.outputs[0]])

        fe = g.add_node(
            "foreach",
            [zero.outputs[0], n, one.outputs[0], scale],
            params={"reduce_op": "add", "reduce_init": 0},
            regions=[body],
            name="total",
        )
        g.set_outputs([fe.outputs[0]])
        out = run_graph(g, {"n": [3, 2], "scale": [10, 100]})
        assert data_values(out["total"]) == [30, 100]

    def test_replicate_region_is_functionally_transparent(self):
        g = DFGraph("rep")
        x = g.add_input("x")
        body = DFGraph("body")
        bx = body.add_input("x")
        doubled = body.add_node("compute", [bx, bx], params={"fn": "add"})
        body.set_outputs([doubled.outputs[0]])
        rep = g.add_node("replicate", [x], params={"factor": 4}, regions=[body], name="y")
        g.set_outputs([rep.outputs[0]])
        out = run_graph(g, {"x": [1, 2, 3]})
        assert data_values(out["y"]) == [2, 4, 6]

    def test_nested_while_inside_foreach(self):
        # For each parent n, count total iterations of an inner countdown
        # across children 0..n-1: sum over i of i equals n*(n-1)/2.
        g = DFGraph("nested")
        n = g.add_input("n")
        zero = g.add_node("const", [n], params={"value": 0})
        one = g.add_node("const", [n], params={"value": 1})

        body = DFGraph("body")
        idx = body.add_input("i")
        zero_b = body.add_node("const", [idx], params={"value": 0})

        cond = DFGraph("cond")
        cv = cond.add_input("v")
        cond.add_input("count")
        czero = cond.add_node("const", [cv], params={"value": 0})
        cgt = cond.add_node("compute", [cv, czero.outputs[0]], params={"fn": "gt"})
        cond.set_outputs([cgt.outputs[0]])

        wbody = DFGraph("wbody")
        wv = wbody.add_input("v")
        wc = wbody.add_input("count")
        wone = wbody.add_node("const", [wv], params={"value": 1})
        dec = wbody.add_node("compute", [wv, wone.outputs[0]], params={"fn": "sub"})
        inc = wbody.add_node("compute", [wc, wone.outputs[0]], params={"fn": "add"})
        wbody.set_outputs([dec.outputs[0], inc.outputs[0]])

        loop = body.add_node(
            "while", [idx, zero_b.outputs[0]], num_outputs=2, regions=[cond, wbody]
        )
        body.set_outputs([loop.outputs[1]])

        fe = g.add_node(
            "foreach",
            [zero.outputs[0], n, one.outputs[0]],
            params={"reduce_op": "add", "reduce_init": 0},
            regions=[body],
            name="total",
        )
        g.set_outputs([fe.outputs[0]])
        out = run_graph(g, {"n": [4, 1, 6]})
        assert data_values(out["total"]) == [6, 0, 15]


class TestExecutorFastPath:
    """The serving fast path: node schedules, light profiles, LinkProfile."""

    def test_link_profile_single_pass_counts(self):
        from repro.core.executor import LinkProfile
        from repro.core.sltf import Barrier, Data

        profile = LinkProfile()
        profile.record([Data(1), Data(2), Barrier(1), Data(3), Barrier(2)])
        assert profile.elements == 3
        assert profile.barriers == 2
        # Counts accumulate across records (the executor calls once per link
        # per node firing).
        profile.record([Barrier(1)])
        assert profile.elements == 3
        assert profile.barriers == 3
        profile.record([])
        assert (profile.elements, profile.barriers) == (3, 3)

    def test_schedule_cached_until_graph_mutates(self):
        from repro.core.executor import schedule_for

        g = build_add_one_graph()
        first = schedule_for(g)
        assert schedule_for(g) is first  # memoized per structural version
        extra = g.add_node("const", [g.inputs[0]], params={"value": 9})
        g.set_outputs([extra.outputs[0]])
        rebuilt = schedule_for(g)
        assert rebuilt is not first
        assert rebuilt.version == g.version

    def test_schedule_preresolves_compute_opcodes(self):
        from repro.core.executor import schedule_for

        g = build_add_one_graph()
        schedule = schedule_for(g)
        compute = next(n for n in g.nodes if n.op == "compute")
        assert schedule.fn(compute) is OPCODES["add"]
        assert {"const", "compute"} <= schedule.ops

    def test_link_stats_optional_per_run(self):
        g = build_add_one_graph()
        ex = Executor(g, link_stats=False)
        out = ex.run({"x": [1, 2, 3]})
        assert data_values(out["y"]) == [2, 3, 4]
        assert ex.profile.link_stats == {}          # skipped
        assert ex.profile.node_firings["compute"] == 1  # still collected

    def test_executors_share_one_schedule(self):
        g = build_add_one_graph()
        a, b = Executor(g), Executor(g)
        assert a._schedule is b._schedule
        assert a.run({"x": [1, 2]}) == b.run({"x": [1, 2]})

    def test_topo_order_memoized(self):
        g = build_add_one_graph()
        order = g.topo_order()
        assert g.topo_order() is order
        g.add_node("const", [g.inputs[0]], params={"value": 0})
        assert g.topo_order() is not order
