"""Tests for Revet semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.semantics import check


def analyze(src: str):
    return check(parse(src))


class TestValidPrograms:
    def test_strlen_like_program(self):
        result = analyze(
            """
            DRAM<char> input;
            DRAM<int> offsets;
            DRAM<int> lengths;
            void main(int count) {
              foreach (count by 1024) { int outer =>
                ReadView<1024> in_view(offsets, outer);
                WriteView<1024> out_view(lengths, outer);
                foreach (1024) { int idx =>
                  pragma(eliminate_hierarchy);
                  int len = 0;
                  int off = in_view[idx];
                  replicate (4) {
                    ReadIt<64> it(input, off);
                    while (*it) { len++; it++; };
                  };
                  out_view[idx] = len;
                };
              };
            }
            """
        )
        assert result.dram_names == {"input", "offsets", "lengths"}
        assert result.max_foreach_depth == 2
        assert "eliminate_hierarchy" in result.pragmas

    def test_fork_and_exit_inside_parallel(self):
        result = analyze(
            """
            DRAM<int> data;
            void main(int n) {
              foreach (n) { int i =>
                int t = fork(4);
                if (t > 2) { exit(); }
                int v = data[t];
              };
            }
            """
        )
        assert result.uses_fork and result.uses_exit

    def test_peek_intrinsic(self):
        analyze(
            """
            DRAM<char> text;
            void main(int n) {
              foreach (n) { int i =>
                PeekReadIt<64> it(text, i);
                int c = peek(it, 3);
              };
            }
            """
        )


class TestRejectedPrograms:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { int x = y + 1; }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { int x = 1; int x = 2; }")

    def test_unknown_dram(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { ReadIt<64> it(missing, n); }")

    def test_write_to_readonly_iterator(self):
        with pytest.raises(SemanticError):
            analyze(
                """
                DRAM<char> text;
                void main(int n) { ReadIt<64> it(text, n); *it = 3; }
                """
            )

    def test_read_from_writeonly_view(self):
        with pytest.raises(SemanticError):
            analyze(
                """
                DRAM<int> out;
                void main(int n) { WriteView<16> v(out, n); int x = v[0]; }
                """
            )

    def test_store_to_readview(self):
        with pytest.raises(SemanticError):
            analyze(
                """
                DRAM<int> data;
                void main(int n) { ReadView<16> v(data, n); v[0] = 1; }
                """
            )

    def test_exit_outside_parallel_region(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { exit(); }")

    def test_fork_outside_parallel_region(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { int t = fork(2); }")

    def test_return_inside_foreach(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { foreach (n) { int i => return; }; }")

    def test_unknown_call(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { int x = launch(n); }")

    def test_assign_to_iterator_name(self):
        with pytest.raises(SemanticError):
            analyze(
                """
                DRAM<char> text;
                void main(int n) { ReadIt<64> it(text, n); it = 3; }
                """
            )

    def test_flush_requires_iterator(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { flush(n); }")

    def test_bad_replicate_factor(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { replicate (0) { int x = 1; } }")

    def test_zero_size_sram(self):
        with pytest.raises(SemanticError):
            analyze("void main(int n) { SRAM<0> buf; }")

    def test_empty_program(self):
        with pytest.raises(SemanticError):
            analyze("DRAM<int> x;")

    def test_increment_of_view(self):
        with pytest.raises(SemanticError):
            analyze(
                """
                DRAM<int> d;
                void main(int n) { ReadView<8> v(d, n); v++; }
                """
            )
