"""Tests for the Revet lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse


class TestLexer:
    def test_keywords_idents_and_ints(self):
        tokens = tokenize("int x = 42;")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "int"),
            ("ident", "x"),
            ("op", "="),
            ("int", 42),
            ("op", ";"),
        ]
        assert tokens[-1].kind == "eof"

    def test_hex_and_char_literals(self):
        tokens = tokenize("0xFF 'a' '\\n' '\\0'")
        values = [t.value for t in tokens[:-1]]
        assert values == [255, ord("a"), ord("\n"), 0]

    def test_multichar_operators(self):
        tokens = tokenize("a => b == c != d <= e >= f && g || h << i >> j ++ --")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--"]

    def test_comments_are_skipped(self):
        tokens = tokenize("int x; // trailing\n/* block\ncomment */ int y;")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["x", "y"]

    def test_string_literal(self):
        tokens = tokenize('"hi\\n"')
        assert tokens[0].kind == "string" and tokens[0].value == "hi\n"

    def test_line_and_column_tracking(self):
        tokens = tokenize("int\n  x;")
        x = [t for t in tokens if t.value == "x"][0]
        assert x.line == 2 and x.column == 3

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("int x = `;")
        with pytest.raises(LexError):
            tokenize("/* unterminated")
        with pytest.raises(LexError):
            tokenize('"unterminated')
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestParserBasics:
    def test_dram_and_function(self):
        prog = parse(
            """
            DRAM<char> input;
            DRAM<int> lengths;
            void main(int count) {
              int x = count + 1;
            }
            """
        )
        assert [d.name for d in prog.drams] == ["input", "lengths"]
        assert prog.drams[0].element.name == "char"
        fn = prog.function("main")
        assert fn.params[0].name == "count"
        assert isinstance(fn.body.statements[0], ast.VarDecl)

    def test_expression_precedence(self):
        prog = parse("void f(int a) { int x = a + 2 * 3 == 7 && 1 < 2; }")
        init = prog.function("f").body.statements[0].init
        # top-level should be '&&'
        assert isinstance(init, ast.BinaryOp) and init.op == "&&"
        left = init.lhs
        assert left.op == "==" and left.lhs.op == "+"
        assert left.lhs.rhs.op == "*"

    def test_if_else_chain_and_while(self):
        prog = parse(
            """
            void f(int a) {
              int x = 0;
              if (a > 0) { x = 1; } else if (a < 0) { x = 2; } else { x = 3; }
              while (x) { x = x - 1; };
            }
            """
        )
        stmts = prog.function("f").body.statements
        assert isinstance(stmts[1], ast.IfStmt)
        assert isinstance(stmts[1].else_block.statements[0], ast.IfStmt)
        assert isinstance(stmts[2], ast.WhileStmt)

    def test_foreach_with_by_and_nested(self):
        prog = parse(
            """
            void f(int count) {
              foreach (count by 1024) { int outer =>
                foreach (1024) { int idx =>
                  int x = outer + idx;
                };
              };
            }
            """
        )
        outer = prog.function("f").body.statements[0]
        assert isinstance(outer, ast.ForeachStmt)
        assert outer.index_name == "outer"
        assert isinstance(outer.step, ast.IntLiteral) and outer.step.value == 1024
        inner = outer.body.statements[0]
        assert isinstance(inner, ast.ForeachStmt) and inner.step is None

    def test_replicate_views_iterators_pragma(self):
        prog = parse(
            """
            DRAM<char> input;
            DRAM<int> offsets;
            void main(int n) {
              foreach (n) { int idx =>
                pragma(eliminate_hierarchy);
                ReadView<1024> in_view(offsets, idx);
                int off = in_view[idx];
                replicate (4) {
                  ReadIt<64> it(input, off);
                  int len = 0;
                  while (*it) { len++; it++; };
                };
              };
            }
            """
        )
        body = prog.function("main").body.statements[0].body
        assert isinstance(body.statements[0], ast.PragmaStmt)
        assert isinstance(body.statements[1], ast.ViewDecl)
        rep = body.statements[3]
        assert isinstance(rep, ast.ReplicateStmt) and rep.factor == 4
        it_decl = rep.body.statements[0]
        assert isinstance(it_decl, ast.IteratorDecl) and it_decl.kind == "ReadIt"
        loop = rep.body.statements[2]
        assert isinstance(loop.cond, ast.UnaryOp) and loop.cond.op == "*"
        assert isinstance(loop.body.statements[0], ast.IncrDecr)

    def test_sram_fork_exit_flush(self):
        prog = parse(
            """
            DRAM<int> data;
            void main(int n) {
              SRAM<1024> loc;
              foreach (n) { int i =>
                int t = fork(loc[i]);
                if (t > 3) { exit(); }
                ManualWriteIt<16> out(data, i);
                *out = t;
                flush(out);
              };
            }
            """
        )
        stmts = prog.function("main").body.statements
        assert isinstance(stmts[0], ast.SramDecl) and stmts[0].size == 1024
        inner = stmts[1].body.statements
        assert isinstance(inner[0].init, ast.CallExpr) and inner[0].init.callee == "fork"
        assert isinstance(inner[1].then_block.statements[0], ast.ExitStmt)
        assert isinstance(inner[3], ast.Assign) and isinstance(inner[3].target, ast.UnaryOp)
        assert isinstance(inner[4], ast.FlushStmt)

    def test_compound_assign_and_ternary(self):
        prog = parse("void f(int a) { int x = 0; x += a; x = a > 0 ? a : 0 - a; }")
        stmts = prog.function("f").body.statements
        assert isinstance(stmts[1], ast.Assign) and stmts[1].op == "+="
        assert isinstance(stmts[2].value, ast.TernaryExpr)

    def test_index_and_calls(self):
        prog = parse("void f(int a) { int x = min(a, 3) + max(a, 4); }")
        init = prog.function("f").body.statements[0].init
        assert init.lhs.callee == "min" and init.rhs.callee == "max"


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f(int a) { int x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(int a) { int x = 1;")

    def test_bad_top_level(self):
        with pytest.raises(ParseError):
            parse("int x = 3;")  # no global scalars

    def test_foreach_requires_arrow(self):
        with pytest.raises(ParseError):
            parse("void f(int n) { foreach (n) { int i; }; }")

    def test_index_on_expression_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(int n) { int x = (n + 1)[0]; }")

    def test_error_positions_reported(self):
        with pytest.raises(ParseError) as err:
            parse("void f(int a) {\n  int x = ;\n}")
        assert "2:" in str(err.value)
