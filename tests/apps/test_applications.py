"""Correctness tests: every Table III application vs its reference oracle."""

import pytest

from repro.apps import REGISTRY, TABLE3_APPS, check_app, run_app
from repro.compiler import CompileOptions


@pytest.mark.parametrize("name", TABLE3_APPS + ["strlen"])
def test_app_registered_and_described(name):
    spec = REGISTRY.get(name)
    assert spec.source.strip()
    assert spec.key_features
    assert spec.bytes_per_thread > 0


@pytest.mark.parametrize("name", TABLE3_APPS + ["strlen"])
def test_app_matches_reference(name):
    spec = REGISTRY.get(name)
    assert check_app(spec, n_threads=8, seed=1), f"{name} output mismatch"


@pytest.mark.parametrize("name", ["isipv4", "hash-table", "kD-tree"])
def test_app_matches_reference_unoptimized(name):
    spec = REGISTRY.get(name)
    assert check_app(spec, n_threads=6, seed=2, options=CompileOptions.none())


@pytest.mark.parametrize("name", TABLE3_APPS)
def test_app_second_seed(name):
    spec = REGISTRY.get(name)
    assert check_app(spec, n_threads=5, seed=7)


def test_profiles_expose_dram_traffic():
    spec = REGISTRY.get("murmur3")
    instance = spec.generate(4, 3)
    executor = run_app(spec, instance, profile=True)
    stats = instance.memory.stats
    assert stats.dram_read_bytes >= 4 * 64  # each thread reads a 64 B blob
    assert executor.profile.loop_iterations  # the while loop was profiled
