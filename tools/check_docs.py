#!/usr/bin/env python
"""Documentation checker for CI: links resolve, snippets import.

Three checks over README.md and everything under docs/:

1. **Intra-repo markdown links** — every relative ``[text](target)``
   must point at a file or directory that exists (external ``http(s)``,
   ``mailto:``, and pure ``#anchor`` links are skipped).
2. **Import lines** — every ``import x`` / ``from x import y`` line
   found inside fenced code blocks is executed in one Python
   subprocess with ``src/`` on the path, so docs never name modules or
   symbols that do not exist.
3. **``python -m`` module references** — every ``python -m some.module``
   in a fenced code block must be an importable module.

Exit code 0 when everything passes, 1 otherwise (with one line per
failure). Run it locally with::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")
IMPORT_RE = re.compile(r"^\s*(?:import\s+[\w.]+|from\s+[\w.]+\s+import\s+\S)")
PYTHON_M_RE = re.compile(r"python(?:3)?\s+(?:-u\s+)?-m\s+([\w.]+)")


def doc_files() -> List[Path]:
    """README plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def iter_links(text: str) -> Iterator[str]:
    """Every markdown link target, fenced code blocks excluded."""
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield from LINK_RE.findall(line)


def iter_fenced_lines(text: str) -> Iterator[str]:
    """Every line inside a fenced code block."""
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            yield line


def check_links(path: Path, text: str) -> List[str]:
    """Relative link targets that do not resolve from ``path``'s dir."""
    failures = []
    for target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                            f"-> {target}")
    return failures


def collect_import_lines(files: List[Tuple[Path, str]]) -> List[str]:
    """Unique import statements found in any fenced code block."""
    seen = []
    for _, text in files:
        for line in iter_fenced_lines(text):
            stripped = line.strip()
            if IMPORT_RE.match(stripped) and stripped not in seen:
                seen.append(stripped)
    return seen


def collect_python_m_modules(files: List[Tuple[Path, str]]) -> List[str]:
    """Unique ``python -m`` module names found in fenced code blocks."""
    seen = []
    for _, text in files:
        for line in iter_fenced_lines(text):
            for module in PYTHON_M_RE.findall(line):
                if module not in seen:
                    seen.append(module)
    return seen


def run_snippet_imports(imports: List[str], modules: List[str]) -> List[str]:
    """Execute the import lines + module lookups in one subprocess."""
    if not imports and not modules:
        return []
    program = "\n".join(
        imports
        + ["import importlib.util"]
        + [
            (
                f"assert importlib.util.find_spec({module!r}) is not None, "
                f"'python -m {module}: no such module'"
            )
            for module in modules
        ]
    )
    env_path = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": env_path},
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-1] if proc.stderr else "?"
        return [f"snippet imports failed: {tail}"]
    return []


def main() -> int:
    """Run every check; print failures; return a process exit code."""
    files = [(path, path.read_text(encoding="utf-8")) for path in doc_files()]
    failures: List[str] = []
    for path, text in files:
        failures += check_links(path, text)
    imports = collect_import_lines(files)
    modules = collect_python_m_modules(files)
    failures += run_snippet_imports(imports, modules)
    for failure in failures:
        print(f"FAIL {failure}")
    print(
        f"checked {len(files)} files, {len(imports)} import lines, "
        f"{len(modules)} `python -m` modules: "
        + ("FAILED" if failures else "ok")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
