"""E6 — Figure 14: allocator-hoisting load balancing for search."""

from conftest import run_once

from repro.eval import fig14_load_balancing, format_rows


def test_fig14_load_balancing(benchmark):
    rows = run_once(benchmark, fig14_load_balancing)
    assert rows
    for row in rows:
        # The slow region receives less than its equal share and the fast
        # regions more, avoiding the slowdown of static partitioning.
        assert row["slow_region_%"] < row["equal_share_%"]
        assert row["fast_region_%"] > row["equal_share_%"]
        assert row["hoisted_makespan"] < row["static_makespan"]
    # Large inputs: slow region settles below ~10-11% (paper: under 10%).
    assert rows[-1]["slow_region_%"] < 11.0
    print("\n" + format_rows(rows))
