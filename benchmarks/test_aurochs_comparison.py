"""E7 — Section VI-B(c): Revet vs Aurochs on tree traversal."""

from conftest import run_once

from repro.eval import aurochs_comparison


def test_aurochs_comparison(benchmark):
    result = run_once(benchmark, aurochs_comparison)
    # The paper reports Revet's kD-tree is over 11x faster than Aurochs's.
    assert result["revet_speedup_x"] > 11.0
    assert result["live_value_duplication_x"] > 1.0
    assert result["lost_node_vectorization_x"] > 1.0
    print("\n" + str(result))
