"""E8 — serving-engine throughput: cold vs warm cache on a repeated trace.

A 100-request trace over a small repeated app set is replayed twice:

* **cold**: caching disabled, so every request pays the full Figure-8
  compile pipeline plus functional execution (the seed repo's behaviour);
* **warm**: program + result tiers enabled and pre-warmed, so repeats are
  served from the content-addressed caches.

The warm tier must sustain at least 5x the cold requests/sec.

A second experiment isolates the functional executor itself: the same
trace shape at an execution-heavy thread count, result caching off (every
request executes), compile amortized by the program cache — once with the
per-token interpreter and once with the columnar numpy backend.  The
columnar executor must sustain at least 3x the token requests/sec; both
runs' responses are asserted identical before timing counts.
"""

import gc
import time

from conftest import record_bench, run_once

from repro.eval import format_rows
from repro.runtime import Engine, ProgramCache, TraceConfig, synthetic_trace

TRACE = TraceConfig(
    size=100,
    apps=["hash-table", "search"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=7,
)


def _cold_engine() -> Engine:
    # max_batch_size=1 also defeats batch amortization, so cold really is
    # one full compile pipeline per request (the seed repo's behaviour).
    return Engine(program_cache=ProgramCache(capacity=0),
                  result_cache_capacity=0, max_batch_size=1)


def _replay(engine: Engine) -> float:
    """Replay the trace once; returns requests/sec.

    The timed window runs with the cyclic GC paused (and a collection
    beforehand): the serving path is allocation-heavy, so when this runs
    after other experiments in the suite, generational collections over
    their large live heaps would otherwise dominate the measurement.
    """
    requests = synthetic_trace(TRACE)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        responses = engine.process(requests)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert len(responses) == TRACE.size
    assert all(r.ok for r in responses)
    assert all(r.correct for r in responses)
    return TRACE.size / max(elapsed, 1e-9)


def test_runtime_throughput_cold_vs_warm(benchmark):
    # Best-of-2: throughput is a capability measurement, so transient
    # scheduler noise should not land in the recorded baseline.
    cold_rps = max(_replay(_cold_engine()) for _ in range(2))

    warm_engine = Engine()
    _replay(warm_engine)  # fill both cache tiers
    warm_rps = run_once(benchmark, _replay, warm_engine)

    stats = warm_engine.program_cache_stats
    assert stats.hit_rate > 0.8  # repeated-app trace stays cache-resident
    assert warm_engine.result_cache_stats.hits > 0

    rows = [
        {"tier": "cold (no caches)", "requests_per_s": round(cold_rps, 1)},
        {"tier": "warm (program+result)", "requests_per_s": round(warm_rps, 1)},
        {"tier": "speedup", "requests_per_s": f"{warm_rps / cold_rps:.1f}x"},
    ]
    print("\n" + format_rows(rows))
    record_bench("throughput", {
        "trace_requests": TRACE.size,
        "cold_requests_per_s": round(cold_rps, 1),
        "warm_requests_per_s": round(warm_rps, 1),
        "speedup": round(warm_rps / cold_rps, 1),
        "program_cache_hit_rate": round(stats.hit_rate, 4),
    })
    assert warm_rps >= 5 * cold_rps


# Execution-heavy shape: at 128 threads per instance the functional run
# dominates the ~3 ms compile (which the program cache amortizes anyway),
# so this measures the interpreter, not the compiler.  Width matters: the
# token interpreter costs O(threads) Python bytecode per node firing while
# the columnar backend costs O(1) numpy calls, so the ratio grows with
# thread count (~2.8x at 48 threads, ~5.6x at 128).
EXEC_TRACE = TraceConfig(
    size=36,
    apps=["murmur3", "ip2int", "isipv4"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=128,
    seed=11,
)


def _exec_cold_rps(executor: str):
    """Requests/sec with every request fully executed on ``executor``.

    Result caching is off (the cold path: no response is ever replayed);
    the program cache stays on so both executors pay the same amortized
    compile cost and the ratio isolates functional execution.
    """
    engine = Engine(result_cache_capacity=0, executor=executor)
    requests = synthetic_trace(EXEC_TRACE)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        responses = engine.process(requests)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert len(responses) == EXEC_TRACE.size
    assert all(r.ok and r.correct for r in responses)
    payload = [r.to_dict() for r in responses]
    return EXEC_TRACE.size / max(elapsed, 1e-9), payload


def test_columnar_vs_token_cold_execution(benchmark):
    token_rps, token_payload = max(
        (_exec_cold_rps("token") for _ in range(2)), key=lambda t: t[0])
    columnar_rps, columnar_payload = run_once(
        benchmark, lambda: max((_exec_cold_rps("columnar") for _ in range(2)),
                               key=lambda t: t[0]))

    # Bit-identity first: a fast wrong executor is not a speedup.
    assert columnar_payload == token_payload

    speedup = columnar_rps / token_rps
    rows = [
        {"executor": "token", "requests_per_s": round(token_rps, 1)},
        {"executor": "columnar", "requests_per_s": round(columnar_rps, 1)},
        {"executor": "speedup", "requests_per_s": f"{speedup:.1f}x"},
    ]
    print("\n" + format_rows(rows))
    record_bench("columnar", {
        "trace_requests": EXEC_TRACE.size,
        "apps": list(EXEC_TRACE.apps),
        "n_threads": EXEC_TRACE.n_threads,
        "token_requests_per_s": round(token_rps, 1),
        "columnar_requests_per_s": round(columnar_rps, 1),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 3.0  # CI guard: the columnar backend must stay >=3x
